// Per-thread event timelines: the instrument behind the paper's Figures
// 2-3 and 6-9 (boxes for batch frees / long free calls, ticks for epoch
// advances). Each thread writes only its own lane, so recording is
// lock-free; rendering and CSV dumps happen after the trial.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace emr {

enum class EventKind : std::uint8_t {
  kBatchFree,     // freeing one limbo bag (start..end spans the whole bag)
  kFreeCall,      // a single allocator free call
  kEpochAdvance,  // instantaneous: the global epoch moved
};

const char* event_kind_name(EventKind k);

struct TimelineEvent {
  EventKind kind;
  std::uint64_t t_start;  // ns, relative clock (same origin for all lanes)
  std::uint64_t t_end;    // ns; == t_start for instantaneous events
};

class Timeline {
 public:
  Timeline() = default;

  /// (Re)arms the timeline. When `enabled` is false, record() is a no-op
  /// and lanes stay empty. Durations below `min_duration_ns` are dropped
  /// (except kEpochAdvance ticks, which always land).
  void reset(int nthreads, std::uint64_t t_origin,
             std::uint64_t min_duration_ns, bool enabled);

  /// Stops accepting events (e.g. during teardown frees).
  void disarm() { enabled_ = false; }

  bool enabled() const { return enabled_; }
  std::uint64_t origin() const { return t_origin_; }

  void record(int tid, EventKind kind, std::uint64_t t_start,
              std::uint64_t t_end);

  std::size_t event_count(int tid) const;
  const std::vector<TimelineEvent>& events(int tid) const;
  int lane_count() const { return static_cast<int>(lanes_.size()); }

  /// One character row per thread lane (up to `max_rows`), `width` columns
  /// spanning the recorded interval: '#' where an event of `kind` is in
  /// flight, '|' at epoch advances, '.' elsewhere.
  std::string render_ascii(EventKind kind, int max_rows, int width) const;

  /// Writes "tid,kind,t_start_ns,t_end_ns,duration_ns". Returns success.
  bool dump_csv(const std::string& path) const;

 private:
  // Lanes are written concurrently by distinct threads; keep them apart.
  struct alignas(64) Lane {
    std::vector<TimelineEvent> events;
  };
  std::vector<Lane> lanes_;
  std::uint64_t t_origin_ = 0;
  std::uint64_t min_duration_ns_ = 0;
  bool enabled_ = false;
};

}  // namespace emr
