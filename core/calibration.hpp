// Measured remote-free cost (ROADMAP item 1): instead of hand-tuning
// EMR_REMOTE_PENALTY_NS, measure what a cross-core cache-line transfer
// actually costs on this machine and feed that into the allocator model.
//
// Protocol (docs/ALLOCATORS.md): two threads pin themselves to the first
// and last CPUs of the process's affinity mask — the farthest-apart pair
// the mask offers, crossing sockets when the mask does — and ping-pong a
// single cache line: A flips an alignas(64) flag and spins until B flips
// it back, kRounds times. Every flip forces the line to migrate between
// the two cores' caches, so wall_time / (2 * rounds) is the one-way
// transfer latency — exactly the cost a remote free pays per block when
// it touches a block whose home cache is elsewhere.
//
// remote_cost() runs the measurement once per process (first caller
// pays ~a few ms; the result is cached). On a machine where the mask
// holds fewer than two CPUs the measurement is impossible and the result
// reports measured == false — callers keep their configured defaults,
// which is what keeps single-CPU CI deterministic.
//
// The knob still wins: the harness only substitutes the measured value
// when EMR_REMOTE_PENALTY_NS (or a bench sweep) did not set the penalty
// explicitly, and EMR_CALIBRATE=off disables the substitution entirely.
#pragma once

#include <cstdint>

namespace emr::calibration {

struct RemoteCost {
  /// False when the measurement could not run (< 2 allowed CPUs): the
  /// other fields are zero/-1 and callers keep configured defaults.
  bool measured = false;
  /// One-way cache-line transfer latency between the probe CPUs.
  std::uint64_t one_way_ns = 0;
  /// The pinned probe pair (first/last CPU of the affinity mask).
  int cpu_a = -1;
  int cpu_b = -1;
};

/// The process-wide measurement, run once on first call (thread-safe).
/// Calibrates the clock (core/timing.hpp) first so the probe reads the
/// cheap timestamp source.
const RemoteCost& remote_cost();

/// Test/diagnostic seam: run a fresh ping-pong between two given CPUs
/// for `rounds` round-trips, bypassing the cache. measured == false if
/// either pin fails.
RemoteCost measure_remote_cost(int cpu_a, int cpu_b, int rounds);

}  // namespace emr::calibration
