#include "core/latency.hpp"

#include <algorithm>

namespace emr {

double latency_percentile(const LatencyHistogram& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    const std::uint64_t c = h.buckets[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= rank) {
      if (b == 0) return 0.0;  // bucket 0 is exactly {0 ns}
      const double lo = static_cast<double>(latency_bucket_floor(b));
      // Upper edge of the bucket, tightened by the exact max when it
      // falls inside this bucket (always true for the top nonempty one).
      double hi = static_cast<double>(std::uint64_t{1} << b);
      const double mx = static_cast<double>(h.max_ns);
      if (mx >= lo && mx < hi) hi = mx;
      const double frac =
          std::clamp((rank - static_cast<double>(cum)) /
                         static_cast<double>(c),
                     0.0, 1.0);
      return std::min(lo + frac * (hi - lo), mx);
    }
    cum += c;
  }
  return static_cast<double>(h.max_ns);
}

void LatencyRecorder::reset(int lanes, int channels, bool enabled) {
  n_ = lanes < 1 ? 1 : lanes;
  channels_ = channels < 1 ? 1 : channels;
  enabled_ = enabled;
  // Value-initialized: every bucket counter and max starts at zero.
  lanes_ =
      std::make_unique<Lane[]>(static_cast<std::size_t>(n_ * channels_));
}

LatencyHistogram LatencyRecorder::merged() const {
  LatencyHistogram out;
  for (int l = 0; l < lane_count(); ++l) out.add(lane_histogram(l));
  return out;
}

LatencyHistogram LatencyRecorder::merged_channel(int channel) const {
  LatencyHistogram out;
  if (!lanes_ || channel < 0 || channel >= channels_) return out;
  for (int l = 0; l < n_; ++l) {
    out.add(cell_histogram(l * channels_ + channel));
  }
  return out;
}

LatencyHistogram LatencyRecorder::lane_histogram(int lane) const {
  LatencyHistogram out;
  if (!lanes_ || lane < 0 || lane >= n_) return out;
  for (int c = 0; c < channels_; ++c) {
    out.add(cell_histogram(lane * channels_ + c));
  }
  return out;
}

LatencyHistogram LatencyRecorder::cell_histogram(int cell) const {
  LatencyHistogram out;
  const Lane& l = lanes_[static_cast<std::size_t>(cell)];
  for (int b = 0; b < kLatencyBuckets; ++b) {
    const std::uint64_t c =
        l.counts[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    out.buckets[static_cast<std::size_t>(b)] = c;
    out.count += c;
  }
  out.max_ns = l.max_ns.load(std::memory_order_relaxed);
  return out;
}

}  // namespace emr
