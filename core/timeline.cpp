#include "core/timeline.hpp"

#include <algorithm>
#include <cstdio>

namespace emr {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kBatchFree:
      return "batch_free";
    case EventKind::kFreeCall:
      return "free_call";
    case EventKind::kEpochAdvance:
      return "epoch_advance";
  }
  return "unknown";
}

void Timeline::reset(int nthreads, std::uint64_t t_origin,
                     std::uint64_t min_duration_ns, bool enabled) {
  lanes_.assign(static_cast<std::size_t>(std::max(nthreads, 0)), Lane{});
  t_origin_ = t_origin;
  min_duration_ns_ = min_duration_ns;
  enabled_ = enabled && nthreads > 0;
}

void Timeline::record(int tid, EventKind kind, std::uint64_t t_start,
                      std::uint64_t t_end) {
  if (!enabled_) return;
  if (tid < 0 || static_cast<std::size_t>(tid) >= lanes_.size()) return;
  if (kind != EventKind::kEpochAdvance &&
      t_end - t_start < min_duration_ns_) {
    return;
  }
  lanes_[static_cast<std::size_t>(tid)].events.push_back(
      TimelineEvent{kind, t_start, t_end});
}

std::size_t Timeline::event_count(int tid) const {
  if (tid < 0 || static_cast<std::size_t>(tid) >= lanes_.size()) return 0;
  return lanes_[static_cast<std::size_t>(tid)].events.size();
}

const std::vector<TimelineEvent>& Timeline::events(int tid) const {
  static const std::vector<TimelineEvent> kEmpty;
  if (tid < 0 || static_cast<std::size_t>(tid) >= lanes_.size()) {
    return kEmpty;
  }
  return lanes_[static_cast<std::size_t>(tid)].events;
}

std::string Timeline::render_ascii(EventKind kind, int max_rows,
                                   int width) const {
  width = std::max(width, 10);
  std::uint64_t t_max = t_origin_;
  for (const Lane& lane : lanes_) {
    for (const TimelineEvent& e : lane.events) {
      t_max = std::max(t_max, e.t_end);
    }
  }
  const std::uint64_t span = std::max<std::uint64_t>(t_max - t_origin_, 1);
  const int rows =
      std::min<int>(max_rows, static_cast<int>(lanes_.size()));

  std::string out;
  char head[128];
  std::snprintf(head, sizeof(head),
                "time -> %.1f ms total, one row per thread (%d of %zu "
                "lanes)\n",
                static_cast<double>(span) / 1e6, rows, lanes_.size());
  out += head;

  for (int t = 0; t < rows; ++t) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const TimelineEvent& e : lanes_[static_cast<std::size_t>(t)].events) {
      const std::uint64_t s = e.t_start < t_origin_ ? 0 : e.t_start - t_origin_;
      const std::uint64_t f = e.t_end < t_origin_ ? 0 : e.t_end - t_origin_;
      int c0 = static_cast<int>(s * static_cast<std::uint64_t>(width) / span);
      int c1 = static_cast<int>(f * static_cast<std::uint64_t>(width) / span);
      c0 = std::clamp(c0, 0, width - 1);
      c1 = std::clamp(c1, 0, width - 1);
      if (e.kind == kind) {
        for (int c = c0; c <= c1; ++c) row[static_cast<std::size_t>(c)] = '#';
      } else if (e.kind == EventKind::kEpochAdvance) {
        if (row[static_cast<std::size_t>(c0)] == '.') {
          row[static_cast<std::size_t>(c0)] = '|';
        }
      }
    }
    char label[16];
    std::snprintf(label, sizeof(label), "t%-3d ", t);
    out += label;
    out += row;
    out += '\n';
  }
  return out;
}

bool Timeline::dump_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("tid,kind,t_start_ns,t_end_ns,duration_ns\n", f);
  for (std::size_t t = 0; t < lanes_.size(); ++t) {
    for (const TimelineEvent& e : lanes_[t].events) {
      std::fprintf(f, "%zu,%s,%llu,%llu,%llu\n", t, event_kind_name(e.kind),
                   static_cast<unsigned long long>(e.t_start - t_origin_),
                   static_cast<unsigned long long>(e.t_end - t_origin_),
                   static_cast<unsigned long long>(e.t_end - e.t_start));
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace emr
