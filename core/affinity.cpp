#include "core/affinity.hpp"

#include <stdexcept>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace emr::affinity {

PinMode pin_mode_from_name(const std::string& name) {
  if (name == "off") return PinMode::kOff;
  if (name == "compact") return PinMode::kCompact;
  if (name == "scatter") return PinMode::kScatter;
  throw std::invalid_argument("unknown pin mode \"" + name +
                              "\" (EMR_PIN); valid modes: off compact "
                              "scatter");
}

const char* pin_mode_name(PinMode mode) {
  switch (mode) {
    case PinMode::kOff:
      return "off";
    case PinMode::kCompact:
      return "compact";
    case PinMode::kScatter:
      return "scatter";
  }
  return "off";
}

std::vector<int> allowed_cpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
  }
#endif
  return cpus;
}

std::vector<int> pin_map(PinMode mode, int count) {
  std::vector<int> map;
  if (mode == PinMode::kOff || count < 1) return map;
  const std::vector<int> allowed = allowed_cpus();
  if (allowed.empty()) return map;  // no affinity API: run unpinned

  std::vector<int> order;
  if (mode == PinMode::kScatter) {
    // Interleave the two halves of the mask: 0, n/2, 1, n/2+1, ... —
    // consecutive workers land as far apart as the mask allows.
    const std::size_t n = allowed.size();
    const std::size_t half = (n + 1) / 2;
    order.reserve(n);
    for (std::size_t i = 0; i < half; ++i) {
      order.push_back(allowed[i]);
      if (half + i < n) order.push_back(allowed[half + i]);
    }
  } else {
    order = allowed;
  }

  map.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    map.push_back(order[static_cast<std::size_t>(i) % order.size()]);
  }
  return map;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace emr::affinity
