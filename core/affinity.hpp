// CPU affinity pinning for the harness (EMR_PIN): workers, the reclaimer
// daemon, and the calibration threads pin themselves before measurement
// so a trial's threads stop migrating mid-window (the ryuxin ps benches
// pin every thread via thd_set_affinity; unpinned, the scheduler can
// shuffle workers across sockets and smear the remote-free story).
//
// Layouts over the CPUs this process is allowed to run on
// (sched_getaffinity order):
//
//   off     - no pinning; the scheduler places threads freely.
//   compact - worker i -> allowed[i mod n]: fill cores in order, packing
//             neighbours together (minimizes cross-core traffic).
//   scatter - worker i walks the allowed list interleaved half-by-half
//             (0, n/2, 1, n/2+1, ...): spreads workers as far apart as
//             the mask permits (maximizes the remote effect; on a
//             multi-socket box this alternates sockets).
//
// Non-Linux builds compile to no-ops: allowed_cpus() is empty, pin_map()
// is empty, and pin_current_thread() reports failure — callers treat an
// empty map as "pinning unavailable" and run unpinned.
#pragma once

#include <string>
#include <vector>

namespace emr::affinity {

enum class PinMode { kOff, kCompact, kScatter };

/// "off" | "compact" | "scatter" (EMR_PIN). Throws std::invalid_argument
/// naming the valid choices.
PinMode pin_mode_from_name(const std::string& name);
const char* pin_mode_name(PinMode mode);

/// The CPUs this process may run on, in mask order (sched_getaffinity).
/// Empty when the platform exposes no affinity API.
std::vector<int> allowed_cpus();

/// CPU assignment for `count` threads under `mode`: entry i is thread
/// i's CPU. Empty for kOff or when no CPUs are visible (run unpinned).
/// With more threads than CPUs the layout wraps round-robin.
std::vector<int> pin_map(PinMode mode, int count);

/// Pins the calling thread to `cpu` via pthread_setaffinity_np.
/// Returns false (thread left as-is) on failure or off-Linux.
bool pin_current_thread(int cpu);

}  // namespace emr::affinity
