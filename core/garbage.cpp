#include "core/garbage.hpp"

#include <algorithm>
#include <cstdio>

namespace emr {

void GarbageCensus::record(std::uint64_t epoch, std::uint64_t pending) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = by_epoch_.try_emplace(epoch, pending);
  if (!inserted) it->second = std::max(it->second, pending);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> GarbageCensus::aggregate()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {by_epoch_.begin(), by_epoch_.end()};
}

std::uint64_t GarbageCensus::peak_garbage() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t peak = 0;
  for (const auto& [epoch, g] : by_epoch_) {
    (void)epoch;
    peak = std::max(peak, g);
  }
  return peak;
}

std::string GarbageCensus::render_ascii(int width, int height) const {
  const auto agg = aggregate();
  width = std::max(width, 10);
  height = std::max(height, 2);
  if (agg.empty()) return "(no epochs recorded)\n";

  std::uint64_t peak = 1;
  for (const auto& [epoch, g] : agg) {
    (void)epoch;
    peak = std::max(peak, g);
  }

  // Bin epochs (in recorded order) into `width` columns; column value is
  // the max pending within the bin.
  std::vector<std::uint64_t> cols(static_cast<std::size_t>(width), 0);
  for (std::size_t i = 0; i < agg.size(); ++i) {
    const std::size_t c = i * static_cast<std::size_t>(width) / agg.size();
    cols[c] = std::max(cols[c], agg[i].second);
  }

  std::string out;
  for (int row = height; row >= 1; --row) {
    const std::uint64_t threshold =
        peak * static_cast<std::uint64_t>(row) /
        static_cast<std::uint64_t>(height);
    std::string line(static_cast<std::size_t>(width), ' ');
    for (int c = 0; c < width; ++c) {
      if (cols[static_cast<std::size_t>(c)] >= std::max<std::uint64_t>(
                                                   threshold, 1)) {
        line[static_cast<std::size_t>(c)] = '#';
      }
    }
    out += line;
    out += '\n';
  }
  char foot[96];
  std::snprintf(foot, sizeof(foot),
                "^ pending garbage, peak=%llu over %zu epochs\n",
                static_cast<unsigned long long>(peak), agg.size());
  out += std::string(static_cast<std::size_t>(width), '-') + '\n' + foot;
  return out;
}

bool GarbageCensus::dump_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("epoch,pending_garbage\n", f);
  for (const auto& [epoch, g] : aggregate()) {
    std::fprintf(f, "%llu,%llu\n", static_cast<unsigned long long>(epoch),
                 static_cast<unsigned long long>(g));
  }
  std::fclose(f);
  return true;
}

}  // namespace emr
