// Environment-variable parsing helpers. All EMR_* configuration flows
// through these so that "unset" is always distinguishable from "set to a
// default-looking value" (see EXPERIMENTS.md for the variable catalogue).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace emr {

/// True iff the variable is present in the environment (even if empty).
inline bool env_has(const char* name) {
  return std::getenv(name) != nullptr;
}

inline std::string env_str(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : def;
}

inline long long env_i64(const char* name, long long def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return end == v ? def : parsed;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const long long v = env_i64(name, -1);
  return v < 0 ? def : static_cast<std::uint64_t>(v);
}

inline double env_f64(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end == v ? def : parsed;
}

/// Parses a whitespace- or comma-separated list of positive integers,
/// e.g. EMR_THREADS="1 2 4" or "6,12,24". Malformed tokens are skipped;
/// an unset/empty/fully-malformed variable yields an empty vector.
inline std::vector<int> env_int_list(const char* name) {
  std::vector<int> out;
  const char* v = std::getenv(name);
  if (v == nullptr) return out;
  const char* p = v;
  while (*p != '\0') {
    while (*p == ' ' || *p == ',' || *p == '\t') ++p;
    if (*p == '\0') break;
    char* end = nullptr;
    const long parsed = std::strtol(p, &end, 10);
    if (end == p) {
      ++p;  // skip one malformed char and resync
      continue;
    }
    if (parsed > 0) out.push_back(static_cast<int>(parsed));
    p = end;
  }
  return out;
}

/// Strict variant of env_int_list for knobs where a malformed token
/// must not be silently dropped (EMR_THREADS): same separators, but any
/// token that is not a positive integer fails the whole parse, with the
/// offending token copied into `bad_token`. Returns true on success;
/// an unset or empty variable succeeds with an empty `out`.
inline bool env_int_list_strict(const char* name, std::vector<int>* out,
                                std::string* bad_token) {
  out->clear();
  const char* v = std::getenv(name);
  if (v == nullptr) return true;
  const char* p = v;
  auto is_sep = [](char c) { return c == ' ' || c == ',' || c == '\t'; };
  while (*p != '\0') {
    while (is_sep(*p)) ++p;
    if (*p == '\0') break;
    char* end = nullptr;
    const long parsed = std::strtol(p, &end, 10);
    // A valid token is a positive integer consumed up to the next
    // separator: "4x" and "garbage" fail on the trailing junk, "0" and
    // "-3" on the value.
    if (end == p || !(*end == '\0' || is_sep(*end)) || parsed <= 0) {
      const char* tok_end = p;
      while (*tok_end != '\0' && !is_sep(*tok_end)) ++tok_end;
      if (bad_token != nullptr) bad_token->assign(p, tok_end);
      return false;
    }
    out->push_back(static_cast<int>(parsed));
    p = end;
  }
  return true;
}

/// env_int_list_strict's shape for real-valued knobs (EMR_PHASES,
/// EMR_TENANT_WEIGHTS): whitespace/comma separators, any token that is
/// not a finite double fails the whole parse with the offending token
/// copied into `bad_token`. Range policing (positivity etc.) is the
/// caller's job — validate_config names the valid range per knob.
inline bool env_f64_list_strict(const char* name, std::vector<double>* out,
                                std::string* bad_token) {
  out->clear();
  const char* v = std::getenv(name);
  if (v == nullptr) return true;
  const char* p = v;
  auto is_sep = [](char c) { return c == ' ' || c == ',' || c == '\t'; };
  while (*p != '\0') {
    while (is_sep(*p)) ++p;
    if (*p == '\0') break;
    char* end = nullptr;
    const double parsed = std::strtod(p, &end);
    if (end == p || !(*end == '\0' || is_sep(*end))) {
      const char* tok_end = p;
      while (*tok_end != '\0' && !is_sep(*tok_end)) ++tok_end;
      if (bad_token != nullptr) bad_token->assign(p, tok_end);
      return false;
    }
    out->push_back(parsed);
    p = end;
  }
  return true;
}

}  // namespace emr
