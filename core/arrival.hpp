// Seeded open-loop arrival schedules for the service-mode harness
// (docs/SERVICE_MODE.md, ROADMAP item 3). A schedule is generated once,
// up front, from (process, rate, skew, phases, seed) — never from the
// measured run — so the offered load is a pure function of the config:
// the same seed yields a byte-identical schedule on every run and at
// every worker count, and queueing delay (service start minus scheduled
// arrival) is measurable against it.
//
// Processes are inhomogeneous Poisson streams drawn by Lewis thinning:
// candidate events arrive at the peak rate r_max and survive with
// probability r(t)/r_max, where r(t) composes the base rate, the
// per-phase multiplier (equal slices of the window) and — for the
// `burst` process — a mean-preserving on/off square wave. Keys are
// Zipfian (Gray's one-uniform method, s = 0 degenerating to uniform)
// and each event carries an op kind and a tenant drawn from the
// configured weights.
#pragma once

#include <cstdint>
#include <vector>

namespace emr {

/// One scheduled operation: fire at t_ns after the measurement window
/// opens, against `tenant`'s structure.
struct Arrival {
  std::uint64_t t_ns = 0;
  std::uint64_t key = 0;
  std::uint16_t tenant = 0;
  std::uint8_t kind = 0;  // harness::Op::Kind values (insert/erase/lookup)
};

inline bool operator==(const Arrival& a, const Arrival& b) {
  return a.t_ns == b.t_ns && a.key == b.key && a.tenant == b.tenant &&
         a.kind == b.kind;
}

struct ArrivalConfig {
  enum class Process { kPoisson, kBurst };

  Process process = Process::kPoisson;
  double rate_ops = 100'000;  ///< mean offered load, ops/s over the window
  std::uint64_t duration_ns = 0;  ///< window length; schedule ends here
  std::uint64_t seed = 1;

  // Op mix and key population (the closed-loop OpStream's knobs).
  double insert_frac = 0.5;
  double erase_frac = 0.5;
  std::uint64_t keyrange = 1 << 14;
  double zipf_s = 0.0;  ///< key skew; 0 = uniform

  /// Rate multipliers applied over equal slices of the window, e.g.
  /// {2, 0.05} = a busy first half then a near-idle tail. Must be
  /// non-empty with every entry finite and > 0.
  std::vector<double> phases = {1.0};

  // Tenant choice per event. Empty weights = uniform over `tenants`.
  int tenants = 1;
  std::vector<double> tenant_weights;

  // Burst-process shape: for `burst_duty` of every period the rate is
  // multiplied by `burst_factor`; the rest of the period is scaled down
  // so the period's mean rate is preserved (clamped at 0 when
  // duty * factor >= 1).
  double burst_factor = 3.0;
  double burst_duty = 0.25;
  std::uint64_t burst_period_ns = 20'000'000;
};

/// Hard cap on generated events (rate x duration): past this the
/// schedule itself becomes the memory story. generate_arrivals and
/// harness::validate_config both enforce it.
inline constexpr std::uint64_t kMaxArrivals = std::uint64_t{1} << 24;

/// Generates the full schedule. Deterministic in `cfg` alone (never
/// reads the clock or thread count). Throws std::invalid_argument on
/// out-of-range config, naming the field and its valid range.
std::vector<Arrival> generate_arrivals(const ArrivalConfig& cfg);

/// FNV-1a over every event's fields — the determinism gates' one-number
/// schedule identity.
std::uint64_t arrival_schedule_hash(const std::vector<Arrival>& schedule);

/// Zipfian sampler over [0, n) by Gray's method (the YCSB generator):
/// zeta(n, s) is precomputed once (O(n)), then each sample maps one
/// uniform draw through the closed-form inverse — so consuming exactly
/// one uniform per key keeps streams seed-stable as knobs change.
/// s == 0 is an explicit uniform fast path; s == 1 is nudged off the
/// 1/(1-s) pole.
class Zipf {
 public:
  Zipf(std::uint64_t n, double s);

  bool uniform() const { return uniform_; }

  /// Maps u in [0, 1) to a rank in [0, n); rank 0 is the hottest.
  std::uint64_t sample(double u) const;

 private:
  std::uint64_t n_ = 1;
  bool uniform_ = true;
  double s_ = 0.0;
  double zeta_n_ = 1.0;
  double zeta2_ = 1.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace emr
