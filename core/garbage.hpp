// Per-epoch unreclaimed-garbage census (the paper's Figure 4 and the
// lower panels of Figures 6-9): at every epoch change the reclaimer
// reports how many retired-but-unfreed objects exist globally.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace emr {

class GarbageCensus {
 public:
  GarbageCensus() = default;

  void reset(bool enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    by_epoch_.clear();
    enabled_.store(enabled, std::memory_order_release);
  }

  void disarm() { enabled_.store(false, std::memory_order_release); }

  /// Lock-free: epoch-advance paths check this before paying for a
  /// stats snapshot and the census mutex.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Records the pending-garbage count observed at `epoch`. Multiple
  /// observations of one epoch keep the maximum (the peak is the story).
  void record(std::uint64_t epoch, std::uint64_t pending);

  /// (epoch, pending) sorted by epoch.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> aggregate() const;

  std::uint64_t peak_garbage() const;

  /// Bar chart, `width` columns of epochs x `height` rows of magnitude.
  std::string render_ascii(int width, int height) const;

  /// Writes "epoch,pending_garbage". Returns success.
  bool dump_csv(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> by_epoch_;
  std::atomic<bool> enabled_{false};
};

}  // namespace emr
