// Deterministic per-thread RNG (splitmix64 seeding + xoshiro-style state
// advance). Trials must replay the exact same op stream for the same
// (seed, tid) so experiments are comparable across reclaimers.
#pragma once

#include <cstdint>

namespace emr {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    s0_ = splitmix64(s);
    s1_ = splitmix64(s);
    if ((s0_ | s1_) == 0) s1_ = 1;  // xorshift128+ must not be all-zero
  }

  std::uint64_t next_u64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t next_range(std::uint64_t n) { return next_u64() % n; }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace emr
