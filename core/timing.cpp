#include "core/timing.hpp"

#include <mutex>

#include "core/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace emr::timing {

namespace detail {

std::atomic<bool> g_use_tsc{false};
std::uint64_t g_anchor_tsc = 0;
std::uint64_t g_anchor_ns = 0;
double g_ns_per_tick = 0.0;

}  // namespace detail

namespace {

std::mutex g_calibrate_mu;
std::atomic<bool> g_calibrated{false};
std::atomic<double> g_tsc_ghz{0.0};
// Relaxed-read on every spin_for_ns: the burn must never take a lock —
// central_return charges the penalty per block while holding arena locks.
std::atomic<double> g_pause_per_ns{0.0};

/// CPUID 0x80000007 EDX bit 8: the TSC ticks at a constant rate across
/// P-states and deep sleep — the only TSC safe to use as a wall clock.
bool invariant_tsc_detected() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) == 0) return false;
  if (eax < 0x80000007u) return false;
  if (__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1u << 8)) != 0;
#else
  return false;
#endif
}

/// Tick rate against steady_clock over a ~2 ms window: long enough that
/// the two clock reads bracketing it contribute < 0.1% error, short
/// enough to be invisible at process start.
double measure_ns_per_tick() {
  const std::uint64_t ns0 = detail::steady_now_ns();
  const std::uint64_t t0 = detail::read_tsc();
  const std::uint64_t deadline = ns0 + 2'000'000;
  while (detail::steady_now_ns() < deadline) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
  const std::uint64_t ns1 = detail::steady_now_ns();
  const std::uint64_t t1 = detail::read_tsc();
  if (t1 <= t0 || ns1 <= ns0) return 0.0;
  return static_cast<double>(ns1 - ns0) / static_cast<double>(t1 - t0);
}

/// Pause-loop rate for spin_for_ns: time a fixed burn a few times and
/// keep the fastest observed rate, so iterations = ns * rate always buys
/// at least ~ns of wall time (a preempted trial only inflates a burn,
/// never shortens it).
double measure_pause_rate() {
  constexpr int kIters = 20'000;
  constexpr int kTrials = 4;
  double best = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t ns0 = now_ns();
    for (int i = 0; i < kIters; ++i) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }
    const std::uint64_t ns1 = now_ns();
    if (ns1 <= ns0) continue;
    const double rate =
        static_cast<double>(kIters) / static_cast<double>(ns1 - ns0);
    if (rate > best) best = rate;
  }
  return best;
}

void calibrate_locked(bool allow_tsc) {
  detail::g_use_tsc.store(false, std::memory_order_release);
  g_tsc_ghz.store(0.0, std::memory_order_relaxed);
  if (allow_tsc && invariant_tsc_detected()) {
    const double ns_per_tick = measure_ns_per_tick();
    if (ns_per_tick > 0.0) {
      // Anchor to the steady clock at the switch instant so timestamps
      // taken before and after calibration share one timeline.
      detail::g_ns_per_tick = ns_per_tick;
      detail::g_anchor_ns = detail::steady_now_ns();
      detail::g_anchor_tsc = detail::read_tsc();
      g_tsc_ghz.store(1.0 / ns_per_tick, std::memory_order_relaxed);
      detail::g_use_tsc.store(true, std::memory_order_release);
    }
  }
  g_pause_per_ns.store(measure_pause_rate(), std::memory_order_relaxed);
  g_calibrated.store(true, std::memory_order_release);
}

}  // namespace

void calibrate_clock() {
  if (g_calibrated.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_calibrate_mu);
  if (g_calibrated.load(std::memory_order_relaxed)) return;
  calibrate_locked(env_i64("EMR_TSC", 1) != 0);
}

bool tsc_active() {
  return detail::g_use_tsc.load(std::memory_order_acquire);
}

double tsc_ghz() { return g_tsc_ghz.load(std::memory_order_relaxed); }

const char* clock_name() { return tsc_active() ? "tsc" : "steady"; }

double pause_rate() {
  return g_pause_per_ns.load(std::memory_order_relaxed);
}

namespace detail {

void spin_slow(std::uint64_t ns) {
  const double rate = g_pause_per_ns.load(std::memory_order_relaxed);
  // Counted burn for the short penalties the model charges per block:
  // no clock reads inside the loop, so a 50 ns penalty costs ~50 ns
  // instead of 2+ clock calls. Long waits (and the pre-calibration
  // path) use the deadline loop, which tracks wall time exactly.
  if (rate > 0.0 && ns <= 100'000) {
    std::uint64_t iters =
        static_cast<std::uint64_t>(static_cast<double>(ns) * rate);
    if (iters == 0) iters = 1;
    for (std::uint64_t i = 0; i < iters; ++i) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }
    return;
  }
  const std::uint64_t deadline = now_ns() + ns;
  while (now_ns() < deadline) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

void recalibrate_for_test(bool allow_tsc) {
  std::lock_guard<std::mutex> lock(g_calibrate_mu);
  calibrate_locked(allow_tsc);
}

}  // namespace detail

}  // namespace emr::timing
