#include "core/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/rng.hpp"

namespace emr {

namespace {

void fail(const std::string& what) { throw std::invalid_argument(what); }

void validate(const ArrivalConfig& cfg) {
  if (!std::isfinite(cfg.rate_ops) || cfg.rate_ops <= 0) {
    fail("ArrivalConfig.rate_ops must be a finite rate > 0 ops/s, got " +
         std::to_string(cfg.rate_ops));
  }
  if (cfg.duration_ns == 0) {
    fail("ArrivalConfig.duration_ns must be >= 1");
  }
  if (cfg.keyrange == 0) fail("ArrivalConfig.keyrange must be >= 1");
  if (!std::isfinite(cfg.zipf_s) || cfg.zipf_s < 0) {
    fail("ArrivalConfig.zipf_s must be a finite skew >= 0, got " +
         std::to_string(cfg.zipf_s));
  }
  if (cfg.insert_frac < 0 || cfg.erase_frac < 0 ||
      cfg.insert_frac + cfg.erase_frac > 1.0 + 1e-9) {
    fail("ArrivalConfig op mix needs insert_frac, erase_frac >= 0 with "
         "insert_frac + erase_frac <= 1");
  }
  if (cfg.phases.empty()) {
    fail("ArrivalConfig.phases needs at least one multiplier (e.g. "
         "{1.0}); an empty phase list offers no load");
  }
  for (double m : cfg.phases) {
    if (!std::isfinite(m) || m <= 0) {
      fail("ArrivalConfig.phases multipliers must be finite and > 0, "
           "got " +
           std::to_string(m));
    }
  }
  if (cfg.tenants < 1) {
    fail("ArrivalConfig.tenants must be >= 1, got " +
         std::to_string(cfg.tenants));
  }
  if (!cfg.tenant_weights.empty()) {
    if (cfg.tenant_weights.size() != static_cast<std::size_t>(cfg.tenants)) {
      fail("ArrivalConfig.tenant_weights must be empty (uniform) or hold "
           "exactly `tenants` entries: got " +
           std::to_string(cfg.tenant_weights.size()) + " weights for " +
           std::to_string(cfg.tenants) + " tenants");
    }
    for (double w : cfg.tenant_weights) {
      if (!std::isfinite(w) || w <= 0) {
        fail("ArrivalConfig.tenant_weights must be finite and > 0, got " +
             std::to_string(w));
      }
    }
  }
  if (cfg.process == ArrivalConfig::Process::kBurst) {
    if (!std::isfinite(cfg.burst_factor) || cfg.burst_factor < 1) {
      fail("ArrivalConfig.burst_factor must be finite and >= 1");
    }
    if (!(cfg.burst_duty > 0) || !(cfg.burst_duty < 1)) {
      fail("ArrivalConfig.burst_duty must lie in (0, 1)");
    }
    if (cfg.burst_period_ns == 0) {
      fail("ArrivalConfig.burst_period_ns must be >= 1");
    }
  }
  const double expected =
      cfg.rate_ops * static_cast<double>(cfg.duration_ns) / 1e9;
  if (expected > static_cast<double>(kMaxArrivals)) {
    fail("ArrivalConfig offers ~" + std::to_string(expected) +
         " events (rate_ops x duration); the schedule cap is " +
         std::to_string(kMaxArrivals) +
         " — lower the rate or shorten the window");
  }
}

}  // namespace

Zipf::Zipf(std::uint64_t n, double s) : n_(n == 0 ? 1 : n) {
  if (s <= 0 || n_ < 2) return;  // uniform fast path
  // 1/(1-s) is singular at s == 1 (the harmonic case); nudging the
  // exponent keeps the closed-form inverse finite while changing ranks
  // by less than the sampler's own granularity.
  if (std::abs(s - 1.0) < 1e-9) s = 1.0 + 1e-9;
  uniform_ = false;
  s_ = s;
  zeta_n_ = 0.0;
  for (std::uint64_t i = 1; i <= n_; ++i) {
    zeta_n_ += std::pow(static_cast<double>(i), -s);
  }
  zeta2_ = 1.0 + std::pow(2.0, -s);
  alpha_ = 1.0 / (1.0 - s);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - s)) /
         (1.0 - zeta2_ / zeta_n_);
}

std::uint64_t Zipf::sample(double u) const {
  if (u < 0) u = 0;
  if (u >= 1) u = std::nextafter(1.0, 0.0);
  if (uniform_) {
    const auto r =
        static_cast<std::uint64_t>(u * static_cast<double>(n_));
    return r < n_ ? r : n_ - 1;
  }
  const double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < zeta2_) return 1;
  const auto r = static_cast<std::uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return r < n_ ? r : n_ - 1;
}

std::vector<Arrival> generate_arrivals(const ArrivalConfig& cfg) {
  validate(cfg);

  double max_phase = 0;
  for (double m : cfg.phases) max_phase = std::max(max_phase, m);
  const double slice_ns = static_cast<double>(cfg.duration_ns) /
                          static_cast<double>(cfg.phases.size());

  const bool burst = cfg.process == ArrivalConfig::Process::kBurst;
  // The off-fraction multiplier that keeps a burst period's mean at 1:
  // duty * factor + (1 - duty) * off == 1, clamped at 0 once the bursts
  // alone carry more than the mean.
  const double burst_off =
      burst ? std::max(0.0, (1.0 - cfg.burst_duty * cfg.burst_factor) /
                                (1.0 - cfg.burst_duty))
            : 1.0;
  const double burst_peak = burst ? cfg.burst_factor : 1.0;

  // Peak instantaneous rate, events per ns, for the thinning envelope.
  const double r_max_ns = cfg.rate_ops * max_phase * burst_peak / 1e9;

  auto rate_mult_at = [&](double t_ns) {
    auto p = static_cast<std::size_t>(t_ns / slice_ns);
    if (p >= cfg.phases.size()) p = cfg.phases.size() - 1;
    double m = cfg.phases[p];
    if (burst) {
      const double pos =
          std::fmod(t_ns, static_cast<double>(cfg.burst_period_ns));
      const bool on =
          pos < cfg.burst_duty * static_cast<double>(cfg.burst_period_ns);
      m *= on ? cfg.burst_factor : burst_off;
    }
    return m;
  };

  double wsum = 0;
  for (double w : cfg.tenant_weights) wsum += w;

  const Zipf zipf(cfg.keyrange, cfg.zipf_s);
  Rng rng(cfg.seed ^ 0xA5EB7C11DE01F5E3ULL);
  std::vector<Arrival> out;
  out.reserve(static_cast<std::size_t>(
      std::min(cfg.rate_ops * static_cast<double>(cfg.duration_ns) / 1e9 +
                   1024.0,
               static_cast<double>(kMaxArrivals))));

  // Lewis thinning: exponential candidate gaps at the peak rate, each
  // candidate kept with probability r(t)/r_max. The rng draw order per
  // candidate ([gap, accept] then [kind, key, tenant?] on acceptance)
  // is part of the schedule's identity — reordering it is a
  // determinism-breaking change (tests hash the schedule).
  double t_ns = 0;
  for (;;) {
    const double u = rng.next_double();
    t_ns += -std::log1p(-u) / r_max_ns;
    if (t_ns >= static_cast<double>(cfg.duration_ns)) break;
    const double keep = rate_mult_at(t_ns) / (max_phase * burst_peak);
    if (rng.next_double() >= keep) continue;

    Arrival a;
    a.t_ns = static_cast<std::uint64_t>(t_ns);
    const double r = rng.next_double();
    a.kind = r < cfg.insert_frac
                 ? 0
                 : (r < cfg.insert_frac + cfg.erase_frac ? 1 : 2);
    a.key = zipf.sample(rng.next_double());
    if (cfg.tenants > 1) {
      if (cfg.tenant_weights.empty()) {
        a.tenant = static_cast<std::uint16_t>(
            rng.next_range(static_cast<std::uint64_t>(cfg.tenants)));
      } else {
        double pick = rng.next_double() * wsum;
        int t = 0;
        while (t + 1 < cfg.tenants && pick >= cfg.tenant_weights[t]) {
          pick -= cfg.tenant_weights[t];
          ++t;
        }
        a.tenant = static_cast<std::uint16_t>(t);
      }
    }
    out.push_back(a);
    if (out.size() >= kMaxArrivals) {
      fail("generate_arrivals exceeded the " + std::to_string(kMaxArrivals) +
           "-event schedule cap mid-stream — lower EMR_RATE_OPS or EMR_MS");
    }
  }
  return out;
}

std::uint64_t arrival_schedule_hash(const std::vector<Arrival>& schedule) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (const Arrival& a : schedule) {
    mix(a.t_ns);
    mix(a.key);
    mix((static_cast<std::uint64_t>(a.tenant) << 8) | a.kind);
  }
  return h;
}

}  // namespace emr
