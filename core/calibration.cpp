#include "core/calibration.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "core/affinity.hpp"
#include "core/timing.hpp"

namespace emr::calibration {

namespace {

constexpr int kDefaultRounds = 50'000;
constexpr int kWarmupRounds = 2'000;

struct alignas(64) PingPongLine {
  std::atomic<std::uint32_t> turn{0};
};

/// One side of the ping-pong: wait for `turn` to reach values of our
/// parity, then advance it. The acquire/release pair is what forces the
/// cache line to physically migrate between the two pinned cores.
void bounce(PingPongLine* line, std::uint32_t parity, int rounds,
            std::atomic<bool>* pinned_ok, int cpu) {
  if (!affinity::pin_current_thread(cpu)) {
    pinned_ok->store(false, std::memory_order_relaxed);
  }
  const std::uint32_t total =
      static_cast<std::uint32_t>(2 * (kWarmupRounds + rounds));
  std::uint32_t expect = parity;
  while (expect < total) {
    while (line->turn.load(std::memory_order_acquire) != expect) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    line->turn.store(expect + 1, std::memory_order_release);
    expect += 2;
  }
}

}  // namespace

RemoteCost measure_remote_cost(int cpu_a, int cpu_b, int rounds) {
  RemoteCost rc;
  if (rounds < 1 || cpu_a < 0 || cpu_b < 0 || cpu_a == cpu_b) return rc;
  timing::calibrate_clock();

  PingPongLine line;
  std::atomic<bool> pinned_ok{true};
  std::atomic<std::uint64_t> t0{0};
  std::atomic<std::uint64_t> t1{0};

  // Side A (even turns) runs on its own thread too, so the calling
  // thread's affinity is left untouched.
  std::thread a([&] {
    if (!affinity::pin_current_thread(cpu_a)) {
      pinned_ok.store(false, std::memory_order_relaxed);
    }
    const std::uint32_t total =
        static_cast<std::uint32_t>(2 * (kWarmupRounds + rounds));
    const std::uint32_t measure_from =
        static_cast<std::uint32_t>(2 * kWarmupRounds);
    std::uint32_t expect = 0;
    while (expect < total) {
      if (expect == measure_from) {
        t0.store(now_ns(), std::memory_order_relaxed);
      }
      while (line.turn.load(std::memory_order_acquire) != expect) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
      line.turn.store(expect + 1, std::memory_order_release);
      expect += 2;
    }
    t1.store(now_ns(), std::memory_order_relaxed);
  });
  std::thread b(bounce, &line, 1u, rounds, &pinned_ok, cpu_b);
  a.join();
  b.join();

  if (!pinned_ok.load(std::memory_order_relaxed)) return rc;
  const std::uint64_t elapsed =
      t1.load(std::memory_order_relaxed) - t0.load(std::memory_order_relaxed);
  rc.measured = true;
  // Each round-trip is two one-way transfers; floor at 1 ns so a
  // measured penalty is never "free".
  rc.one_way_ns = elapsed / (2ull * static_cast<std::uint64_t>(rounds));
  if (rc.one_way_ns == 0) rc.one_way_ns = 1;
  rc.cpu_a = cpu_a;
  rc.cpu_b = cpu_b;
  return rc;
}

const RemoteCost& remote_cost() {
  static const RemoteCost cached = [] {
    const std::vector<int> cpus = affinity::allowed_cpus();
    if (cpus.size() < 2) return RemoteCost{};  // measured == false
    return measure_remote_cost(cpus.front(), cpus.back(), kDefaultRounds);
  }();
  return cached;
}

}  // namespace emr::calibration
