// The repo's one test-and-set spinlock, shared by the locked data
// structures (ds/shardedset.cpp shards, ds/occtree.cpp's writer lock).
#pragma once

#include <atomic>

namespace emr {

struct Spinlock {
  std::atomic_flag flag = ATOMIC_FLAG_INIT;

  void lock() {
    while (flag.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }

  void unlock() { flag.clear(std::memory_order_release); }
};

}  // namespace emr
