// Monotonic time and the busy-wait used to model fixed hardware costs
// (e.g. the cross-socket cache-line transfer a remote free pays).
//
// Two clock sources sit behind now_ns():
//
//   tsc    - the invariant TSC (rdtsc), runtime-detected via CPUID leaf
//            0x80000007 EDX bit 8 and calibrated once against
//            steady_clock. One register read per timestamp instead of a
//            vDSO clock_gettime call — the per-op overhead PR 6's latency
//            recorders used to pay twice per operation.
//   steady - std::chrono::steady_clock (clock_gettime under the hood).
//            The fallback on non-x86 builds, when the TSC is not
//            invariant, and under EMR_TSC=0.
//
// calibrate_clock() is idempotent and cheap after the first call; the
// harness runs it from every Trial constructor, so benches and tests get
// the fast clock without any per-call opt-in. Until it runs, now_ns()
// serves steady_clock — the TSC path anchors itself to the steady clock
// at calibration time, so timestamps taken across the switch stay on one
// continuous timeline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace emr {

namespace timing {
namespace detail {

// Published by calibrate_clock(): the anchor fields are plain stores
// sequenced before the release store of g_use_tsc, and now_ns() only
// reads them after its acquire load sees true — no torn reads.
extern std::atomic<bool> g_use_tsc;
extern std::uint64_t g_anchor_tsc;
extern std::uint64_t g_anchor_ns;
extern double g_ns_per_tick;

inline std::uint64_t read_tsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return 0;
#endif
}

inline std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Out-of-line burn behind spin_for_ns's zero-cost early-out.
void spin_slow(std::uint64_t ns);

// Test seam: tear the clock back down and re-run the full calibration,
// optionally forbidding the TSC path (exercises the clock_gettime
// fallback in-process). Not thread-safe against concurrent now_ns()
// users beyond the anchor-publication ordering above.
void recalibrate_for_test(bool allow_tsc);

}  // namespace detail

/// One-time process-wide calibration: detects the invariant TSC, measures
/// its tick rate against steady_clock (~2 ms), switches now_ns() over,
/// and calibrates the pause-loop rate spin_for_ns burns. EMR_TSC=0
/// forces the steady fallback. Thread-safe; later calls are no-ops.
void calibrate_clock();

/// True when now_ns() is currently serving rdtsc timestamps.
bool tsc_active();

/// Calibrated TSC frequency in GHz (ticks per ns); 0 on the fallback.
double tsc_ghz();

/// "tsc" | "steady" — what now_ns() reads right now.
const char* clock_name();

/// Calibrated pause-loop iterations per nanosecond (0 until
/// calibrate_clock ran). The max rate observed across trials, so a burn
/// of n*rate iterations takes at least ~n ns even on a quiet core.
double pause_rate();

}  // namespace timing

inline std::uint64_t now_ns() {
  if (timing::detail::g_use_tsc.load(std::memory_order_acquire)) {
    const std::uint64_t t = timing::detail::read_tsc();
    return timing::detail::g_anchor_ns +
           static_cast<std::uint64_t>(
               static_cast<double>(t - timing::detail::g_anchor_tsc) *
               timing::detail::g_ns_per_tick);
  }
  return timing::detail::steady_now_ns();
}

/// Burn roughly `ns` nanoseconds of CPU. Used by the allocator models to
/// charge costs the laptop-scale run cannot observe natively (DESIGN
/// substitution: the four-socket remote-free latency). After
/// calibrate_clock() the burn is a counted pause loop — sub-100ns
/// penalties no longer drown in clock-read overhead; before it (or for
/// long waits) it falls back to a clock-deadline loop.
inline void spin_for_ns(std::uint64_t ns) {
  if (ns == 0) return;
  timing::detail::spin_slow(ns);
}

}  // namespace emr
