// Monotonic time and the busy-wait used to model fixed hardware costs
// (e.g. the cross-socket cache-line transfer a remote free pays).
#pragma once

#include <chrono>
#include <cstdint>

namespace emr {

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Burn roughly `ns` nanoseconds of CPU. Used by the allocator models to
/// charge costs the laptop-scale run cannot observe natively (DESIGN
/// substitution: the four-socket remote-free latency).
inline void spin_for_ns(std::uint64_t ns) {
  if (ns == 0) return;
  const std::uint64_t deadline = now_ns() + ns;
  while (now_ns() < deadline) {
    // Relax the pipeline; keeps the spin from starving SMT siblings.
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace emr
