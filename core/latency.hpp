// Per-op latency recording: one fixed 64-bucket log2 histogram per
// registration lane, built for the harness hot path. Recording one
// sample is two relaxed atomic RMWs on the caller's own cache line
// (bucket counter + running max) — no locks, no allocation, no
// cross-lane traffic — so the recorder can stay armed around every
// operation of a trial without perturbing the tail it measures. Lanes
// merge at read time (trial end or the schedule sampler's beat) into a
// plain LatencyHistogram that percentile queries interpolate over.
//
// The paper's harm is a *tail* phenomenon: a whole-bag free stalls one
// unlucky op while throughput stays flat, so mops alone cannot show it.
// This recorder is what makes p99.9 a first-class column (ROADMAP item
// 2) and the feedback signal for the latency-target free schedule.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

namespace emr {

/// Bucket b holds samples with bit_width(ns) == b, i.e. bucket 0 is
/// exactly {0 ns}, bucket b >= 1 covers [2^(b-1), 2^b). uint64
/// nanoseconds never need more than 64 buckets, so the top bucket is
/// only reachable by samples >= 2^62 ns (~146 years) — the histogram
/// cannot overflow by range.
inline constexpr int kLatencyBuckets = 64;

inline int latency_bucket(std::uint64_t ns) {
  const int w = std::bit_width(ns);  // 0 for ns == 0, else 1..64
  return w < kLatencyBuckets ? w : kLatencyBuckets - 1;
}

/// Smallest ns value that lands in bucket `b` (inverse of
/// latency_bucket at the lower bucket edge).
inline std::uint64_t latency_bucket_floor(int b) {
  return b <= 0 ? 0 : std::uint64_t{1} << (b - 1);
}

/// A merged (or single-lane) histogram snapshot: plain counters, safe to
/// copy, add, and query without touching the recorder again.
struct LatencyHistogram {
  std::array<std::uint64_t, kLatencyBuckets> buckets{};
  std::uint64_t count = 0;   // total recorded samples
  std::uint64_t max_ns = 0;  // exact maximum sample

  void add(const LatencyHistogram& o) {
    for (int b = 0; b < kLatencyBuckets; ++b) buckets[b] += o.buckets[b];
    count += o.count;
    max_ns = max_ns > o.max_ns ? max_ns : o.max_ns;
  }
};

/// Quantile in nanoseconds for q in [0, 1] (e.g. 0.999 for p99.9):
/// walks the cumulative counts to the target bucket and interpolates
/// linearly inside it, so repeated identical inputs still move the
/// estimate monotonically with q. The result is clamped to the exact
/// recorded max; an empty histogram yields 0. Resolution is bounded by
/// the log2 bucket width: the true quantile lies within a factor of 2
/// (see docs/LATENCY.md for the error model).
double latency_percentile(const LatencyHistogram& h, double q);

/// The per-lane recorder a Trial owns. reset() (off the hot path)
/// allocates one cache-line-aligned Lane per registration slot;
/// record() is called by the lane's owning thread once per op, and
/// merged() may run concurrently from the schedule sampler — counters
/// are relaxed atomics, so a mid-trial merge sees a slightly stale but
/// never torn histogram.
///
/// A lane can be split into `channels` independent histograms (the
/// harness keys them by op kind: insert/erase/lookup tails separate).
/// Every channel of a lane is still that lane's private cache lines;
/// merged() spans all channels, merged_channel() isolates one.
class LatencyRecorder {
 public:
  /// Re-arms (or disarms) the recorder with `lanes` fresh lanes of one
  /// channel each. Single-threaded: call before workers start.
  void reset(int lanes, bool enabled) { reset(lanes, 1, enabled); }

  /// Multi-channel re-arm: lanes x channels fresh histograms.
  void reset(int lanes, int channels, bool enabled);

  bool enabled() const { return enabled_; }
  int lane_count() const { return lanes_ ? n_ : 0; }
  int channel_count() const { return lanes_ ? channels_ : 0; }

  /// One sample on `lane`'s channel 0.
  void record(int lane, std::uint64_t ns) { record(lane, 0, ns); }

  /// One sample on `lane`'s own cache line(s). Out-of-range lanes and
  /// channels fold onto 0 rather than dropping the sample.
  void record(int lane, int channel, std::uint64_t ns) {
    if (!enabled_) return;
    if (lane < 0 || lane >= n_) lane = 0;
    if (channel < 0 || channel >= channels_) channel = 0;
    Lane& l = lanes_[static_cast<std::size_t>(lane * channels_ + channel)];
    l.counts[static_cast<std::size_t>(latency_bucket(ns))].fetch_add(
        1, std::memory_order_relaxed);
    std::uint64_t seen = l.max_ns.load(std::memory_order_relaxed);
    while (ns > seen &&
           !l.max_ns.compare_exchange_weak(seen, ns,
                                           std::memory_order_relaxed)) {
    }
  }

  /// Sums every lane and channel into one snapshot. Callable from any
  /// thread.
  LatencyHistogram merged() const;

  /// One channel's snapshot across all lanes (per-op-kind percentiles).
  LatencyHistogram merged_channel(int channel) const;

  /// One lane's snapshot across its channels (tests and per-lane
  /// diagnostics).
  LatencyHistogram lane_histogram(int lane) const;

 private:
  struct alignas(64) Lane {
    std::array<std::atomic<std::uint64_t>, kLatencyBuckets> counts{};
    std::atomic<std::uint64_t> max_ns{0};
  };

  LatencyHistogram cell_histogram(int cell) const;

  std::unique_ptr<Lane[]> lanes_;  // n_ x channels_, lane-major
  int n_ = 0;
  int channels_ = 1;
  bool enabled_ = false;
};

}  // namespace emr
