// Minimal drop-in for the subset of the google-benchmark API the micro
// suites use. Selected by CMake only when the real library is absent (or
// EMR_WITH_GBENCH=OFF): runs each case for a fixed iteration budget and
// prints ns/op, so the binaries stay buildable and runnable everywhere.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

class State {
 public:
  explicit State(std::int64_t iterations) : remaining_(iterations) {}

  struct iterator {
    State* state;
    bool operator!=(const iterator&) const { return state->keep_running(); }
    void operator++() {}
    int operator*() const { return 0; }
  };
  iterator begin() { return iterator{this}; }
  iterator end() { return iterator{this}; }

  void PauseTiming() { pause_start_ = clock::now(); }
  void ResumeTiming() { paused_ += clock::now() - pause_start_; }
  void SetItemsProcessed(std::int64_t n) { items_ = n; }

  std::int64_t iterations() const { return done_; }
  std::int64_t items_processed() const { return items_; }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(finish_ - start_ - paused_).count();
  }

 private:
  using clock = std::chrono::steady_clock;

  bool keep_running() {
    if (done_ == 0 && remaining_ > 0) {
      start_ = clock::now();
      deadline_ = start_ + std::chrono::milliseconds(50);
    }
    // Stop at the iteration cap or the per-case time budget, whichever
    // comes first (heavy fixtures would otherwise run for minutes).
    if (remaining_-- > 0 && ((done_ & 0xFF) != 0 || done_ == 0 ||
                             clock::now() < deadline_)) {
      ++done_;
      return true;
    }
    finish_ = clock::now();
    return false;
  }

  std::int64_t remaining_;
  std::int64_t done_ = 0;
  std::int64_t items_ = 0;
  clock::time_point start_{};
  clock::time_point finish_{};
  clock::time_point deadline_{};
  clock::time_point pause_start_{};
  clock::duration paused_{};
};

namespace internal {

struct Case {
  std::string name;
  std::function<void(State&)> fn;
};

inline std::vector<Case>& registry() {
  static std::vector<Case> cases;
  return cases;
}

inline int register_case(std::string name, std::function<void(State&)> fn) {
  registry().push_back(Case{std::move(name), std::move(fn)});
  return 0;
}

inline int run_all() {
  std::printf("%-40s %15s %12s\n", "benchmark (stub runner)", "iterations",
              "ns/op");
  for (const Case& c : registry()) {
    constexpr std::int64_t kIters = 100000;
    State state(kIters);
    c.fn(state);
    const double ns = state.iterations() > 0
                          ? state.elapsed_seconds() * 1e9 /
                                static_cast<double>(state.iterations())
                          : 0.0;
    std::printf("%-40s %15lld %12.1f\n", c.name.c_str(),
                static_cast<long long>(state.iterations()), ns);
  }
  return 0;
}

}  // namespace internal

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

// Entry points mirroring the real library so suites can define their own
// main() (argument parsing is a no-op here).
inline void Initialize(int*, char**) {}
inline bool ReportUnrecognizedArguments(int, char**) { return false; }
inline std::size_t RunSpecifiedBenchmarks() {
  internal::run_all();
  return internal::registry().size();
}
inline void Shutdown() {}

}  // namespace benchmark

#define BENCHMARK_STUB_CONCAT2(a, b) a##b
#define BENCHMARK_STUB_CONCAT(a, b) BENCHMARK_STUB_CONCAT2(a, b)

#define BENCHMARK(fn)                                              \
  static int BENCHMARK_STUB_CONCAT(bm_reg_, __LINE__) =            \
      ::benchmark::internal::register_case(#fn, [](::benchmark::State& s) { \
        fn(s);                                                     \
      })

#define BENCHMARK_CAPTURE(fn, label, ...)                          \
  static int BENCHMARK_STUB_CONCAT(bm_reg_, __LINE__) =            \
      ::benchmark::internal::register_case(                        \
          std::string(#fn "/") + #label,                           \
          [](::benchmark::State& s) { fn(s, __VA_ARGS__); })

#define BENCHMARK_MAIN() \
  int main() { return ::benchmark::internal::run_all(); }
