#include <stdexcept>

#include "ds/set.hpp"

namespace emr::ds {

namespace {

[[noreturn]] void throw_unknown(const std::string& name) {
  std::string msg = "unknown ds: '" + name + "' (valid:";
  for (const std::string& n : set_names()) msg += " " + n;
  msg += ")";
  throw std::invalid_argument(msg);
}

}  // namespace

std::unique_ptr<ConcurrentSet> make_set(const std::string& name,
                                        const SetConfig& cfg,
                                        smr::Reclaimer* reclaimer) {
  if (reclaimer == nullptr) {
    throw std::invalid_argument("make_set: reclaimer unset");
  }
  if (name == "abtree") return make_abtree(cfg, reclaimer);
  if (name == "occtree") return make_occtree(cfg, reclaimer);
  if (name == "dgt") return make_dgt_hash(cfg, reclaimer);
  if (name == "shardedset") return make_shardedset(cfg, reclaimer);
  throw_unknown(name);
}

const std::vector<std::string>& set_names() {
  static const std::vector<std::string> kNames = {"abtree", "occtree", "dgt",
                                                  "shardedset"};
  return kNames;
}

std::size_t node_size_for_ds(const std::string& name) {
  if (name == "abtree") return abtree_node_size();
  if (name == "occtree") return occtree_node_size();
  if (name == "dgt") return dgt_node_size();
  if (name == "shardedset") return shardedset_node_size();
  throw_unknown(name);
}

}  // namespace emr::ds
