#include <stdexcept>

#include "ds/queue.hpp"
#include "ds/set.hpp"

namespace emr::ds {

namespace {

[[noreturn]] void throw_unknown(const std::string& name) {
  std::string msg = "unknown ds: '" + name + "' (valid:";
  for (const std::string& n : set_names()) msg += " " + n;
  msg += ")";
  throw std::invalid_argument(msg);
}

[[noreturn]] void throw_unknown_queue(const std::string& name) {
  std::string msg = "unknown queue ds: '" + name + "' (valid:";
  for (const std::string& n : queue_names()) msg += " " + n;
  msg += ")";
  throw std::invalid_argument(msg);
}

}  // namespace

std::unique_ptr<ConcurrentSet> make_set(const std::string& name,
                                        const SetConfig& cfg,
                                        smr::Reclaimer* reclaimer) {
  if (reclaimer == nullptr) {
    throw std::invalid_argument("make_set: reclaimer unset");
  }
  if (name == "abtree") return make_abtree(cfg, reclaimer);
  if (name == "occtree") return make_occtree(cfg, reclaimer);
  if (name == "dgt") return make_dgt_hash(cfg, reclaimer);
  if (name == "shardedset") return make_shardedset(cfg, reclaimer);
  throw_unknown(name);
}

const std::vector<std::string>& set_names() {
  static const std::vector<std::string> kNames = {"abtree", "occtree", "dgt",
                                                  "shardedset"};
  return kNames;
}

std::size_t node_size_for_ds(const std::string& name) {
  if (name == "abtree") return abtree_node_size();
  if (name == "occtree") return occtree_node_size();
  if (name == "dgt") return dgt_node_size();
  if (name == "shardedset") return shardedset_node_size();
  throw_unknown(name);
}

std::unique_ptr<ConcurrentQueue> make_queue(const std::string& name,
                                            const QueueConfig& cfg,
                                            smr::Reclaimer* reclaimer) {
  if (reclaimer == nullptr) {
    throw std::invalid_argument("make_queue: reclaimer unset");
  }
  if (name == "msqueue") return make_msqueue(cfg, reclaimer);
  if (name == "lockedqueue") return make_lockedqueue(cfg, reclaimer);
  throw_unknown_queue(name);
}

const std::vector<std::string>& queue_names() {
  static const std::vector<std::string> kNames = {"msqueue", "lockedqueue"};
  return kNames;
}

std::size_t node_size_for_queue(const std::string& name) {
  if (name == "msqueue") return msqueue_node_size();
  if (name == "lockedqueue") return lockedqueue_node_size();
  throw_unknown_queue(name);
}

}  // namespace emr::ds
