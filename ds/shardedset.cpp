// The seed harness's sharded chained hash set, kept verbatim in spirit
// as the locked regression baseline: mutations and lookups take a shard
// spinlock, so the reclaimer's read-side cost is exercised (protect per
// hop) but never load-bearing. Compare any lock-free structure against
// this to see what the locks were hiding.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "core/rng.hpp"
#include "core/spinlock.hpp"
#include "ds/set.hpp"

namespace emr::ds {
namespace {

struct Node {
  smr::NodeHeader hdr;
  std::uint64_t key;
  std::atomic<Node*> next;
  char pad[32 - sizeof(smr::NodeHeader) - sizeof(std::uint64_t) -
           sizeof(std::atomic<Node*>)];

  explicit Node(std::uint64_t k) : key(k), next(nullptr) {}
};
static_assert(sizeof(Node) == 32);
static_assert(std::is_standard_layout_v<Node>);

class ShardedSet final : public ConcurrentSet {
 public:
  ShardedSet(const SetConfig& cfg, smr::Reclaimer* r) : r_(r) {
    std::size_t want = std::max<std::uint64_t>(cfg.keyrange / 2, 64);
    nbuckets_ = 1;
    while (nbuckets_ < want) nbuckets_ <<= 1;
    buckets_ = std::make_unique<std::atomic<Node*>[]>(nbuckets_);
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      buckets_[i].store(nullptr, std::memory_order_relaxed);
    }
    locks_ = std::make_unique<Spinlock[]>(kShards);
  }

  ~ShardedSet() override {
    // Single-threaded teardown; the cursor degrades gracefully when
    // the slot table is exhausted (destructors must not throw).
    smr::TeardownCursor td(*r_);
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      Node* n = buckets_[i].load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* next = n->next.load(std::memory_order_relaxed);
        td.dealloc(n);
        n = next;
      }
    }
  }

  bool insert(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    const std::size_t b = bucket_of(key);
    Spinlock& lock = locks_[b & (kShards - 1)];
    lock.lock();
    Node* head = buckets_[b].load(std::memory_order_relaxed);
    for (Node* n = head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) {
        lock.unlock();
        return false;
      }
    }
    Node* node = smr::make_node<Node>(h, key);
    node->next.store(head, std::memory_order_relaxed);
    buckets_[b].store(node, std::memory_order_release);
    lock.unlock();
    return true;
  }

  bool erase(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    const std::size_t b = bucket_of(key);
    Spinlock& lock = locks_[b & (kShards - 1)];
    lock.lock();
    Node* prev = nullptr;
    Node* n = buckets_[b].load(std::memory_order_relaxed);
    while (n != nullptr && n->key != key) {
      prev = n;
      n = n->next.load(std::memory_order_relaxed);
    }
    if (n == nullptr) {
      lock.unlock();
      return false;
    }
    Node* next = n->next.load(std::memory_order_relaxed);
    if (prev == nullptr) {
      buckets_[b].store(next, std::memory_order_release);
    } else {
      prev->next.store(next, std::memory_order_release);
    }
    lock.unlock();
    g.retire(n);
    return true;
  }

  bool contains(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    const std::size_t b = bucket_of(key);
    Spinlock& lock = locks_[b & (kShards - 1)];
    lock.lock();
    // The shard lock pins the path, but traversals still protect() per
    // hop so pointer-protecting schemes pay their read-side cost (slot
    // choice wraps mod the reclaimer's configured count).
    int hop = 0;
    Node* n = g.protect(hop, buckets_[b]);
    bool found = false;
    while (n != nullptr) {
      if (n->key == key) {
        found = true;
        break;
      }
      ++hop;
      n = g.protect(hop, n->next);
    }
    lock.unlock();
    return found;
  }

  const char* name() const override { return "shardedset"; }
  std::size_t node_size() const override { return sizeof(Node); }

 private:
  static constexpr std::size_t kShards = 256;

  std::size_t bucket_of(std::uint64_t key) const {
    std::uint64_t s = key;
    return static_cast<std::size_t>(splitmix64(s)) & (nbuckets_ - 1);
  }

  smr::Reclaimer* r_;
  std::size_t nbuckets_;
  std::unique_ptr<std::atomic<Node*>[]> buckets_;
  std::unique_ptr<Spinlock[]> locks_;
};

}  // namespace

std::unique_ptr<ConcurrentSet> make_shardedset(const SetConfig& cfg,
                                               smr::Reclaimer* r) {
  return std::make_unique<ShardedSet>(cfg, r);
}

std::size_t shardedset_node_size() { return sizeof(Node); }

}  // namespace emr::ds
