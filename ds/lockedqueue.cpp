// One-spinlock linked FIFO queue, the locked regression baseline for
// msqueue: every enqueue/dequeue takes the same lock, so the
// reclaimer's read-side cost is exercised (a Guard still brackets each
// op and dequeued nodes still leave through retire) but never
// load-bearing. Compare msqueue against this to see what the lock was
// hiding — and note that the retire rate still equals the dequeue
// rate, so the free-schedule pathology shows up here too.
#include <atomic>
#include <cstdint>
#include <memory>

#include "core/spinlock.hpp"
#include "ds/queue.hpp"

namespace emr::ds {
namespace {

struct Node {
  smr::NodeHeader hdr;
  std::uint64_t value;
  std::atomic<Node*> next;
  char pad[32 - sizeof(smr::NodeHeader) - sizeof(std::uint64_t) -
           sizeof(std::atomic<Node*>)];

  explicit Node(std::uint64_t v) : value(v), next(nullptr) {}
};
static_assert(sizeof(Node) == 32);
static_assert(std::is_standard_layout_v<Node>);

class LockedQueue final : public ConcurrentQueue {
 public:
  LockedQueue(const QueueConfig& cfg, smr::Reclaimer* r)
      : r_(r), cap_(cfg.capacity) {}

  ~LockedQueue() override {
    // Single-threaded teardown; the cursor degrades gracefully when
    // the slot table is exhausted (destructors must not throw).
    smr::TeardownCursor td(*r_);
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      td.dealloc(n);
      n = next;
    }
  }

  bool enqueue(smr::ThreadHandle& h, std::uint64_t value) override {
    smr::Guard g(h);
    lock_.lock();
    if (cap_ != 0 && size_ >= cap_) {
      lock_.unlock();
      return false;
    }
    Node* n = smr::make_node<Node>(h, value);
    if (tail_ == nullptr) {
      head_ = tail_ = n;
    } else {
      tail_->next.store(n, std::memory_order_release);
      tail_ = n;
    }
    ++size_;
    lock_.unlock();
    return true;
  }

  bool dequeue(smr::ThreadHandle& h, std::uint64_t* out) override {
    smr::Guard g(h);
    lock_.lock();
    Node* n = head_;
    if (n == nullptr) {
      lock_.unlock();
      return false;
    }
    head_ = n->next.load(std::memory_order_relaxed);
    if (head_ == nullptr) tail_ = nullptr;
    --size_;
    const std::uint64_t value = n->value;
    lock_.unlock();
    g.retire(n);
    *out = value;
    return true;
  }

  const char* name() const override { return "lockedqueue"; }
  std::size_t node_size() const override { return sizeof(Node); }

 private:
  smr::Reclaimer* r_;
  const std::uint64_t cap_;
  Spinlock lock_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::uint64_t size_ = 0;
};

}  // namespace

std::unique_ptr<ConcurrentQueue> make_lockedqueue(const QueueConfig& cfg,
                                                  smr::Reclaimer* r) {
  return std::make_unique<LockedQueue>(cfg, r);
}

std::size_t lockedqueue_node_size() { return sizeof(Node); }

}  // namespace emr::ds
