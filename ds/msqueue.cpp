// Michael-Scott lock-free MPMC queue (Michael & Scott, "Simple, Fast,
// and Practical Non-Blocking and Blocking Concurrent Queue Algorithms",
// PODC 1996): a dummy-headed singly linked list. Enqueue CASes the
// tail's next pointer and then swings tail (helping a lagging tail it
// finds on the way); dequeue CASes head forward to the next node, and
// the winner of that CAS retires the old head — so the node that leaves
// through Guard::retire on a dequeue is the one the *previous* dequeue
// (or the constructor) installed as dummy, and the retire rate equals
// the dequeue rate exactly.
// Traversals are one Guard, protect() per hop across two slots (head in
// slot 0, its successor in slot 1, so the dereferenced node is always
// covered), a tail/head consistency re-check after every protect, and a
// validate() poll for NBR neutralization.
#include <atomic>
#include <cstdint>
#include <memory>

#include "ds/queue.hpp"

namespace emr::ds {
namespace {

struct Node {
  smr::NodeHeader hdr;
  std::uint64_t value;
  std::atomic<Node*> next;
  // Pad to a cache line so adjacent queue nodes never false-share the
  // hot next pointers.
  char pad[64 - sizeof(smr::NodeHeader) - sizeof(std::uint64_t) -
           sizeof(std::atomic<Node*>)];

  explicit Node(std::uint64_t v) : value(v), next(nullptr) {}
};
static_assert(sizeof(Node) == 64);
static_assert(std::is_standard_layout_v<Node>);

class MsQueue final : public ConcurrentQueue {
 public:
  MsQueue(const QueueConfig& cfg, smr::Reclaimer* r)
      : r_(r), cap_(cfg.capacity) {
    // Construction is single-threaded, so the dummy comes from a
    // transient handle (released before any worker registers).
    smr::ThreadHandle h = r_->register_thread();
    Node* dummy = smr::make_node<Node>(h, 0);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  ~MsQueue() override {
    // Single-threaded teardown: everything the queue still owns — the
    // current dummy plus any undequeued values — is one next-chain walk
    // from head. The cursor degrades gracefully when the slot table is
    // exhausted (destructors must not throw).
    smr::TeardownCursor td(*r_);
    Node* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      td.dealloc(n);
      n = next;
    }
  }

  bool enqueue(smr::ThreadHandle& h, std::uint64_t value) override {
    smr::Guard g(h);
    // Soft capacity: refuse before allocating, so a full queue costs no
    // node churn (the counter is approximate under concurrency, which
    // is all a backpressure check needs).
    if (cap_ != 0 &&
        size_.load(std::memory_order_relaxed) >=
            static_cast<std::int64_t>(cap_)) {
      return false;
    }
    Node* n = smr::make_node<Node>(h, value);
    for (;;) {
      Node* tail = g.protect(0, tail_);
      if (!g.validate()) continue;  // NBR: re-read from the root
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        // Tail is lagging: help swing it, then retry.
        tail_.compare_exchange_strong(tail, next,
                                      std::memory_order_acq_rel);
        continue;
      }
      Node* expected = nullptr;
      if (tail->next.compare_exchange_strong(expected, n,
                                             std::memory_order_acq_rel)) {
        // Link succeeded; swinging tail is cooperative (a rival enqueue
        // or dequeue may already have helped).
        tail_.compare_exchange_strong(tail, n, std::memory_order_acq_rel);
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  bool dequeue(smr::ThreadHandle& h, std::uint64_t* out) override {
    smr::Guard g(h);
    for (;;) {
      Node* head = g.protect(0, head_);
      if (!g.validate()) continue;
      // Hand-over-hand: head stays protected in slot 0 while its
      // successor is published in slot 1.
      Node* next = g.protect(1, head->next);
      Node* tail = tail_.load(std::memory_order_acquire);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (!g.validate()) continue;
      if (next == nullptr) return false;  // dummy is last: empty
      if (head == tail) {
        // Non-empty but tail still points at the dummy: help the
        // in-flight enqueue swing it before consuming.
        tail_.compare_exchange_strong(tail, next,
                                      std::memory_order_acq_rel);
        continue;
      }
      // Read the value BEFORE the head CAS: after the CAS the old head
      // is retired and `next` becomes the new dummy another dequeuer
      // may immediately retire in turn.
      const std::uint64_t value = next->value;
      Node* expected = head;
      if (head_.compare_exchange_strong(expected, next,
                                        std::memory_order_acq_rel)) {
        size_.fetch_sub(1, std::memory_order_relaxed);
        g.retire(head);  // only the CAS winner retires, exactly once
        *out = value;
        return true;
      }
    }
  }

  const char* name() const override { return "msqueue"; }
  std::size_t node_size() const override { return sizeof(Node); }

 private:
  smr::Reclaimer* r_;
  const std::uint64_t cap_;
  std::atomic<Node*> head_;
  std::atomic<Node*> tail_;
  // Signed so a transient dequeue-side undershoot never wraps the
  // capacity check.
  std::atomic<std::int64_t> size_{0};
};

}  // namespace

std::unique_ptr<ConcurrentQueue> make_msqueue(const QueueConfig& cfg,
                                              smr::Reclaimer* r) {
  return std::make_unique<MsQueue>(cfg, r);
}

std::size_t msqueue_node_size() { return sizeof(Node); }

}  // namespace emr::ds
