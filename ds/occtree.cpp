// OCC-flavoured external (leaf-oriented) BST: internal nodes carry only
// routing keys (smallest key of the right subtree) and exactly two
// children; keys live in the leaves. Writers serialize on one lock, as
// in Bronson's optimistic tree the paper benchmarks; readers are
// completely lock-free and optimistic — one Guard, a protect() per hop
// alternating two slots, and a mark check on every returned word.
// Removal freezes the doomed parent by marking both of its child links
// before swinging the grandparent past it, so a reader that validated a
// pointer out of a node that died mid-traversal always sees the mark and
// restarts from the root instead of stepping onto a retired child (the
// tree analogue of Michael's ⟨mark,next⟩ recheck).
#include <algorithm>
#include <atomic>
#include <cstdint>

#include "core/spinlock.hpp"
#include "ds/marked_ptr.hpp"
#include "ds/set.hpp"

namespace emr::ds {
namespace {

struct Node {
  smr::NodeHeader hdr;        // 8
  std::uint64_t key;          // 8: leaf key, or routing separator
  std::atomic<Node*> left;    // 8: both null <=> leaf
  std::atomic<Node*> right;   // 8
  char pad[64 - sizeof(smr::NodeHeader) - sizeof(std::uint64_t) -
           2 * sizeof(std::atomic<Node*>)];

  Node(std::uint64_t k, Node* l, Node* r) : key(k), left(l), right(r) {}
};
static_assert(sizeof(Node) == 64);
static_assert(std::is_standard_layout_v<Node>);

class OccTree final : public ConcurrentSet {
 public:
  explicit OccTree(smr::Reclaimer* r) : r_(r) {
    root_.store(nullptr, std::memory_order_relaxed);
  }

  ~OccTree() override {
    // Single-threaded teardown; the cursor degrades gracefully when
    // the slot table is exhausted (destructors must not throw).
    smr::TeardownCursor td(*r_);
    free_subtree(td, root_.load(std::memory_order_relaxed));
  }

  bool insert(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    lock_.lock();
    Node* curr = root_.load(std::memory_order_relaxed);
    if (curr == nullptr) {
      root_.store(smr::make_node<Node>(h, key, nullptr, nullptr),
                  std::memory_order_release);
      lock_.unlock();
      return true;
    }
    std::atomic<Node*>* pf = &root_;
    while (curr->left.load(std::memory_order_relaxed) != nullptr) {
      pf = key < curr->key ? &curr->left : &curr->right;
      curr = pf->load(std::memory_order_relaxed);
    }
    if (curr->key == key) {
      lock_.unlock();
      return false;
    }
    // Replace the leaf with a router over {old leaf, new leaf}; the old
    // leaf stays in the tree, so nothing is retired on insert.
    Node* fresh = smr::make_node<Node>(h, key, nullptr, nullptr);
    Node* small = key < curr->key ? fresh : curr;
    Node* big = key < curr->key ? curr : fresh;
    Node* router = smr::make_node<Node>(h, big->key, small, big);
    pf->store(router, std::memory_order_release);
    lock_.unlock();
    return true;
  }

  bool erase(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    lock_.lock();
    Node* curr = root_.load(std::memory_order_relaxed);
    if (curr == nullptr) {
      lock_.unlock();
      return false;
    }
    Node* parent = nullptr;
    std::atomic<Node*>* pf = &root_;   // link to curr
    std::atomic<Node*>* gpf = nullptr; // link to parent
    while (curr->left.load(std::memory_order_relaxed) != nullptr) {
      gpf = pf;
      parent = curr;
      pf = key < curr->key ? &curr->left : &curr->right;
      curr = pf->load(std::memory_order_relaxed);
    }
    if (curr->key != key) {
      lock_.unlock();
      return false;
    }
    if (parent == nullptr) {
      root_.store(nullptr, std::memory_order_release);
      g.retire(curr);
      lock_.unlock();
      return true;
    }
    std::atomic<Node*>& sibf =
        pf == &parent->left ? parent->right : parent->left;
    Node* sibling = sibf.load(std::memory_order_relaxed);
    // Freeze the doomed parent (readers mid-hop see the marks and
    // restart), then swing the grandparent past it.
    parent->left.store(
        with_mark(parent->left.load(std::memory_order_relaxed)),
        std::memory_order_release);
    parent->right.store(
        with_mark(parent->right.load(std::memory_order_relaxed)),
        std::memory_order_release);
    gpf->store(sibling, std::memory_order_release);
    g.retire(parent);
    g.retire(curr);
    lock_.unlock();
    return true;
  }

  bool contains(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
  retry:
    (void)g.validate();
    Node* curr = g.protect(0, root_);  // the root link is never marked
    if (curr == nullptr) return false;
    for (int depth = 0;;) {
      if (!g.validate()) goto retry;  // NBR: old pointers now invalid
      Node* l = curr->left.load(std::memory_order_acquire);
      if (is_marked(l)) goto retry;   // curr is frozen (being unlinked)
      if (l == nullptr) return curr->key == key;  // external: a leaf
      std::atomic<Node*>& field =
          key < curr->key ? curr->left : curr->right;
      ++depth;
      Node* next = g.protect(depth & 1, field);
      if (is_marked(next) || next == nullptr) goto retry;
      curr = next;
    }
  }

  const char* name() const override { return "occtree"; }
  std::size_t node_size() const override { return sizeof(Node); }

 private:
  void free_subtree(smr::TeardownCursor& td, Node* n) {
    if (n == nullptr) return;
    free_subtree(td, clear_mark(n->left.load(std::memory_order_relaxed)));
    free_subtree(td, clear_mark(n->right.load(std::memory_order_relaxed)));
    td.dealloc(n);
  }

  smr::Reclaimer* r_;
  Spinlock lock_;
  std::atomic<Node*> root_;
};

}  // namespace

std::unique_ptr<ConcurrentSet> make_occtree(const SetConfig& cfg,
                                            smr::Reclaimer* r) {
  (void)cfg;
  return std::make_unique<OccTree>(r);
}

std::size_t occtree_node_size() { return sizeof(Node); }

}  // namespace emr::ds
