// The queue side of the data-structure layer: the pipeline workload
// (EMR_WORKLOAD=pipeline, docs/SERVICE_MODE.md's asymmetric follow-on)
// drives one ConcurrentQueue implementation picked by TrialConfig::ds.
// Queues are the canonical high-retire-rate SMR client — every
// successful dequeue retires a node — and with producers and consumers
// split across the EMR_PIN layout they are also the adversarial case
// for remote frees: nodes are allocated on one core and retired/freed
// on a distant one, so the modelled (or measured) remote-free penalty
// is charged on nearly every reclamation.
//
//   msqueue     - Michael-Scott lock-free MPMC queue (PODC '96):
//                 dummy-headed singly linked list, enqueue CASes the
//                 tail's next then swings tail, dequeue CASes head
//                 forward and the winner retires the old dummy
//   lockedqueue - one-spinlock linked queue, the locked baseline
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "smr/reclaimer.hpp"

namespace emr::ds {

struct QueueConfig {
  /// Soft capacity: enqueue returns false once the queue holds this
  /// many values (checked against an approximate atomic size counter
  /// before allocating, so a full queue costs no node churn). 0 =
  /// unbounded. EMR_QUEUE_CAP.
  std::uint64_t capacity = 0;
  int num_threads = 1;
};

/// A FIFO queue of uint64 values under concurrent enqueue/dequeue.
///
/// Contract:
///  - Each call runs one guarded operation on behalf of the registered
///    ThreadHandle `h` (the ConcurrentSet handle contract applies: one
///    call at a time per handle, different handles freely concurrent,
///    handles may churn mid-lifetime).
///  - enqueue returns false only when a configured capacity is reached;
///    dequeue returns false only on empty. Values dequeue in FIFO order
///    per producer, with no loss or duplication.
///  - Nodes are allocated via the handle's reclaimer and begin with
///    smr::NodeHeader; a dequeued node leaves through Guard::retire
///    exactly once (the head-CAS winner retires it) — the retire rate
///    *is* the dequeue rate, which is what makes the structure the
///    paper's worst case.
///  - Destruction is single-threaded: a smr::TeardownCursor returns the
///    dummy node and every still-queued node to the allocator, so
///    combined with Reclaimer::flush_all() no node leaks.
class ConcurrentQueue {
 public:
  virtual ~ConcurrentQueue() = default;

  virtual bool enqueue(smr::ThreadHandle& h, std::uint64_t value) = 0;
  virtual bool dequeue(smr::ThreadHandle& h, std::uint64_t* out) = 0;

  virtual const char* name() const = 0;
  /// sizeof the structure's churned node type (one per enqueue).
  virtual std::size_t node_size() const = 0;
};

/// Builds the named queue over `reclaimer`. Throws std::invalid_argument
/// listing queue_names() for an unknown name.
std::unique_ptr<ConcurrentQueue> make_queue(const std::string& name,
                                            const QueueConfig& cfg,
                                            smr::Reclaimer* reclaimer);

/// The queue names make_queue accepts.
const std::vector<std::string>& queue_names();

/// Node size for a name without building the queue (sizeof the real
/// node types). Throws like make_queue on unknown names.
std::size_t node_size_for_queue(const std::string& name);

// Per-structure factories (ds/factory.cpp fans out to these).
std::unique_ptr<ConcurrentQueue> make_msqueue(const QueueConfig& cfg,
                                              smr::Reclaimer* r);
std::unique_ptr<ConcurrentQueue> make_lockedqueue(const QueueConfig& cfg,
                                                  smr::Reclaimer* r);

// sizeof the churned node type per structure, for node_size_for_queue.
std::size_t msqueue_node_size();
std::size_t lockedqueue_node_size();

}  // namespace emr::ds
