// Internal (a,b)-tree flavour: a fanout-16 routing layer of separator
// keys built once over the key range, with fat 240 B leaves (the paper's
// ABtree node size) that hold up to 28 keys each and are replaced
// copy-on-write. Every mutation builds a fresh immutable leaf and
// publishes it with one CAS on the routing layer's leaf slot, retiring
// the old leaf — so updates are lock-free, every update churns one fat
// node through the reclaimer exactly like the paper's ABtree write path,
// and lookups race retirement with nothing but the Guard protecting the
// leaf hop. The routing layer is immutable after construction
// (rebalancing is elided — see docs/DATA_STRUCTURES.md for the fidelity
// caveats vs Brown's LLX/SCX ABtree).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ds/set.hpp"

namespace emr::ds {
namespace {

constexpr std::size_t kLeafCap = 28;   // keys per 240 B leaf
constexpr std::size_t kFanout = 16;    // routing-node fanout

struct LeafNode {
  smr::NodeHeader hdr;                 // 8
  std::uint64_t count;                 // 8
  std::uint64_t keys[kLeafCap];        // 224, sorted

  LeafNode() : count(0) {}
};
static_assert(sizeof(LeafNode) == 240);
static_assert(std::is_standard_layout_v<LeafNode>);

/// One routing node: separator keys over up to kFanout children. Interior
/// levels point at further routers; the last level indexes into the flat
/// leaf-slot array. Built once, never retired.
struct Router {
  bool leaf_level = false;
  std::uint32_t nkeys = 0;             // #children - 1 separators
  std::uint64_t sep[kFanout - 1] = {};
  Router* child[kFanout] = {};
  std::size_t first_slot = 0;          // leaf level: slots_[first_slot + i]
};

class AbTree final : public ConcurrentSet {
 public:
  AbTree(const SetConfig& cfg, smr::Reclaimer* r) : r_(r) {
    const std::uint64_t keyrange = std::max<std::uint64_t>(cfg.keyrange, 2);
    nslots_ = static_cast<std::size_t>((keyrange + kLeafCap - 1) / kLeafCap);
    slots_ = std::make_unique<std::atomic<LeafNode*>[]>(nslots_);
    for (std::size_t i = 0; i < nslots_; ++i) {
      slots_[i].store(nullptr, std::memory_order_relaxed);
    }
    root_ = build(0, nslots_);
  }

  ~AbTree() override {
    // Single-threaded teardown; the cursor degrades gracefully when
    // the slot table is exhausted (destructors must not throw).
    smr::TeardownCursor td(*r_);
    for (std::size_t i = 0; i < nslots_; ++i) {
      LeafNode* leaf = slots_[i].load(std::memory_order_relaxed);
      if (leaf != nullptr) td.dealloc(leaf);
    }
  }

  bool insert(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    std::atomic<LeafNode*>& slot = route(key);
    for (;;) {
      if (!g.validate()) continue;  // slot is static: just re-protect
      LeafNode* old = g.protect(0, slot);
      if (old != nullptr && leaf_contains(*old, key)) return false;
      // Only out-of-contract keys (>= keyrange) can fill a leaf past the
      // 28 distinct in-segment values; refuse rather than overflow.
      if (old != nullptr && old->count >= kLeafCap) return false;
      LeafNode* fresh = smr::make_node<LeafNode>(h);
      if (old != nullptr) {
        std::copy(old->keys, old->keys + old->count, fresh->keys);
        fresh->count = old->count;
      }
      std::uint64_t* end = fresh->keys + fresh->count;
      std::uint64_t* at = std::lower_bound(fresh->keys, end, key);
      std::copy_backward(at, end, end + 1);
      *at = key;
      ++fresh->count;
      LeafNode* expected = old;
      if (slot.compare_exchange_strong(expected, fresh,
                                       std::memory_order_acq_rel)) {
        if (old != nullptr) g.retire(old);
        return true;
      }
      r_->dealloc_unpublished(h, fresh);  // lost the CAS; rebuild
    }
  }

  bool erase(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    std::atomic<LeafNode*>& slot = route(key);
    for (;;) {
      if (!g.validate()) continue;
      LeafNode* old = g.protect(0, slot);
      if (old == nullptr || !leaf_contains(*old, key)) return false;
      LeafNode* fresh = nullptr;
      if (old->count > 1) {
        fresh = smr::make_node<LeafNode>(h);
        const std::uint64_t* okeys = old->keys;
        const std::uint64_t* oend = okeys + old->count;
        const std::uint64_t* oat = std::lower_bound(okeys, oend, key);
        std::uint64_t* out = std::copy(okeys, oat, fresh->keys);
        std::copy(oat + 1, oend, out);
        fresh->count = old->count - 1;
      }
      LeafNode* expected = old;
      if (slot.compare_exchange_strong(expected, fresh,
                                       std::memory_order_acq_rel)) {
        g.retire(old);
        return true;
      }
      if (fresh != nullptr) r_->dealloc_unpublished(h, fresh);
    }
  }

  bool contains(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    std::atomic<LeafNode*>& slot = route(key);
    for (;;) {
      if (!g.validate()) continue;
      LeafNode* leaf = g.protect(0, slot);
      if (leaf == nullptr) return false;
      return leaf_contains(*leaf, key);
    }
  }

  const char* name() const override { return "abtree"; }
  std::size_t node_size() const override { return sizeof(LeafNode); }

 private:
  static bool leaf_contains(const LeafNode& leaf, std::uint64_t key) {
    const std::uint64_t* end = leaf.keys + leaf.count;
    return std::binary_search(leaf.keys, end, key);
  }

  /// Builds the routing subtree over leaf slots [lo, hi).
  Router* build(std::size_t lo, std::size_t hi) {
    routers_.push_back(std::make_unique<Router>());
    Router* n = routers_.back().get();
    const std::size_t span = hi - lo;
    if (span <= kFanout) {
      n->leaf_level = true;
      n->first_slot = lo;
      n->nkeys = static_cast<std::uint32_t>(span - 1);
      for (std::uint32_t i = 0; i < n->nkeys; ++i) {
        n->sep[i] = static_cast<std::uint64_t>(lo + i + 1) * kLeafCap;
      }
      return n;
    }
    const std::size_t stride = (span + kFanout - 1) / kFanout;
    std::uint32_t nchildren = 0;
    for (std::size_t at = lo; at < hi; at += stride) {
      n->child[nchildren++] = build(at, std::min(at + stride, hi));
    }
    n->nkeys = nchildren - 1;
    for (std::uint32_t i = 0; i < n->nkeys; ++i) {
      n->sep[i] =
          static_cast<std::uint64_t>(lo + (i + 1) * stride) * kLeafCap;
    }
    return n;
  }

  /// Separator walk from the root to the leaf slot covering `key`. The
  /// routing layer is immutable, so these hops are plain reads; the leaf
  /// slot the caller protects through is the only retire-able hop.
  std::atomic<LeafNode*>& route(std::uint64_t key) {
    Router* n = root_;
    for (;;) {
      std::uint32_t i = 0;
      while (i < n->nkeys && key >= n->sep[i]) ++i;
      if (n->leaf_level) return slots_[n->first_slot + i];
      n = n->child[i];
    }
  }

  smr::Reclaimer* r_;
  std::size_t nslots_;
  std::unique_ptr<std::atomic<LeafNode*>[]> slots_;
  std::vector<std::unique_ptr<Router>> routers_;
  Router* root_;
};

}  // namespace

std::unique_ptr<ConcurrentSet> make_abtree(const SetConfig& cfg,
                                           smr::Reclaimer* r) {
  return std::make_unique<AbTree>(cfg, r);
}

std::size_t abtree_node_size() { return sizeof(LeafNode); }

}  // namespace emr::ds
