// DGT-style hash structure: a chained hash set whose buckets are
// Harris-Michael lock-free sorted linked lists (Michael, "High
// Performance Dynamic Lock-Free Hash Tables and List-Based Sets", SPAA
// 2002). Deletion marks the victim's own next pointer (freezing it),
// then unlinks it from the predecessor; insert/erase traversals (find)
// help flush marked nodes — contains() instead restarts from the bucket
// head on any marked word — and only the winner of the unlink CAS
// retires the node.
// Lookups take no lock anywhere: a traversal is one Guard, one protect()
// per hop alternating two slots so the predecessor stays protected while
// the successor is published, a mark check on every returned word, and a
// validate() poll for NBR neutralization.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "core/rng.hpp"
#include "ds/marked_ptr.hpp"
#include "ds/set.hpp"

namespace emr::ds {
namespace {

struct Node {
  smr::NodeHeader hdr;
  std::uint64_t key;
  std::atomic<Node*> next;
  // Pad to the paper's ~96 B DGT node (key + value payload + links).
  char pad[96 - sizeof(smr::NodeHeader) - sizeof(std::uint64_t) -
           sizeof(std::atomic<Node*>)];

  explicit Node(std::uint64_t k) : key(k), next(nullptr) {}
};
static_assert(sizeof(Node) == 96);
static_assert(std::is_standard_layout_v<Node>);

class DgtHash final : public ConcurrentSet {
 public:
  DgtHash(const SetConfig& cfg, smr::Reclaimer* r) : r_(r) {
    std::size_t want = std::max<std::uint64_t>(cfg.keyrange / 2, 64);
    nbuckets_ = 1;
    while (nbuckets_ < want) nbuckets_ <<= 1;
    buckets_ = std::make_unique<std::atomic<Node*>[]>(nbuckets_);
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      buckets_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~DgtHash() override {
    // Single-threaded teardown (the cursor degrades gracefully when
    // the slot table is exhausted): marked-but-unlinked nodes are
    // still chained (only unlinked nodes were retired), so one walk
    // per bucket reaches everything the structure still owns.
    smr::TeardownCursor td(*r_);
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      Node* n = buckets_[i].load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* next = clear_mark(n->next.load(std::memory_order_relaxed));
        td.dealloc(n);
        n = next;
      }
    }
  }

  bool insert(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    std::atomic<Node*>& head = bucket(key);
    Node* n = nullptr;
    for (;;) {
      const Pos pos = find(g, head, key);
      if (pos.curr != nullptr && pos.curr->key == key) {
        if (n != nullptr) r_->dealloc_unpublished(h, n);
        return false;
      }
      if (n == nullptr) n = smr::make_node<Node>(h, key);
      n->next.store(pos.curr, std::memory_order_relaxed);
      Node* expected = pos.curr;
      if (pos.pf->compare_exchange_strong(expected, n,
                                          std::memory_order_acq_rel)) {
        return true;
      }
    }
  }

  bool erase(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    std::atomic<Node*>& head = bucket(key);
    for (;;) {
      const Pos pos = find(g, head, key);
      if (pos.curr == nullptr || pos.curr->key != key) return false;
      Node* next = pos.curr->next.load(std::memory_order_acquire);
      if (is_marked(next)) continue;  // a concurrent eraser owns it
      // Logical delete: freeze curr's next with the mark. Losing this
      // CAS means either a new successor (retry) or a rival eraser.
      if (!pos.curr->next.compare_exchange_strong(
              next, with_mark(next), std::memory_order_acq_rel)) {
        continue;
      }
      // Physical unlink; on failure the next traversal through this
      // bucket helps, and whoever wins that CAS retires.
      Node* expected = pos.curr;
      if (pos.pf->compare_exchange_strong(expected, next,
                                          std::memory_order_acq_rel)) {
        g.retire(pos.curr);
      } else {
        find(g, head, key);  // flush the marked node out now
      }
      return true;
    }
  }

  bool contains(smr::ThreadHandle& h, std::uint64_t key) override {
    smr::Guard g(h);
    std::atomic<Node*>& head = bucket(key);
  retry:
    (void)g.validate();
    std::atomic<Node*>* pf = &head;
    for (int depth = 0;; ++depth) {
      Node* curr = g.protect(depth & 1, *pf);
      if (is_marked(curr)) goto retry;  // pf's owner died under us
      if (curr == nullptr) return false;
      if (!g.validate()) goto retry;  // NBR: old pointers now invalid
      Node* next = curr->next.load(std::memory_order_acquire);
      if (curr->key == key) return !is_marked(next);
      if (curr->key > key) return false;
      pf = &curr->next;
    }
  }

  const char* name() const override { return "dgt"; }
  std::size_t node_size() const override { return sizeof(Node); }

 private:
  struct Pos {
    std::atomic<Node*>* pf;  // link that points at curr; owner protected
    Node* curr;              // clean and protected, or nullptr
  };

  /// Positions at the first node with key >= `key`, physically unlinking
  /// every marked node met on the way. Returns with pos.curr protected
  /// and pos.pf's owning node protected in the other slot (or static).
  Pos find(smr::Guard& g, std::atomic<Node*>& head, std::uint64_t key) {
  retry:
    (void)g.validate();
    std::atomic<Node*>* pf = &head;
    for (int depth = 0;; ++depth) {
      Node* curr = g.protect(depth & 1, *pf);
      if (is_marked(curr)) goto retry;
      if (curr == nullptr) return {pf, nullptr};
      if (!g.validate()) goto retry;
      Node* next = curr->next.load(std::memory_order_acquire);
      if (is_marked(next)) {
        // curr is logically deleted: unlink it. Only the winner of the
        // CAS retires, so the node leaves through retire exactly once.
        Node* expected = curr;
        if (pf->compare_exchange_strong(expected, clear_mark(next),
                                        std::memory_order_acq_rel)) {
          g.retire(curr);
        }
        goto retry;
      }
      if (curr->key >= key) return {pf, curr};
      pf = &curr->next;
    }
  }

  std::atomic<Node*>& bucket(std::uint64_t key) {
    std::uint64_t s = key;
    return buckets_[static_cast<std::size_t>(splitmix64(s)) &
                    (nbuckets_ - 1)];
  }

  smr::Reclaimer* r_;
  std::size_t nbuckets_;
  std::unique_ptr<std::atomic<Node*>[]> buckets_;
};

}  // namespace

std::unique_ptr<ConcurrentSet> make_dgt_hash(const SetConfig& cfg,
                                             smr::Reclaimer* r) {
  return std::make_unique<DgtHash>(cfg, r);
}

std::size_t dgt_node_size() { return sizeof(Node); }

}  // namespace emr::ds
