// Low-bit pointer tagging for the lock-free structures. A set mark bit
// on a link means the node that *owns the link* is logically deleted
// (Harris's convention): its outgoing pointers are frozen, and any
// traversal that reads a marked word must restart from a structure root
// instead of dereferencing through it. Reclaimer protect() calls return
// the raw word, so the mark survives publication and the reader can
// detect a source node that died under it.
#pragma once

#include <cstdint>

namespace emr::ds {

inline constexpr std::uintptr_t kMarkBit = 1;

template <typename T>
inline T* with_mark(T* p) {
  return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) | kMarkBit);
}

template <typename T>
inline bool is_marked(const T* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & kMarkBit) != 0;
}

template <typename T>
inline T* clear_mark(T* p) {
  return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) &
                              ~kMarkBit);
}

}  // namespace emr::ds
