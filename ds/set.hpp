// The data-structure layer: every trial drives one ConcurrentSet
// implementation picked by TrialConfig::ds. Each operation runs on
// behalf of a registered smr::ThreadHandle: it opens its own smr::Guard
// (RAII begin_op/end_op on the handle), allocates nodes through the
// handle's reclaimer (so the alloc/ models see real node lifetimes and
// pooling can intercept them) and retires unlinked nodes through it —
// lookups hold no shard or global lock on any structure except the
// legacy `shardedset`, so the reclaimer's read-side protection is
// load-bearing, not cost-modelled. Structures, node layouts and
// per-scheme guard protocols are documented in docs/DATA_STRUCTURES.md.
//
//   abtree     - internal (a,b)-tree flavour: static fanout-16 routing
//                layer over fat 240 B copy-on-write leaves, lock-free
//                reads AND writes (leaf CAS)
//   occtree    - external BST, Bronson-style split: serialized writers
//                under one lock, optimistic lock-free readers (64 B nodes)
//   dgt        - Harris-Michael lock-free chained hash set (96 B nodes)
//   shardedset - the original spinlock-sharded chained hash set, kept as
//                the locked regression baseline
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "smr/reclaimer.hpp"

namespace emr::ds {

struct SetConfig {
  /// Keys passed to the set must lie in [0, keyrange): the abtree sizes
  /// its leaf segments from it and the hash structures their buckets.
  std::uint64_t keyrange = 1 << 14;
  int num_threads = 1;
};

/// A set of uint64 keys under concurrent insert/erase/contains.
///
/// Contract:
///  - Each call runs one guarded operation on behalf of the registered
///    ThreadHandle `h`, which must belong to the reclaimer the structure
///    was built over (the handle contract applies: one call at a time
///    per handle, different handles freely concurrent; handles may come
///    and go mid-lifetime — thread churn is first-class).
///  - Nodes are allocated via the handle's reclaimer and begin with
///    smr::NodeHeader; unlinked nodes leave through Guard::retire and
///    are never touched again by the structure.
///  - Destruction is single-threaded (no thread may be operating
///    through the reclaimer): a smr::TeardownCursor returns every node
///    still reachable to the allocator — on its own transient handle
///    when a slot is free, or the handle-less teardown lane when the
///    table is exhausted, so destructors never throw. Combined with
///    Reclaimer::flush_all() afterwards, no node leaks.
class ConcurrentSet {
 public:
  virtual ~ConcurrentSet() = default;

  virtual bool insert(smr::ThreadHandle& h, std::uint64_t key) = 0;
  virtual bool erase(smr::ThreadHandle& h, std::uint64_t key) = 0;
  virtual bool contains(smr::ThreadHandle& h, std::uint64_t key) = 0;

  virtual const char* name() const = 0;
  /// sizeof the structure's churned node type — what alloc_node is asked
  /// for on every insert (harness::node_size_for_ds forwards here).
  virtual std::size_t node_size() const = 0;
};

/// Builds the named structure over `reclaimer`. Throws
/// std::invalid_argument listing set_names() for an unknown name.
std::unique_ptr<ConcurrentSet> make_set(const std::string& name,
                                        const SetConfig& cfg,
                                        smr::Reclaimer* reclaimer);

/// The structure names make_set accepts.
const std::vector<std::string>& set_names();

/// Node size for a name without building the structure (derived from
/// sizeof the real node types). Throws like make_set on unknown names.
std::size_t node_size_for_ds(const std::string& name);

// Per-structure factories (ds/factory.cpp fans out to these).
std::unique_ptr<ConcurrentSet> make_abtree(const SetConfig& cfg,
                                           smr::Reclaimer* r);
std::unique_ptr<ConcurrentSet> make_occtree(const SetConfig& cfg,
                                            smr::Reclaimer* r);
std::unique_ptr<ConcurrentSet> make_dgt_hash(const SetConfig& cfg,
                                             smr::Reclaimer* r);
std::unique_ptr<ConcurrentSet> make_shardedset(const SetConfig& cfg,
                                               smr::Reclaimer* r);

// sizeof the churned node type per structure, for node_size_for_ds.
std::size_t abtree_node_size();
std::size_t occtree_node_size();
std::size_t dgt_node_size();
std::size_t shardedset_node_size();

}  // namespace emr::ds
