// Safe-memory-reclamation interface. A Reclaimer decides *when* a retired
// node may be freed; its FreeExecutor decides *how* the free calls reach
// the allocator (one big batch per limbo bag, amortized per-op drains, or
// recycling through an object pool). The paper's subject is exactly that
// split: the same reclaimer can be catastrophic or fast depending on the
// free schedule it hands the allocator.
//
// Scheme families behind this interface (see docs/SMR_SCHEMES.md):
//   smr/ebr.cpp        - epoch-based: none, qsbr, rcu, debra
//   smr/token.cpp      - Token-EBR: token_naive, token_passfirst, token
//   smr/hp.cpp         - classic hazard pointers: hp
//   smr/he_ibr_wfe.cpp - era-clock schemes: he, ibr, wfe
//   smr/nbr.cpp        - neutralization-based: nbr, nbrplus
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/allocator.hpp"
#include "core/garbage.hpp"
#include "core/timeline.hpp"

namespace emr::smr {

struct SmrConfig {
  int num_threads = 1;
  /// Retires per limbo bag before the bag is sealed and an epoch advance
  /// is attempted (the paper's batch size; Experiment 2 uses 32768). The
  /// pointer-protecting schemes use the same value as their retire-list
  /// scan threshold, so EMR_BATCH drives every family's batching.
  std::size_t batch_size = 2048;
  /// Asynchronous-free drain rate: reclaimable objects freed per
  /// operation by the _af variants (section 7 prescribes ~frees/op).
  std::size_t af_drain_per_op = 1;
  /// Per-thread protection slots for the hazard-class schemes (hp, he,
  /// wfe). Michael's HP calls this K; protect()'s `idx` is taken mod
  /// this count. EMR_HP_SLOTS.
  std::size_t hp_slots = 8;
  /// Era-clock advance frequency for he/ibr/wfe/nbr: the global era is
  /// bumped once per this many node allocations on any one thread (the
  /// IBR paper's epoch_freq). EMR_EPOCH_FREQ.
  std::size_t epoch_freq = 64;
};

/// Shared services handed to a reclaimer at construction. Only
/// `allocator` is mandatory; null instruments are simply not recorded to.
struct SmrContext {
  alloc::Allocator* allocator = nullptr;
  Timeline* timeline = nullptr;
  GarbageCensus* garbage = nullptr;
};

/// Intrusive per-node header. Every pointer that flows through
/// alloc_node()/retire() must begin with one of these, and the bytes are
/// owned by the reclaimer: the era-clock schemes (he/ibr/wfe) stamp the
/// node's birth era here at allocation and read it back at retire, so a
/// node's lifetime interval travels with the node instead of through a
/// locked side table. Callers must never write to the header — allocate
/// with make_node<T>() (which preserves the stamp across construction)
/// or leave the first sizeof(NodeHeader) bytes untouched.
struct NodeHeader {
  std::uint64_t birth_era;
};

struct SmrStats {
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;    // reached the allocator or was pool-recycled
  std::uint64_t pending = 0;  // retired - freed
  /// Scheme-specific progress beat: epoch advances (ebr), full token
  /// rotations (token), retire-list scans (hp), era advances (he/ibr/
  /// wfe/nbr).
  std::uint64_t epochs_advanced = 0;
};

/// Free-schedule policy base: the reclaimer hands bags of
/// safe-to-reclaim nodes here, and the executor turns them into
/// allocator traffic (see smr/free_executor.hpp for the batch, amortized,
/// and pooling implementations).
///
/// Contract:
///  - Ownership of every pointer in an on_reclaimable() bag transfers to
///    the executor; the reclaimer must never touch it again. Each such
///    pointer is released exactly once — either by a single
///    allocator->deallocate() (counted into total_freed() by timed_free)
///    or, for the pooling executor, by being handed back out of
///    alloc_node() (also counted: recycling is how the node leaves
///    limbo).
///  - A node handed over is safe to reclaim *now*; executors may delay
///    the actual free arbitrarily (delaying is always safe) but may
///    never free early, because they never see unsafe nodes at all.
///  - alloc_node()/on_reclaimable()/on_op_end() are called by the owning
///    thread `tid` only and must be thread-safe across *different* tids
///    (per-tid lanes, atomic counters). quiesce() and destruction are
///    single-threaded: callers must ensure no thread is inside an
///    operation.
///  - quiesce(tid) drains every node the executor still holds for `tid`;
///    after quiesce has run for all tids, backlog() == 0 and
///    total_freed() equals the number of nodes ever handed over (plus
///    pool recycles).
class FreeExecutor {
 public:
  FreeExecutor(const SmrContext& ctx, const SmrConfig& cfg);
  virtual ~FreeExecutor() = default;

  /// Serves a node allocation; the default goes straight to the
  /// allocator. Pooling overrides this.
  virtual void* alloc_node(int tid, std::size_t size);

  /// A bag of nodes is now safe to reclaim. Ownership transfers.
  virtual void on_reclaimable(int tid, std::vector<void*>&& bag) = 0;

  /// Called once per completed operation (the amortization hook).
  virtual void on_op_end(int tid) { (void)tid; }

  /// Frees any backlog held for `tid`. Single-threaded use only.
  virtual void quiesce(int tid) { (void)tid; }

  /// Nodes this executor has freed or recycled (== left limbo).
  std::uint64_t total_freed() const {
    return freed_.load(std::memory_order_relaxed);
  }

  /// Nodes held in freeable backlogs (amortized/pooling variants).
  virtual std::uint64_t backlog() const { return 0; }

 protected:
  /// Frees one node through the allocator, timing it into the trial
  /// timeline as a kFreeCall when instrumentation is on.
  void timed_free(int tid, void* p);

  SmrContext ctx_;
  SmrConfig cfg_;
  std::atomic<std::uint64_t> freed_{0};
};

/// A safe-memory-reclamation scheme.
///
/// Contract:
///  - Thread model: `tid` identifies the calling thread; a given tid's
///    begin_op/protect/retire/end_op/alloc_node calls are made by one
///    thread at a time, bracketed begin_op..end_op per operation.
///    Different tids run concurrently; implementations communicate
///    between them only through atomics (announcements, hazard slots,
///    era reservations).
///  - retire(tid, p) transfers ownership of `p` to the scheme. The node
///    must already be unreachable from the structure (unlinked). It will
///    be released exactly once: handed to the FreeExecutor no earlier
///    than when no concurrent protect()/begin_op() publication still
///    covers it.
///  - protect(tid, idx, load, src) returns a pointer read through
///    `load(src)` that is guaranteed not to be handed to the executor
///    until the protection lapses (end_op for slot/era schemes; the next
///    neutralized protect for nbr). Epoch-class schemes return the plain
///    load — their begin_op/end_op bracket is the protection.
///  - flush_all() is the teardown path: callers guarantee no thread is
///    inside an operation; the scheme drops every publication, hands all
///    retired nodes to the executor and quiesces it, leaving
///    stats().pending == 0. It is idempotent and runs again from the
///    destructor.
///  - stats() may be called concurrently with operations; counters are
///    monotonic and may be momentarily inconsistent with each other.
class Reclaimer {
 public:
  virtual ~Reclaimer() = default;

  virtual void begin_op(int tid) = 0;
  virtual void end_op(int tid) = 0;

  /// Loads a pointer through `load(src)` under this scheme's protection
  /// (hazard-pointer-class schemes publish + fence + validate; epoch
  /// schemes are a plain load). `idx` selects the protection slot; any
  /// non-negative value is accepted (taken mod the slot count). The
  /// returned word is exactly what `load` produced — tag bits a structure
  /// keeps in the low pointer bits come back intact, and a tagged result
  /// means the source node is being unlinked (restart from a root rather
  /// than dereferencing it).
  using LoadFn = void* (*)(const void* src);
  virtual void* protect(int tid, int idx, LoadFn load, const void* src) = 0;

  /// Read-side validation hook: true while every pointer obtained earlier
  /// in this operation is still protected. Schemes that can revoke
  /// protection mid-operation override it — NBR returns false once the
  /// thread has been neutralized (re-announcing at the current era as it
  /// does), after which the caller must drop every pointer it holds and
  /// restart from a structure root. Lock-free traversals call this once
  /// per hop; all other schemes return true unconditionally.
  virtual bool validate(int tid) {
    (void)tid;
    return true;
  }

  virtual void retire(int tid, void* p) = 0;

  /// Node allocation goes through the reclaimer so pooling variants can
  /// serve it from the freeable list and era schemes can stamp birth
  /// eras.
  virtual void* alloc_node(int tid, std::size_t size) = 0;

  /// Returns a node that was never published to the structure (or is
  /// being torn down single-threadedly) straight to the allocator.
  virtual void dealloc_unpublished(int tid, void* p) = 0;

  /// Quiesces and frees every retired node. Call only when no thread is
  /// inside an operation (trial teardown, tests).
  virtual void flush_all() = 0;

  virtual SmrStats stats() const = 0;
  virtual FreeExecutor& executor() = 0;
  virtual const char* name() const = 0;

  /// Implementation family: "ebr", "token", "hp", "era", or "nbr".
  /// Lets tests and CI assert that the pointer-protecting names are not
  /// quietly aliased onto the epoch machinery.
  virtual const char* family() const = 0;
};

/// make_reclaimer's result: the executor must outlive the reclaimer, so
/// they travel together (executor declared first => destroyed last).
struct ReclaimerBundle {
  std::unique_ptr<FreeExecutor> executor;
  std::unique_ptr<Reclaimer> reclaimer;
};

/// RAII read-side guard: one Guard brackets one structure operation
/// (begin_op at construction, end_op at destruction), and every hazardous
/// load inside the bracket goes through protect(). This is the whole
/// read-side protocol a lock-free structure needs:
///
///   Guard g(reclaimer, tid);
///   Node* n = g.protect(0, root_);          // slot 0
///   while (...) {
///     if (ds::is_marked(n)) goto restart;   // source was being unlinked
///     if (!g.validate()) goto restart;      // NBR neutralization
///     n = g.protect(depth & 1, n->next);    // parent stays protected
///   }
///
/// protect() alternating between two slots keeps the previous hop's node
/// protected while the next one is published — the hand-over-hand pattern
/// every hazard-class scheme needs; epoch-class schemes ignore the slot.
/// Guards do not nest on one tid: a thread runs one guarded operation at
/// a time.
class Guard {
 public:
  Guard(Reclaimer& r, int tid) : r_(r), tid_(tid) { r_.begin_op(tid_); }
  ~Guard() { r_.end_op(tid_); }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  /// Protected load of `src`, tag bits preserved (see
  /// Reclaimer::protect).
  template <typename T>
  T* protect(int slot, const std::atomic<T*>& src) {
    return static_cast<T*>(r_.protect(tid_, slot, &load_fn<T>, &src));
  }

  /// True while earlier pointers from this guard are still protected;
  /// false means restart from a root (NBR neutralization).
  bool validate() { return r_.validate(tid_); }

  /// Retires an unlinked node through the guarded reclaimer.
  void retire(void* p) { r_.retire(tid_, p); }

  int tid() const { return tid_; }
  Reclaimer& reclaimer() const { return r_; }

 private:
  template <typename T>
  static void* load_fn(const void* src) {
    return static_cast<const std::atomic<T*>*>(src)->load(
        std::memory_order_acquire);
  }

  Reclaimer& r_;
  int tid_;
};

/// Allocates a node through the reclaimer and constructs a T in it while
/// preserving the reclaimer's NodeHeader stamp (T's constructor would
/// otherwise zero the birth era). T must be standard-layout with a
/// NodeHeader as its first member.
template <typename T, typename... Args>
T* make_node(Reclaimer& r, int tid, Args&&... args) {
  static_assert(std::is_standard_layout_v<T>,
                "node types must be standard-layout so the NodeHeader "
                "stays at offset 0");
  static_assert(sizeof(T) >= sizeof(NodeHeader));
  void* p = r.alloc_node(tid, sizeof(T));
  const NodeHeader stamp = *static_cast<const NodeHeader*>(p);
  T* t = new (p) T(std::forward<Args>(args)...);
  *reinterpret_cast<NodeHeader*>(t) = stamp;
  return t;
}

}  // namespace emr::smr
