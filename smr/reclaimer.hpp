// Safe-memory-reclamation interface. A Reclaimer decides *when* a retired
// node may be freed; its FreeExecutor decides *how* the free calls reach
// the allocator (one big batch per limbo bag, amortized per-op drains, or
// recycling through an object pool). The paper's subject is exactly that
// split: the same reclaimer can be catastrophic or fast depending on the
// free schedule it hands the allocator.
//
// Thread model: threads participate by holding a ThreadHandle obtained
// from Reclaimer::register_thread(). The handle is RAII — destruction (or
// release()) deregisters the thread, drains or hands off its retire
// backlog, and recycles its slot for a future thread. There is no fixed
// thread population: workloads where threads join and leave mid-run (the
// harness's churn mode) are first-class, and a departed thread can never
// pin the epoch or leak its limbo bags.
//
// Scheme families behind this interface (see docs/SMR_SCHEMES.md):
//   smr/ebr.cpp        - epoch-based: none, qsbr, rcu, debra
//   smr/token.cpp      - Token-EBR: token_naive, token_passfirst, token
//   smr/hp.cpp         - classic hazard pointers: hp
//   smr/he_ibr_wfe.cpp - era-clock schemes: he, ibr, wfe
//   smr/nbr.cpp        - neutralization-based: nbr, nbrplus
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/allocator.hpp"
#include "core/garbage.hpp"
#include "core/spinlock.hpp"
#include "core/timeline.hpp"

namespace emr::smr {

class Reclaimer;

struct SmrConfig {
  /// Expected steady-state worker population; sizes the registration
  /// slot table together with `extra_slots`.
  int num_threads = 1;
  /// Registration slots beyond num_threads: headroom for a replacement
  /// thread registering while its predecessor's slot is still draining
  /// (churn overlap) and for the single-threaded teardown handle the
  /// ds/ destructors take. Floored at 1.
  std::size_t extra_slots = 2;
  /// Retires per limbo bag before the bag is sealed and an epoch advance
  /// is attempted (the paper's batch size; Experiment 2 uses 32768). The
  /// pointer-protecting schemes use the same value as their retire-list
  /// scan threshold, so EMR_BATCH drives every family's batching.
  std::size_t batch_size = 2048;
  /// Asynchronous-free drain rate: reclaimable objects freed per
  /// operation by the _af variants (section 7 prescribes ~frees/op).
  std::size_t af_drain_per_op = 1;
  /// Per-thread protection slots for the hazard-class schemes (hp, he,
  /// wfe). Michael's HP calls this K; protect()'s `idx` is taken mod
  /// this count. EMR_HP_SLOTS.
  std::size_t hp_slots = 8;
  /// Era-clock advance frequency for he/ibr/wfe/nbr: the global era is
  /// bumped once per this many node allocations on any one thread (the
  /// IBR paper's epoch_freq). EMR_EPOCH_FREQ.
  std::size_t epoch_freq = 64;
  /// Free-schedule policy selection: "" follows the factory name's
  /// suffix (fixed for plain/_af/_pool names, adaptive for the
  /// *_adaptive variants, latency for *_latency); "fixed", "adaptive"
  /// or "latency" forces the choice for any name. Anything else fails
  /// fast in make_free_schedule. EMR_SCHEDULE.
  std::string schedule;
  /// Pooling inventory cap per lane; 0 = auto (four batches, floored
  /// at 1024). EMR_POOL_CAP — the env path rejects non-positive values
  /// instead of silently repairing them.
  std::size_t pool_cap = 0;
  /// Clamp for the adaptive schedule's per-op drain quantum: the
  /// controller never drains fewer than drain_min or more than
  /// drain_max nodes at one op end. EMR_DRAIN_MIN / EMR_DRAIN_MAX.
  std::size_t drain_min = 1;
  std::size_t drain_max = 64;
  /// Tail-latency target for the latency-target schedule (*_latency
  /// names, EMR_LATENCY_TARGET_US): when the observed per-op p99.9
  /// overshoots this many microseconds the schedule shrinks its drain
  /// quantum, and relaxes it again while the tail sits comfortably
  /// under. Must be >= 1 for the latency schedule; other policies
  /// ignore it.
  std::uint64_t latency_target_us = 1000;
  /// Home-flush routing (docs/FREE_SCHEDULES.md): ceiling on how many
  /// stashed remote blocks the owning lane flushes locally at one op
  /// end — the FreeSchedule::flush_quota quantum. Bigger batches
  /// amortize the hand-off further but hold more dead memory in the
  /// stashes (the "too epic" trade-off one layer down). Must be >= 1.
  /// EMR_FLUSH_BATCH.
  std::size_t flush_batch = 64;
  /// Home-flush routing override: "" follows the factory name (*_hf
  /// names route, others do not); "on"/"off" forces it for any name.
  /// Anything else fails fast in make_reclaimer. EMR_HOME_FLUSH.
  std::string home_flush;
  /// Reclamation tenants sharing this bundle (docs/SERVICE_MODE.md):
  /// the executor keeps per-(lane, tenant) retire/enqueue/drain
  /// counters so one tenant's garbage crowding out another is a
  /// measurable number. 1 (the default) keeps every tenant-accounting
  /// path compiled out of the hot loop. EMR_TENANTS.
  int tenants = 1;

  /// Total registration slots: how many ThreadHandles may be live at
  /// once. Every per-thread array in the schemes, executors and modelled
  /// allocators is sized from this.
  std::size_t slot_capacity() const {
    const std::size_t base =
        static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads);
    const std::size_t extra = extra_slots < 1 ? 1 : extra_slots;
    return base + extra;
  }
};

/// Shared services handed to a reclaimer at construction. Only
/// `allocator` is mandatory; null instruments are simply not recorded to.
struct SmrContext {
  alloc::Allocator* allocator = nullptr;
  Timeline* timeline = nullptr;
  GarbageCensus* garbage = nullptr;
};

/// Intrusive per-node header. Every pointer that flows through
/// alloc_node()/retire() must begin with one of these, and the bytes are
/// owned by the reclaimer: the era-clock schemes (he/ibr/wfe) stamp the
/// node's birth era here at allocation and read it back at retire, so a
/// node's lifetime interval travels with the node instead of through a
/// locked side table. Callers must never write to the header — allocate
/// with make_node<T>() (which preserves the stamp across construction)
/// or leave the first sizeof(NodeHeader) bytes untouched.
struct NodeHeader {
  std::uint64_t birth_era;
};

/// Per-registration-slot counters every FreeExecutor maintains. The
/// FreeSchedule's adaptive controller samples them to size its drain
/// quantum, and Reclaimer::stats_with_lanes() surfaces them to the
/// harness. All fields are monotonic except `backlog`.
struct LaneStats {
  std::uint64_t ops = 0;       // completed operations on this lane
  std::uint64_t enqueued = 0;  // nodes handed over as reclaimable
  std::uint64_t drained = 0;   // nodes freed or pool-recycled
  std::uint64_t adopted = 0;   // nodes inherited from departing slots
  std::uint64_t backlog = 0;   // nodes currently held for this lane
  /// ns spent inside amortized drain bursts, and the node count those
  /// clocked bursts freed — the denominator for a ns-per-free estimate
  /// (`drained` also counts pool recycles and batch whole-bag frees,
  /// which are never clocked and would dilute it). Tracked only for
  /// policies that consume lane stats
  /// (FreeSchedule::consumes_lane_stats); constant-quantum schedules
  /// skip the clock reads and leave both 0.
  std::uint64_t drain_ns = 0;
  std::uint64_t timed_drained = 0;
  /// Home-flush routing (docs/FREE_SCHEDULES.md). `stashed` counts
  /// blocks this lane diverted into some owner's stash instead of
  /// freeing them foreign; `flushed` counts blocks that left *this*
  /// lane's stash (flushed locally by the owner, drained by the
  /// daemon, or folded into the adoption queue when the lane
  /// departed); `stash_backlog` is the gauge of blocks currently
  /// sitting in this lane's stash (also folded into `backlog`).
  std::uint64_t stashed = 0;
  std::uint64_t flushed = 0;
  std::uint64_t stash_backlog = 0;
  /// Per-tenant split of this lane's traffic, indexed by tenant id.
  /// Populated by lane_stats() only when the bundle runs multiple
  /// tenants (SmrConfig::tenants > 1) — single-tenant bundles leave the
  /// vectors empty so the snapshot stays allocation-free. A tenant's
  /// outstanding debt on the lane is enqueued - drained.
  std::vector<std::uint64_t> tenant_enqueued;
  std::vector<std::uint64_t> tenant_drained;
};

/// One tenant's bundle-wide totals, summed over lanes by
/// FreeExecutor::tenant_stats(). `retired` counts Reclaimer::retire
/// calls attributed to the tenant (debt enters limbo); `enqueued` those
/// nodes reaching the executor (grace elapsed); `backlog` the ones the
/// executor still holds (enqueued - drained). Scheme-side limbo is
/// retired - enqueued.
struct TenantStats {
  std::uint64_t retired = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t drained = 0;
  std::uint64_t backlog = 0;
};

/// Free-schedule policy: every batching decision in the retire->free
/// pipeline is answered here instead of by raw SmrConfig constants —
/// how many backlog nodes an amortizing executor frees at one op end,
/// how large a limbo bag / retire list may grow before it seals or
/// scans, and how much inventory the pooling executor keeps. Executors
/// and scheme TUs *ask* the policy; only the policy implementations
/// (smr/free_schedule.cpp) read the config's batching knobs. See
/// docs/FREE_SCHEDULES.md for the contract and the shipped policies
/// (fixed mirrors the config; adaptive is a population-aware feedback
/// controller).
///
/// Thread model: drain_quota/scan_threshold/pool_cap are called
/// concurrently from every lane and must be safe on shared state;
/// on_population is called under the registration lock.
class FreeSchedule {
 public:
  virtual ~FreeSchedule() = default;
  virtual const char* name() const = 0;

  /// Nodes an amortizing drain may free at one op end on this lane.
  /// Executors treat the result as a hard per-op ceiling.
  virtual std::size_t drain_quota(const LaneStats& lane) const = 0;

  /// Bag size that seals a limbo bag (epoch/token families) or retire
  /// list size that triggers a scan (hp/he/ibr/wfe/nbr), given the
  /// number of currently registered threads. Schemes may floor the
  /// result (hp applies Michael's H+1 bound) but never exceed it.
  virtual std::size_t scan_threshold(std::size_t population) const = 0;

  /// The pooling executor's per-lane inventory cap.
  virtual std::size_t pool_cap() const = 0;

  /// Population beat: the number of live ThreadHandles, pushed by the
  /// owning reclaimer after every register/deregister.
  virtual void on_population(std::size_t n) { (void)n; }

  /// Tail-latency beat: the driver measuring per-op latency (the
  /// harness sampler) pushes the current merged p99.9 here every
  /// sample period. Policies that steer by observed tail latency react;
  /// the default ignores the signal. Called from the sampler thread
  /// concurrently with drain_quota — implementations keep the state in
  /// relaxed atomics.
  virtual void on_tail_latency(std::uint64_t p999_ns) { (void)p999_ns; }

  /// True when this policy consumes on_tail_latency. The harness uses
  /// it to arm the per-op latency recorder and the feedback pump even
  /// for trials that did not ask for latency measurement — a
  /// latency-target schedule without the signal would silently run
  /// open-loop.
  virtual bool wants_latency_feedback() const { return false; }

  /// Whether drain_quota() actually reads its LaneStats argument.
  /// Policies with a constant quantum return false so executors can
  /// skip the per-op stats snapshot and the drain-cost clock reads on
  /// the hot path (drain_ns then stays zero).
  virtual bool consumes_lane_stats() const { return true; }

  /// Home-flush quantum: how many blocks parked in this lane's
  /// remote-free stash the owner may flush locally at one op end
  /// (docs/FREE_SCHEDULES.md). Like drain_quota it is a hard per-op
  /// ceiling; unlike drain_quota the work is all-local frees, so
  /// policies may afford a larger quantum. Called concurrently from
  /// every lane (and the daemon) like drain_quota. The default is a
  /// modest constant so third-party policies keep working; the shipped
  /// policies derive it from SmrConfig::flush_batch.
  virtual std::size_t flush_quota(const LaneStats& lane) const {
    (void)lane;
    return 64;
  }

  /// Nodes one background-reclaimer tick may free from this lane
  /// (smr/reclaimer_daemon.hpp). The daemon runs off the op path, so
  /// its quantum may exceed the per-op ceiling: the default scales the
  /// op quota — gently when the system is merely quiet, harder under
  /// backlog pressure. Called from the daemon thread concurrently with
  /// drain_quota.
  virtual std::size_t daemon_quota(const LaneStats& lane,
                                   bool pressure) const {
    const std::size_t q = drain_quota(lane);
    return pressure ? q * 8 : q * 2;
  }
};

struct SmrStats {
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;    // reached the allocator or was pool-recycled
  std::uint64_t pending = 0;  // retired - freed
  /// Scheme-specific progress beat: epoch advances (ebr), full token
  /// rotations (token), retire-list scans (hp), era advances (he/ibr/
  /// wfe/nbr).
  std::uint64_t epochs_advanced = 0;
  /// Per-registration-slot executor counters. Filled only by
  /// Reclaimer::stats_with_lanes(); plain stats() leaves it empty so
  /// the epoch-advance hot path never allocates.
  std::vector<LaneStats> lanes;
};

/// Free-schedule executor base: the reclaimer hands bags of
/// safe-to-reclaim nodes here, and the executor turns them into
/// allocator traffic (see smr/free_executor.hpp for the batch, amortized,
/// and pooling implementations). *When* and *how much* to free is not
/// the executor's call: every quantum comes from the FreeSchedule
/// policy it is constructed over.
///
/// Executors do not see thread identity at all: every entry point takes
/// the registration-slot `lane` the owning reclaimer derived from the
/// calling ThreadHandle. A lane changes hands when a slot is recycled —
/// the successor thread inherits (and keeps amortizing) whatever backlog
/// its predecessor's handle left behind.
///
/// Contract:
///  - Ownership of every pointer in an on_reclaimable() bag transfers to
///    the executor; the reclaimer must never touch it again. Each such
///    pointer is released exactly once — either by a single
///    allocator->deallocate() (counted into total_freed() by timed_free)
///    or, for the pooling executor, by being handed back out of
///    alloc_node() (also counted: recycling is how the node leaves
///    limbo).
///  - A node handed over is safe to reclaim *now*; executors may delay
///    the actual free arbitrarily (delaying is always safe) but may
///    never free early, because they never see unsafe nodes at all.
///  - alloc_node()/on_reclaimable()/on_op_end() are called by the thread
///    currently owning `lane` only and must be thread-safe across
///    *different* lanes (per-lane state, atomic counters). quiesce() and
///    destruction are single-threaded: callers must ensure no thread is
///    inside an operation.
///  - quiesce(lane) drains every node the executor still holds for that
///    lane; after quiesce has run for all lanes, backlog() == 0 and
///    total_freed() equals the number of nodes ever handed over (plus
///    pool recycles).
///  - A background ReclaimerDaemon may call daemon_drain() on any lane
///    concurrently with the lane owner — but only after the bundle was
///    armed with set_daemon_hooked(true) *before threads started*. The
///    hook turns on a per-lane spinlock around every backlog mutation;
///    unhooked bundles never touch the lock, so daemon-off runs are
///    instruction-identical to a build without the daemon.
///  - Home-flush routing (set_home_flush(true), the *_hf factory
///    names): a drain path about to free a block whose allocator home
///    lane differs from the freeing lane pushes it onto the home
///    lane's lock-free MPSC stash instead (one release-CAS, no
///    allocation — the link lives in the dead node's first 8 bytes).
///    The owner flushes its own stash locally at
///    FreeSchedule::flush_quota per op; the daemon covers departed or
///    idle lanes; a departing lane's stash folds into the adoption
///    queue; quiesce() drains the lane's stash completely and latches
///    routing off, so teardown strands nothing. Routing off (the
///    default) touches none of this — non-hf bundles stay
///    instruction-identical to pre-routing builds.
class FreeExecutor {
 public:
  FreeExecutor(const SmrContext& ctx, const SmrConfig& cfg,
               FreeSchedule* schedule);
  virtual ~FreeExecutor() = default;

  /// Serves a node allocation; the default goes straight to the
  /// allocator. Pooling overrides this.
  virtual void* alloc_node(int lane, std::size_t size);

  /// A bag of nodes is now safe to reclaim. Ownership transfers.
  virtual void on_reclaimable(int lane, std::vector<void*>&& bag) = 0;

  /// A departing slot's hand-off: nodes that are already safe but must
  /// not hit the allocator in one burst (the churn-aware departure
  /// drain). The default parks the bag in a per-lane adoption queue
  /// that on_op_end drains at the schedule's quota; amortizing
  /// executors fold it into their normal freeable backlog instead,
  /// which obeys the same quota. Ownership transfers.
  virtual void on_adopted(int lane, std::vector<void*>&& bag);

  /// Routing shorthand for the scheme TUs' drain paths: a bag left by
  /// a departed generation goes through the amortizing adoption queue,
  /// a fresh one straight to the schedule's normal path.
  void hand_over(int lane, bool adopted, std::vector<void*>&& bag) {
    if (adopted) {
      on_adopted(lane, std::move(bag));
    } else {
      on_reclaimable(lane, std::move(bag));
    }
  }

  /// Called once per completed operation (the amortization hook). The
  /// base implementation counts the op and drains the lane's adoption
  /// queue at the schedule's quota; overrides must uphold the same
  /// per-op ceiling across every backlog they drain.
  virtual void on_op_end(int lane);

  /// Frees any backlog held for `lane`. Single-threaded use only.
  virtual void quiesce(int lane);

  /// Nodes this executor has freed or recycled (== left limbo).
  std::uint64_t total_freed() const {
    return freed_.load(std::memory_order_relaxed);
  }

  // ---- home-flush routing (docs/FREE_SCHEDULES.md) ----

  /// Arms remote-free routing through the per-lane owner stashes. The
  /// factory flips it once at construction for *_hf names (or under
  /// the EMR_HOME_FLUSH override); must not change while threads run.
  void set_home_flush(bool on) { home_flush_ = on; }
  bool home_flush() const { return home_flush_; }

  /// Blocks ever diverted into a stash, summed over lanes.
  std::uint64_t total_stashed() const;
  /// Blocks that ever left a stash (owner flush, daemon drain,
  /// departure adoption, quiesce), summed over lanes. At any quiescent
  /// point total_stashed() == total_flushed() + total_stash_backlog();
  /// after flush_all the backlog term is zero — the exact-ledger
  /// teardown check.
  std::uint64_t total_flushed() const;
  /// Blocks currently sitting in stashes, summed over lanes.
  std::uint64_t total_stash_backlog() const;

  /// Registry hook: `lane`'s owner deregistered. Folds the lane's
  /// stash into its adoption queue so a departed lane never strands
  /// blocks — the successor (or daemon, or flush_all) drains them at
  /// the usual quota instead of in a burst. Called under the
  /// registration lock while the slot is unowned.
  void on_lane_released(int lane);

  /// Nodes held in per-lane backlogs: adoption queues plus any
  /// executor-specific freeable lists.
  std::uint64_t backlog() const;

  /// The policy every quantum is sourced from.
  FreeSchedule& schedule() const { return *schedule_; }

  /// Snapshot of one lane's counters. Readable from any thread.
  LaneStats lane_stats(int lane) const;

  std::size_t lane_count() const { return lanes_.size(); }

  // ---- multi-tenant accounting (SmrConfig::tenants > 1) ----

  int tenant_count() const { return tenants_; }

  /// Tags `lane`'s *subsequent* traffic — retires, hand-overs, drains —
  /// with `tenant`. The harness stores the tenant before each op;
  /// relaxed is enough because only the lane owner reads it back on the
  /// same call path. No-op bookkeeping when single-tenant.
  void set_lane_tenant(int lane, std::uint32_t tenant) {
    if (multi_tenant_) {
      lanes_[static_cast<std::size_t>(lane)].tenant.store(
          clamp_tenant(tenant), std::memory_order_relaxed);
    }
  }

  std::uint32_t lane_tenant(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)].tenant.load(
        std::memory_order_relaxed);
  }

  /// One retire on `lane` attributed to its current tenant. Called by
  /// Reclaimer::retire() — a single relaxed RMW, and a plain branch
  /// when single-tenant.
  void note_tenant_retired(int lane) {
    if (!multi_tenant_) return;
    tenant_retired_[tenant_cell(lane, lane_tenant(lane))].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// One tenant's totals summed over lanes. Readable from any thread;
  /// zeros when single-tenant or out of range.
  TenantStats tenant_stats(int tenant) const;

  // ---- background-daemon hooks (smr/reclaimer_daemon.hpp) ----

  /// Arms (or disarms) the per-lane locking that makes daemon_drain
  /// safe against lane owners. Must be called while no thread is inside
  /// an operation and no daemon is running — the harness flips it once
  /// at trial setup. Plain bool: the arming itself is not a
  /// synchronization point.
  void set_daemon_hooked(bool on) { daemon_hooked_ = on; }
  bool daemon_hooked() const { return daemon_hooked_; }

  /// Frees up to `quota` nodes of `lane`'s backlog from the daemon
  /// thread, whose own registration slot is `daemon_lane` — the frees
  /// go to the daemon's allocator lane (its thread cache), the stats to
  /// the drained lane. Pool inventory at or under daemon_floor() is
  /// deliberately left alone. Requires daemon_hooked(); returns nodes
  /// freed.
  virtual std::size_t daemon_drain(int lane, std::size_t quota,
                                   int daemon_lane);

 protected:
  struct alignas(64) LaneState {
    /// Departure hand-offs awaiting the amortized adoption drain. Only
    /// the lane's owning thread (or a registry hook while the slot is
    /// unowned) touches the deque — plus, when a daemon is hooked, the
    /// daemon under `mu`; the atomic mirrors are for readers.
    std::deque<void*> adopted;
    /// Tenant tags parallel to `adopted`, maintained only when
    /// multi-tenant (empty otherwise).
    std::deque<std::uint32_t> adopted_tags;
    /// Un-flushed remainder of the last stash grab: the drainer takes
    /// the whole Treiber stack in one exchange but flushes only
    /// flush_quota blocks per op, so the rest waits here as a private
    /// intrusive chain. Owned like `adopted` (owner thread, or the
    /// daemon under `mu`); counted in RemoteStash::backlog until
    /// freed.
    void* stash_chain = nullptr;
    /// Guards the backlog containers; taken only while a daemon is
    /// hooked (uncontended test-and-set otherwise skipped entirely).
    Spinlock mu;
    /// Hot per-op counters start on their own cache line (alignas
    /// below): the sampler/daemon read them concurrently, and sharing
    /// a line with the owner-mutated containers above would ping-pong
    /// every adoption push (the PR 10 false-sharing audit).
    alignas(64) std::atomic<std::uint32_t> tenant{0};
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> drained{0};
    std::atomic<std::uint64_t> adopted_total{0};
    std::atomic<std::uint64_t> adopted_backlog{0};
    std::atomic<std::uint64_t> drain_ns{0};
    std::atomic<std::uint64_t> timed_drained{0};
    /// Blocks this lane diverted into some owner's stash (monotonic).
    std::atomic<std::uint64_t> stashed{0};
  };
  static_assert(alignof(LaneState) == 64 && sizeof(LaneState) % 64 == 0,
                "LaneState must tile cache lines so lanes never share");

  /// One lane's remote-free stash: a lock-free MPSC Treiber stack any
  /// lane pushes onto (release-CAS; the link overlays the dead node's
  /// NodeHeader) and only the owner — or the daemon/quiesce path under
  /// the lane lock — pops, via a single exchange. Lives apart from
  /// LaneState on its own cache line because *foreign* lanes write it:
  /// pushers must not drag the owner's hot counters around with the
  /// head pointer. `backlog` is incremented before the push publishes
  /// and decremented only after a block leaves (free or adoption), so
  /// the gauge never reads negative. `flushed` counts every exit.
  struct alignas(64) RemoteStash {
    std::atomic<void*> head{nullptr};
    std::atomic<std::uint64_t> backlog{0};
    std::atomic<std::uint64_t> flushed{0};
  };
  static_assert(sizeof(RemoteStash) == 64,
                "RemoteStash must own exactly one cache line");

  /// RAII lane lock that collapses to nothing while no daemon is
  /// hooked — the common case pays one predictable branch.
  class LaneLock {
   public:
    LaneLock(LaneState& l, bool hooked) : l_(hooked ? &l : nullptr) {
      if (l_ != nullptr) l_->mu.lock();
    }
    ~LaneLock() {
      if (l_ != nullptr) l_->mu.unlock();
    }
    LaneLock(const LaneLock&) = delete;
    LaneLock& operator=(const LaneLock&) = delete;

   private:
    LaneState* l_;
  };

  /// Frees one node through the allocator, timing it into the trial
  /// timeline as a kFreeCall when instrumentation is on.
  void timed_free(int lane, void* p) { timed_free_as(lane, lane, p); }

  /// timed_free with split attribution: stats (drained counters) to
  /// `stats_lane`, the allocator call and timeline event to
  /// `alloc_lane` — the daemon frees on its own allocator lane so the
  /// modelled thread caches stay single-owner.
  void timed_free_as(int stats_lane, int alloc_lane, void* p);

  /// timed_free_as through allocator->free_local_hint: the stash-drain
  /// free, promising the backend the cross-lane cost was already paid
  /// in bulk.
  void timed_hint_free(int stats_lane, int alloc_lane, void* p);

  /// Frees up to `quota` nodes from the lane's adoption queue; returns
  /// how many it freed. Takes the lane lock internally when hooked.
  std::size_t drain_adopted(int lane, std::size_t quota);

  /// The hot-path free for every amortizing/batched drain: when
  /// home-flush routing is armed and `p`'s allocator home lane is a
  /// different live lane than `alloc_lane`, the block is pushed onto
  /// the home lane's stash (counted `stashed` on `stats_lane`) instead
  /// of being freed foreign; otherwise it is a plain timed_free_as.
  /// quiesce() never routes (it frees directly), and the first quiesce
  /// latches routing off for the rest of the teardown pass so
  /// interleaved hand-over/quiesce loops cannot re-scatter blocks into
  /// already-quiesced stashes.
  void routed_free(int stats_lane, int alloc_lane, void* p);

  /// Pushes `p` onto `home`'s stash. Lock-free, called from any lane.
  void stash_push(int stats_lane, int home, void* p);

  /// Flushes up to `quota` blocks from `lane`'s own stash through
  /// allocator->free_local_hint on `alloc_lane` (the owner passes its
  /// own lane; the daemon its own slot). Takes the lane lock when
  /// hooked; returns blocks freed.
  std::size_t drain_stash(int lane, std::size_t quota, int alloc_lane);

  /// Per-op stash flush at the schedule's flush_quota; no-op unless
  /// routing is armed and the lane's stash is non-empty. Also re-arms
  /// routing after a mid-run flush_all (the teardown latch), which is
  /// safe here because on_op_end proves the bundle is live again.
  void maybe_flush_stash(int lane);

  std::size_t tenant_cell(int lane, std::uint32_t tenant) const {
    return static_cast<std::size_t>(lane) *
               static_cast<std::size_t>(tenants_) +
           tenant;
  }

  std::uint32_t clamp_tenant(std::uint32_t t) const {
    return t < static_cast<std::uint32_t>(tenants_) ? t : 0;
  }

  void note_tenant_enqueued(int lane, std::uint32_t t, std::uint64_t n) {
    if (multi_tenant_ && n > 0) {
      tenant_enqueued_[tenant_cell(lane, t)].fetch_add(
          n, std::memory_order_relaxed);
    }
  }

  void note_tenant_drained(int lane, std::uint32_t t, std::uint64_t n) {
    if (multi_tenant_ && n > 0) {
      tenant_drained_[tenant_cell(lane, t)].fetch_add(
          n, std::memory_order_relaxed);
    }
  }

  /// Backlog the daemon must not drain below (the pooling executor's
  /// inventory cap — recycling stock is not debt).
  virtual std::size_t daemon_floor() const { return 0; }

  /// The schedule's quantum for this lane's op end. Builds the stats
  /// snapshot only when the policy consumes it, so constant-quantum
  /// schedules cost one virtual call per op.
  std::size_t drain_quota_for(int lane) const {
    if (!stats_hungry_) return schedule_->drain_quota(LaneStats{});
    return schedule_->drain_quota(lane_stats(lane));
  }

  LaneState& lane_state(int lane);
  const LaneState& lane_state(int lane) const;

  /// Executor-specific backlog beyond the adoption queue (the
  /// amortized executor's freeable list).
  virtual std::uint64_t lane_backlog(int lane) const {
    (void)lane;
    return 0;
  }

  SmrContext ctx_;
  FreeSchedule* schedule_;
  bool stats_hungry_;  // schedule_->consumes_lane_stats(), cached
  int tenants_;
  bool multi_tenant_;
  bool daemon_hooked_ = false;
  /// Home-flush routing armed (set_home_flush). Plain bool like
  /// daemon_hooked_: flipped only while no thread runs.
  bool home_flush_ = false;
  /// Teardown latch: set by the first quiesce() so the rest of an
  /// interleaved flush_all pass frees directly instead of routing;
  /// cleared by maybe_flush_stash when ops resume. Relaxed atomic —
  /// it only gates an optimization, never correctness.
  std::atomic<bool> teardown_{false};
  std::vector<LaneState> lanes_;
  std::vector<RemoteStash> stash_;
  std::atomic<std::uint64_t> freed_{0};
  // lane-major [lane][tenant] grids, allocated only when multi-tenant.
  std::unique_ptr<std::atomic<std::uint64_t>[]> tenant_retired_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> tenant_enqueued_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> tenant_drained_;
};

/// RAII thread registration. A thread joins a reclaimer's population
/// with register_thread(), drives every read-side call through the
/// returned handle, and leaves by letting the handle die (or calling
/// release() early). Internally the handle pins one registration slot —
/// the dense lane index every per-thread array in the scheme, executor
/// and allocator layers is keyed by — plus the slot's generation, which
/// bumps each time the slot is recycled to a new thread.
///
/// Contract:
///  - One live thread per handle at a time; handles are movable, never
///    copyable. A thread may hold handles on several reclaimers, and a
///    single-threaded driver may multiplex several handles of one
///    reclaimer (the tests do), but two threads must never share one.
///  - Release only outside an operation (no live Guard on the handle).
///    Releasing hands the slot's retire backlog to the scheme's
///    departure path: anything already safe drains, the rest is adopted
///    by the slot's next owner or by flush_all() — never leaked, and
///    the departed thread never pins the epoch.
///  - Handles must not outlive their Reclaimer.
class ThreadHandle {
 public:
  ThreadHandle() = default;
  ThreadHandle(ThreadHandle&& o) noexcept
      : r_(o.r_), slot_(o.slot_), gen_(o.gen_) {
    o.r_ = nullptr;
    o.slot_ = -1;
  }
  ThreadHandle& operator=(ThreadHandle&& o) noexcept {
    if (this != &o) {
      release();
      r_ = o.r_;
      slot_ = o.slot_;
      gen_ = o.gen_;
      o.r_ = nullptr;
      o.slot_ = -1;
    }
    return *this;
  }
  ~ThreadHandle() { release(); }

  ThreadHandle(const ThreadHandle&) = delete;
  ThreadHandle& operator=(const ThreadHandle&) = delete;

  /// Deregisters now (idempotent); the handle is detached afterwards.
  void release();

  bool attached() const { return r_ != nullptr; }

  /// The registration slot (dense lane index). Meaningful only while
  /// attached; exposed for instruments and allocator lanes.
  int slot() const { return slot_; }

  /// How many threads (including this one) have owned the slot.
  std::uint64_t generation() const { return gen_; }

  Reclaimer& reclaimer() const { return *r_; }

 private:
  friend class Reclaimer;
  ThreadHandle(Reclaimer* r, int slot, std::uint64_t gen)
      : r_(r), slot_(slot), gen_(gen) {}

  Reclaimer* r_ = nullptr;
  int slot_ = -1;
  std::uint64_t gen_ = 0;
};

/// A safe-memory-reclamation scheme.
///
/// Contract:
///  - Thread model: every read-side call is made through a live
///    ThreadHandle from register_thread(). A given handle's
///    begin_op/protect/retire/end_op/alloc_node calls are made by one
///    thread at a time, bracketed begin_op..end_op per operation.
///    Different handles run concurrently; implementations communicate
///    between them only through atomics (announcements, hazard slots,
///    era reservations).
///  - retire(h, p) transfers ownership of `p` to the scheme. The node
///    must already be unreachable from the structure (unlinked). It will
///    be released exactly once: handed to the FreeExecutor no earlier
///    than when no concurrent protect()/begin_op() publication still
///    covers it. A handle released with retires still in limbo does not
///    leak them — the departure path drains what grace already allows
///    and leaves the rest for the slot's next owner or flush_all().
///  - protect(h, idx, load, src) returns a pointer read through
///    `load(src)` that is guaranteed not to be handed to the executor
///    until the protection lapses (end_op for slot/era schemes; the next
///    neutralized protect for nbr). Epoch-class schemes return the plain
///    load — their begin_op/end_op bracket is the protection.
///  - flush_all() is the teardown path: callers guarantee no thread is
///    inside an operation; the scheme drops every publication, hands all
///    retired nodes (every slot's, vacant ones included) to the executor
///    and quiesces it, leaving stats().pending == 0. It is idempotent
///    and runs again from the destructor.
///  - stats() may be called concurrently with operations; counters are
///    monotonic and may be momentarily inconsistent with each other.
class Reclaimer {
 public:
  virtual ~Reclaimer() = default;

  /// Joins the calling thread to the population: claims a free slot
  /// (recycling released ones through a free-list), bumps its
  /// generation, runs the scheme's adoption hook, and returns the RAII
  /// handle. Throws std::runtime_error when all slot_capacity() slots
  /// are live — the error names the capacity and the knobs that raise
  /// it (SmrConfig::num_threads/extra_slots, EMR_EXTRA_SLOTS from the
  /// harness).
  ThreadHandle register_thread();

  void begin_op(ThreadHandle& h) { begin_op_slot(check(h)); }
  void end_op(ThreadHandle& h) { end_op_slot(check(h)); }

  /// Loads a pointer through `load(src)` under this scheme's protection
  /// (hazard-pointer-class schemes publish + fence + validate; epoch
  /// schemes are a plain load). `idx` selects the protection slot; any
  /// non-negative value is accepted (taken mod the slot count). The
  /// returned word is exactly what `load` produced — tag bits a structure
  /// keeps in the low pointer bits come back intact, and a tagged result
  /// means the source node is being unlinked (restart from a root rather
  /// than dereferencing it).
  using LoadFn = void* (*)(const void* src);
  void* protect(ThreadHandle& h, int idx, LoadFn load, const void* src) {
    return protect_slot(check(h), idx, load, src);
  }

  /// Read-side validation hook: true while every pointer obtained earlier
  /// in this operation is still protected. Schemes that can revoke
  /// protection mid-operation override it — NBR returns false once the
  /// thread has been neutralized (re-announcing at the current era as it
  /// does), after which the caller must drop every pointer it holds and
  /// restart from a structure root. Lock-free traversals call this once
  /// per hop; all other schemes return true unconditionally.
  bool validate(ThreadHandle& h) { return validate_slot(check(h)); }

  void retire(ThreadHandle& h, void* p) {
    const int slot = check(h);
    // Attribute the debt to the lane's current tenant before it enters
    // limbo (a plain branch when single-tenant).
    executor().note_tenant_retired(slot);
    retire_slot(slot, p);
  }

  /// Node allocation goes through the reclaimer so pooling variants can
  /// serve it from the freeable list and era schemes can stamp birth
  /// eras.
  void* alloc_node(ThreadHandle& h, std::size_t size) {
    return alloc_node_slot(check(h), size);
  }

  /// Returns a node that was never published to the structure (or is
  /// being torn down single-threadedly) straight to the allocator.
  void dealloc_unpublished(ThreadHandle& h, void* p) {
    dealloc_unpublished_slot(check(h), p);
  }

  /// Handle-less unpublished-node return for teardown paths that may
  /// run with the slot table exhausted (destructors must not throw).
  /// Uses lane 0; callers guarantee no thread is operating through
  /// this reclaimer — the same single-threaded contract as flush_all().
  void dealloc_teardown(void* p) { dealloc_unpublished_slot(0, p); }

  /// Quiesces and frees every retired node. Call only when no thread is
  /// inside an operation (trial teardown, tests).
  virtual void flush_all() = 0;

  virtual SmrStats stats() const = 0;

  /// stats() plus the executor's per-lane counters (SmrStats::lanes):
  /// one LaneStats per registration slot. Costs a vector allocation —
  /// meant for instruments and traces, not hot paths.
  SmrStats stats_with_lanes() const;

  virtual FreeExecutor& executor() = 0;
  virtual const char* name() const = 0;

  /// Implementation family: "ebr", "token", "hp", "era", or "nbr".
  /// Lets tests and CI assert that the pointer-protecting names are not
  /// quietly aliased onto the epoch machinery.
  virtual const char* family() const = 0;

  /// Registration-slot table size (SmrConfig::slot_capacity()).
  std::size_t slot_capacity() const { return slot_state_.size(); }

  /// True while a live ThreadHandle owns `slot`. Readable from any
  /// thread; schemes use it to route around vacant slots (the token
  /// ring) and tests to observe churn.
  bool slot_active(int slot) const {
    const std::size_t i = static_cast<std::size_t>(slot);
    return i < slot_state_.size() &&
           slot_state_[i].active.load(std::memory_order_acquire);
  }

  /// Currently registered handles.
  std::size_t active_slots() const {
    return active_count_.load(std::memory_order_acquire);
  }

 protected:
  explicit Reclaimer(const SmrConfig& cfg);

  // Per-slot entry points the scheme TUs implement. `slot` is the dense
  // lane index the public handle API resolved; one thread drives a slot
  // at a time (the handle contract), distinct slots run concurrently.
  virtual void begin_op_slot(int slot) = 0;
  virtual void end_op_slot(int slot) = 0;
  virtual void* protect_slot(int slot, int idx, LoadFn load,
                             const void* src) = 0;
  virtual bool validate_slot(int slot) {
    (void)slot;
    return true;
  }
  virtual void retire_slot(int slot, void* p) = 0;
  virtual void* alloc_node_slot(int slot, std::size_t size) = 0;
  virtual void dealloc_unpublished_slot(int slot, void* p) = 0;

  /// Generation hand-off hooks, run under the registry lock while the
  /// slot is unowned (register: before the slot goes active, so the
  /// incoming thread may adopt a predecessor's aged backlog;
  /// deregister: after it went inactive, so the scheme drops the
  /// departing thread's publications — announcements, hazard slots, era
  /// reservations — and drains or parks its retire backlog). Concurrent
  /// readers may be scanning the slot's atomics throughout.
  virtual void on_slot_register(int slot) { (void)slot; }
  virtual void on_slot_deregister(int slot) { (void)slot; }

  /// Population beat, run under the registry lock after active_slots()
  /// has been updated (register and deregister). Schemes that cache a
  /// population-derived quantum — the epoch/token families keep their
  /// bag-seal threshold out of the per-retire path — refresh it here;
  /// the free schedule receives the same beat via
  /// FreeSchedule::on_population.
  virtual void on_population_change(std::size_t live) { (void)live; }

 private:
  friend class ThreadHandle;

  void deregister(ThreadHandle& h);

  int check(const ThreadHandle& h) const {
    if (h.r_ != this) {
      throw std::logic_error(
          "ThreadHandle is detached or belongs to another reclaimer");
    }
    return h.slot_;
  }

  struct alignas(64) SlotState {
    std::atomic<bool> active{false};
    std::uint64_t generation = 0;
  };

  std::vector<SlotState> slot_state_;
  std::vector<int> free_slots_;  // LIFO: hottest slot is reused first
  std::mutex reg_mu_;
  std::atomic<std::size_t> active_count_{0};
};

inline void ThreadHandle::release() {
  if (r_ != nullptr) {
    r_->deregister(*this);
    r_ = nullptr;
    slot_ = -1;
  }
}

/// make_reclaimer's result. Destruction order matters: the reclaimer
/// flushes through the executor and the executor asks the schedule for
/// quanta, so the schedule is declared first (destroyed last), then the
/// executor, then the reclaimer.
struct ReclaimerBundle {
  std::unique_ptr<FreeSchedule> schedule;
  std::unique_ptr<FreeExecutor> executor;
  std::unique_ptr<Reclaimer> reclaimer;
};

/// RAII read-side guard: one Guard brackets one structure operation
/// (begin_op at construction, end_op at destruction) on behalf of a
/// registered ThreadHandle, and every hazardous load inside the bracket
/// goes through protect(). This is the whole read-side protocol a
/// lock-free structure needs:
///
///   Guard g(handle);
///   Node* n = g.protect(0, root_);          // slot 0
///   while (...) {
///     if (ds::is_marked(n)) goto restart;   // source was being unlinked
///     if (!g.validate()) goto restart;      // NBR neutralization
///     n = g.protect(depth & 1, n->next);    // parent stays protected
///   }
///
/// protect() alternating between two slots keeps the previous hop's node
/// protected while the next one is published — the hand-over-hand pattern
/// every hazard-class scheme needs; epoch-class schemes ignore the slot.
/// Guards do not nest on one handle: a thread runs one guarded operation
/// at a time, and must not release the handle while a Guard is live.
class Guard {
 public:
  explicit Guard(ThreadHandle& h) : r_(h.reclaimer()), h_(h) {
    r_.begin_op(h_);
  }
  ~Guard() { r_.end_op(h_); }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  /// Protected load of `src`, tag bits preserved (see
  /// Reclaimer::protect).
  template <typename T>
  T* protect(int slot, const std::atomic<T*>& src) {
    return static_cast<T*>(r_.protect(h_, slot, &load_fn<T>, &src));
  }

  /// True while earlier pointers from this guard are still protected;
  /// false means restart from a root (NBR neutralization).
  bool validate() { return r_.validate(h_); }

  /// Retires an unlinked node through the guarded reclaimer.
  void retire(void* p) { r_.retire(h_, p); }

  ThreadHandle& handle() const { return h_; }
  Reclaimer& reclaimer() const { return r_; }

 private:
  template <typename T>
  static void* load_fn(const void* src) {
    return static_cast<const std::atomic<T*>*>(src)->load(
        std::memory_order_acquire);
  }

  Reclaimer& r_;
  ThreadHandle& h_;
};

/// Deallocation cursor for single-threaded teardown (the ds/
/// destructors): registers a transient handle when a slot is free — so
/// the frees land on their own allocator lane — and degrades to the
/// handle-less dealloc_teardown() path when the table is exhausted,
/// because a destructor must not let register_thread()'s exhaustion
/// error escape. Callers guarantee no thread is operating through the
/// reclaimer for the cursor's lifetime (the flush_all() contract).
class TeardownCursor {
 public:
  explicit TeardownCursor(Reclaimer& r) : r_(r) {
    try {
      h_ = r_.register_thread();
    } catch (const std::runtime_error&) {
      // Full slot table: fall back to lane 0. Teardown is
      // single-threaded, so the lane is quiescent even when its owner
      // is still registered.
    }
  }

  void dealloc(void* p) {
    if (h_.attached()) {
      r_.dealloc_unpublished(h_, p);
    } else {
      r_.dealloc_teardown(p);
    }
  }

 private:
  Reclaimer& r_;
  ThreadHandle h_;
};

/// Allocates a node through the handle's reclaimer and constructs a T in
/// it while preserving the reclaimer's NodeHeader stamp (T's constructor
/// would otherwise zero the birth era). T must be standard-layout with a
/// NodeHeader as its first member.
template <typename T, typename... Args>
T* make_node(ThreadHandle& h, Args&&... args) {
  static_assert(std::is_standard_layout_v<T>,
                "node types must be standard-layout so the NodeHeader "
                "stays at offset 0");
  static_assert(sizeof(T) >= sizeof(NodeHeader));
  void* p = h.reclaimer().alloc_node(h, sizeof(T));
  const NodeHeader stamp = *static_cast<const NodeHeader*>(p);
  T* t = new (p) T(std::forward<Args>(args)...);
  *reinterpret_cast<NodeHeader*>(t) = stamp;
  return t;
}

}  // namespace emr::smr
