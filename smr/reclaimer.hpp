// Safe-memory-reclamation interface. A Reclaimer decides *when* a retired
// node may be freed; its FreeExecutor decides *how* the free calls reach
// the allocator (one big batch per limbo bag, amortized per-op drains, or
// recycling through an object pool). The paper's subject is exactly that
// split: the same reclaimer can be catastrophic or fast depending on the
// free schedule it hands the allocator.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "core/garbage.hpp"
#include "core/timeline.hpp"

namespace emr::smr {

struct SmrConfig {
  int num_threads = 1;
  /// Retires per limbo bag before the bag is sealed and an epoch advance
  /// is attempted (the paper's batch size; Experiment 2 uses 32768).
  std::size_t batch_size = 2048;
  /// Asynchronous-free drain rate: reclaimable objects freed per
  /// operation by the _af variants (section 7 prescribes ~frees/op).
  std::size_t af_drain_per_op = 1;
};

/// Shared services handed to a reclaimer at construction. Only
/// `allocator` is mandatory; null instruments are simply not recorded to.
struct SmrContext {
  alloc::Allocator* allocator = nullptr;
  Timeline* timeline = nullptr;
  GarbageCensus* garbage = nullptr;
};

struct SmrStats {
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;    // reached the allocator or was pool-recycled
  std::uint64_t pending = 0;  // retired - freed
  std::uint64_t epochs_advanced = 0;
};

/// Free-schedule policy base: the reclaimer hands bags of
/// safe-to-reclaim nodes here, and the executor turns them into
/// allocator traffic (see smr/free_executor.hpp for the batch, amortized,
/// and pooling implementations).
class FreeExecutor {
 public:
  FreeExecutor(const SmrContext& ctx, const SmrConfig& cfg);
  virtual ~FreeExecutor() = default;

  /// Serves a node allocation; the default goes straight to the
  /// allocator. Pooling overrides this.
  virtual void* alloc_node(int tid, std::size_t size);

  /// A bag of nodes is now safe to reclaim. Ownership transfers.
  virtual void on_reclaimable(int tid, std::vector<void*>&& bag) = 0;

  /// Called once per completed operation (the amortization hook).
  virtual void on_op_end(int tid) { (void)tid; }

  /// Frees any backlog held for `tid`. Single-threaded use only.
  virtual void quiesce(int tid) { (void)tid; }

  /// Nodes this executor has freed or recycled (== left limbo).
  std::uint64_t total_freed() const {
    return freed_.load(std::memory_order_relaxed);
  }

  /// Nodes held in freeable backlogs (amortized/pooling variants).
  virtual std::uint64_t backlog() const { return 0; }

 protected:
  /// Frees one node through the allocator, timing it into the trial
  /// timeline as a kFreeCall when instrumentation is on.
  void timed_free(int tid, void* p);

  SmrContext ctx_;
  SmrConfig cfg_;
  std::atomic<std::uint64_t> freed_{0};
};

class Reclaimer {
 public:
  virtual ~Reclaimer() = default;

  virtual void begin_op(int tid) = 0;
  virtual void end_op(int tid) = 0;

  /// Loads a pointer through `load(src)` under this scheme's protection
  /// (hazard-pointer-class schemes publish + fence + validate; epoch
  /// schemes are a plain load). `idx` selects the protection slot.
  using LoadFn = void* (*)(const void* src);
  virtual void* protect(int tid, int idx, LoadFn load, const void* src) = 0;

  virtual void retire(int tid, void* p) = 0;

  /// Node allocation goes through the reclaimer so pooling variants can
  /// serve it from the freeable list instead of the allocator.
  virtual void* alloc_node(int tid, std::size_t size) = 0;

  /// Returns a node that was never published to the structure.
  virtual void dealloc_unpublished(int tid, void* p) = 0;

  /// Quiesces and frees every retired node. Call only when no thread is
  /// inside an operation (trial teardown, tests).
  virtual void flush_all() = 0;

  virtual SmrStats stats() const = 0;
  virtual FreeExecutor& executor() = 0;
  virtual const char* name() const = 0;
};

/// make_reclaimer's result: the executor must outlive the reclaimer, so
/// they travel together (executor declared first => destroyed last).
struct ReclaimerBundle {
  std::unique_ptr<FreeExecutor> executor;
  std::unique_ptr<Reclaimer> reclaimer;
};

}  // namespace emr::smr
