// Era-clock reclaimers: hazard eras (Ramalhete & Correia, DISC 2017),
// interval-based reclamation (Wen et al., PPoPP 2018) and wait-free eras
// (Nikolaev & Ravindran, PPoPP 2020). All three share one skeleton: a
// global era counter advanced every `epoch_freq` node allocations, nodes
// stamped with a lifetime interval [birth era, retire era], and a scan
// that hands the executor every retired node whose interval no active
// reservation intersects. They differ only in what a reader publishes:
//
//   he  - one era per protection slot; protect() republishes and
//         re-validates until the global era stops moving underneath it.
//   ibr - a single per-thread reservation interval [lower, upper];
//         begin_op pins both to the current era and protect() only ever
//         extends upper (the 2GE variant's one-store read path).
//   wfe - he with a bounded validate loop; after a few failed attempts
//         the thread publishes an open-ended reservation [era, +inf)
//         instead of looping. (The original gains wait freedom with
//         per-thread helper records; the open reservation is this
//         reproduction's bounded stand-in and is strictly more
//         conservative on the reclamation side.)
//
// Birth eras live in the intrusive smr::NodeHeader at the front of every
// node: alloc_node stamps the current era there and retire() reads it
// back, so a node's lifetime interval travels with the node itself (the
// IBR paper's birth_epoch field) instead of through a locked side table.
//
// Churn: a departing handle clears every reservation it published (its
// eras/interval/open floor can never pin reclamation again) and runs a
// departure scan whose freeable part drains through the executor's
// on_adopted() path — at the FreeSchedule quota per op — instead of one
// batch free; retires a live reservation still covers park in the slot
// for the next owner (or flush_all).
//
// Batching policy: the retire-list scan threshold comes from the
// FreeSchedule (fixed = the configured batch, adaptive = prorated by
// the registered population); this TU never reads the config's batching
// knobs.
#include <algorithm>
#include <atomic>
#include <vector>

#include "core/timing.hpp"
#include "smr/internal.hpp"

namespace emr::smr::internal {
namespace {

constexpr int kWfeValidateBound = 4;

struct RetiredNode {
  void* p;
  std::uint64_t birth;
  std::uint64_t retire;
};

struct alignas(64) EraThread {
  // he/wfe: published eras, one per protection slot (0 = none).
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  // ibr: the reservation interval (lower == 0 = inactive).
  std::atomic<std::uint64_t> lower{0};
  std::atomic<std::uint64_t> upper{0};
  // wfe fallback: reserves every era >= this value (0 = none).
  std::atomic<std::uint64_t> open{0};
  // Owner-private bookkeeping on its own line: every scan reads every
  // thread's reservations above, and the owner appends to retired on
  // every retire — a shared line would bounce once per scanned slot.
  alignas(64) std::vector<RetiredNode> retired;
  std::size_t scan_at = 0;
  std::uint64_t allocs = 0;
};
static_assert(alignof(EraThread) == 64 && sizeof(EraThread) % 64 == 0,
              "EraThread must tile cache lines so the published "
              "reservations never share one with a neighbour slot");

const char* era_variant_name(EraVariant v) {
  switch (v) {
    case EraVariant::kHazardEras:
      return "he";
    case EraVariant::kInterval:
      return "ibr";
    case EraVariant::kWaitFreeEras:
      return "wfe";
  }
  return "era";
}

class EraReclaimer final : public Reclaimer {
 public:
  EraReclaimer(EraVariant variant, const SmrContext& ctx,
               const SmrConfig& cfg, FreeExecutor* executor)
      : Reclaimer(cfg),
        name_(era_variant_name(variant)),
        variant_(variant),
        ctx_(ctx),
        executor_(executor),
        // Floor of 2 for the ds/ hand-over-hand slot alternation.
        nslots_(std::max<std::size_t>(cfg.hp_slots, 2)),
        epoch_freq_(std::max<std::size_t>(cfg.epoch_freq, 1)),
        threads_(cfg.slot_capacity()) {
    const std::size_t threshold = scan_threshold();
    for (EraThread& t : threads_) {
      t.slots = std::make_unique<std::atomic<std::uint64_t>[]>(nslots_);
      for (std::size_t i = 0; i < nslots_; ++i) {
        t.slots[i].store(0, std::memory_order_relaxed);
      }
      t.retired.reserve(threshold);
      t.scan_at = threshold;
    }
  }

  ~EraReclaimer() override { flush_all(); }

  void begin_op_slot(int tid) override {
    if (variant_ != EraVariant::kInterval) return;
    EraThread& t = slot(tid);
    const std::uint64_t e = era_.load(std::memory_order_acquire);
    t.lower.store(e, std::memory_order_relaxed);
    t.upper.store(e, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void end_op_slot(int tid) override {
    EraThread& t = slot(tid);
    switch (variant_) {
      case EraVariant::kInterval:
        t.upper.store(0, std::memory_order_relaxed);
        t.lower.store(0, std::memory_order_release);
        break;
      case EraVariant::kWaitFreeEras:
        t.open.store(0, std::memory_order_release);
        [[fallthrough]];
      case EraVariant::kHazardEras:
        for (std::size_t i = 0; i < nslots_; ++i) {
          if (t.slots[i].load(std::memory_order_relaxed) != 0) {
            t.slots[i].store(0, std::memory_order_release);
          }
        }
        break;
    }
    executor_->on_op_end(tid);
  }

  void* protect_slot(int tid, int idx, LoadFn load,
                     const void* src) override {
    EraThread& t = slot(tid);
    switch (variant_) {
      case EraVariant::kInterval: {
        // One announcement store per era move; the common path (era
        // unchanged since begin_op) is a plain load.
        for (;;) {
          void* p = load(src);
          const std::uint64_t e = era_.load(std::memory_order_acquire);
          if (t.upper.load(std::memory_order_relaxed) == e) return p;
          t.upper.store(e, std::memory_order_seq_cst);
          std::atomic_thread_fence(std::memory_order_seq_cst);
        }
      }
      case EraVariant::kHazardEras:
        return protect_eras(t, idx, load, src, /*bound=*/0);
      case EraVariant::kWaitFreeEras:
        return protect_eras(t, idx, load, src, kWfeValidateBound);
    }
    return load(src);
  }

  void retire_slot(int tid, void* p) override {
    EraThread& t = slot(tid);
    retired_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t e = era_.load(std::memory_order_acquire);
    const std::uint64_t birth = static_cast<const NodeHeader*>(p)->birth_era;
    t.retired.push_back(RetiredNode{p, birth, e});
    if (t.retired.size() >= t.scan_at) scan(tid, t);
  }

  void* alloc_node_slot(int tid, std::size_t size) override {
    void* p = executor_->alloc_node(tid, size);
    EraThread& t = slot(tid);
    // Stamp the intrusive header; pool-recycled nodes are re-stamped here
    // every time they leave limbo through alloc_node.
    static_cast<NodeHeader*>(p)->birth_era =
        era_.load(std::memory_order_relaxed);
    if (++t.allocs % epoch_freq_ == 0) advance_era(tid);
    return p;
  }

  void dealloc_unpublished_slot(int tid, void* p) override {
    ctx_.allocator->deallocate(tid, p);
  }

  /// Departure: every reservation the thread published drops (a vacated
  /// slot can never pin an era interval), then one scan drains whatever
  /// no remaining reservation covers — through the executor's adoption
  /// path, at the schedule's quota per op; survivors park for the
  /// successor.
  void on_slot_deregister(int tid) override {
    EraThread& t = slot(tid);
    t.lower.store(0, std::memory_order_relaxed);
    t.upper.store(0, std::memory_order_relaxed);
    t.open.store(0, std::memory_order_release);
    for (std::size_t i = 0; i < nslots_; ++i) {
      if (t.slots[i].load(std::memory_order_relaxed) != 0) {
        t.slots[i].store(0, std::memory_order_release);
      }
    }
    if (!t.retired.empty()) scan(tid, t, /*departing=*/true);
  }

  void flush_all() override {
    for (EraThread& t : threads_) {
      t.lower.store(0, std::memory_order_relaxed);
      t.upper.store(0, std::memory_order_relaxed);
      t.open.store(0, std::memory_order_relaxed);
      for (std::size_t i = 0; i < nslots_; ++i) {
        t.slots[i].store(0, std::memory_order_relaxed);
      }
    }
    const std::size_t threshold = scan_threshold();
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      EraThread& t = threads_[i];
      const int tid = static_cast<int>(i);
      if (!t.retired.empty()) {
        std::vector<void*> bag;
        bag.reserve(t.retired.size());
        for (const RetiredNode& n : t.retired) bag.push_back(n.p);
        t.retired.clear();
        t.scan_at = threshold;
        executor_->on_reclaimable(tid, std::move(bag));
      }
      executor_->quiesce(tid);
    }
  }

  SmrStats stats() const override {
    SmrStats st;
    st.retired = retired_.load(std::memory_order_relaxed);
    st.freed = executor_->total_freed();
    st.pending = st.retired - st.freed;
    st.epochs_advanced = era_.load(std::memory_order_relaxed) - 1;
    return st;
  }

  FreeExecutor& executor() override { return *executor_; }
  const char* name() const override { return name_; }
  const char* family() const override { return "era"; }

 private:
  EraThread& slot(int tid) {
    const std::size_t i = static_cast<std::size_t>(tid);
    return threads_[i < threads_.size() ? i : 0];
  }

  /// Retire-list scan threshold, asked of the free-schedule policy with
  /// the live population.
  std::size_t scan_threshold() const {
    return std::max<std::size_t>(
        executor_->schedule().scan_threshold(active_slots()), 1);
  }

  /// he/wfe read path: publish the current era in the slot, fence, and
  /// re-validate that the era did not move while loading. `bound` == 0
  /// loops until stable (he); otherwise after `bound` failures the
  /// thread publishes an open-ended reservation and returns (wfe).
  void* protect_eras(EraThread& t, int idx, LoadFn load, const void* src,
                     int bound) {
    std::atomic<std::uint64_t>& slot_era =
        t.slots[static_cast<std::size_t>(idx < 0 ? 0 : idx) % nslots_];
    std::uint64_t published = slot_era.load(std::memory_order_relaxed);
    std::uint64_t first_seen = 0;
    for (int attempt = 0;; ++attempt) {
      const std::uint64_t e = era_.load(std::memory_order_acquire);
      if (first_seen == 0) first_seen = e;
      if (e != published) {
        slot_era.store(e, std::memory_order_seq_cst);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        published = e;
      }
      void* p = load(src);
      if (era_.load(std::memory_order_acquire) == published) return p;
      if (bound != 0 && attempt + 1 >= bound) {
        // Reserve [first_seen, +inf), from the era this call *started*
        // at: any node unlinked-then-retired concurrently with the call
        // gets a retire era >= first_seen and is pinned, so one final
        // load is covered. (A node retired strictly before the call
        // began can no longer be reached from a live source or from a
        // node an earlier protect in this op still covers.)
        t.open.store(first_seen, std::memory_order_seq_cst);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        return load(src);
      }
    }
  }

  /// One read of every thread's published protection state, taken once
  /// per scan so classifying a node is O(log) instead of a fresh sweep
  /// of threads x slots acquire loads per retired node.
  struct ReservationSnapshot {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;  // ibr
    std::vector<std::uint64_t> eras;  // he/wfe slot eras, sorted
    std::uint64_t min_open = 0;       // wfe fallback floor; 0 = none
  };

  ReservationSnapshot snapshot_reservations() const {
    ReservationSnapshot s;
    for (const EraThread& t : threads_) {
      const std::uint64_t lo = t.lower.load(std::memory_order_acquire);
      if (lo != 0) {
        // A scan racing begin_op can observe lower before upper lands;
        // clamping to [lo, max(lo, hi)] keeps that window conservative.
        const std::uint64_t hi =
            std::max(lo, t.upper.load(std::memory_order_acquire));
        s.intervals.emplace_back(lo, hi);
      }
      const std::uint64_t open = t.open.load(std::memory_order_acquire);
      if (open != 0 && (s.min_open == 0 || open < s.min_open)) {
        s.min_open = open;
      }
      for (std::size_t i = 0; i < nslots_; ++i) {
        const std::uint64_t e = t.slots[i].load(std::memory_order_acquire);
        if (e != 0) s.eras.push_back(e);
      }
    }
    std::sort(s.eras.begin(), s.eras.end());
    return s;
  }

  /// True iff some snapshotted reservation intersects the node's
  /// lifetime interval [birth, retire].
  static bool reserved(const ReservationSnapshot& s, const RetiredNode& n) {
    if (s.min_open != 0 && n.retire >= s.min_open) return true;
    for (const auto& [lo, hi] : s.intervals) {
      if (n.birth <= hi && lo <= n.retire) return true;
    }
    const auto it =
        std::lower_bound(s.eras.begin(), s.eras.end(), n.birth);
    return it != s.eras.end() && *it <= n.retire;
  }

  void scan(int tid, EraThread& t, bool departing = false) {
    const ReservationSnapshot snap = snapshot_reservations();
    std::vector<void*> bag;
    std::vector<RetiredNode> keep;
    bag.reserve(t.retired.size());
    for (const RetiredNode& n : t.retired) {
      if (reserved(snap, n)) {
        keep.push_back(n);
      } else {
        bag.push_back(n.p);
      }
    }
    t.retired = std::move(keep);
    t.scan_at = next_scan_at(scan_threshold(), t.retired.size());
    if (!bag.empty()) executor_->hand_over(tid, departing, std::move(bag));
  }

  void advance_era(int tid) {
    const std::uint64_t e =
        era_.fetch_add(1, std::memory_order_acq_rel) + 1;
    record_progress_beat(ctx_, tid, e, stats().pending);
  }

  const char* name_;
  EraVariant variant_;
  SmrContext ctx_;
  FreeExecutor* executor_;
  std::size_t nslots_;
  std::size_t epoch_freq_;
  std::vector<EraThread> threads_;
  std::atomic<std::uint64_t> era_{1};
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace

std::unique_ptr<Reclaimer> make_era(EraVariant variant,
                                    const SmrContext& ctx,
                                    const SmrConfig& cfg,
                                    FreeExecutor* executor) {
  return std::make_unique<EraReclaimer>(variant, ctx, cfg, executor);
}

}  // namespace emr::smr::internal
