// Reclaimer factory. Names:
//
//   none | qsbr | rcu | debra | hp | he | ibr | wfe | nbr | nbrplus
//   token_naive | token_passfirst | token
//
// Any base name takes an `_af` suffix (asynchronous per-op free, the
// paper's fix), a `_pool` suffix (object pooling), an `_adaptive`
// suffix (amortized free under the population-aware
// AdaptiveFreeSchedule controller), or a `_latency` suffix (amortized
// free under the tail-steered LatencyTargetFreeSchedule — see
// docs/FREE_SCHEDULES.md and docs/LATENCY.md). `token_af` /
// `token_pool` / `token_adaptive` / `token_latency` apply to the
// periodic token variant. Every bundle carries the FreeSchedule policy
// that answers its batching questions; SmrConfig::schedule
// (EMR_SCHEDULE) can force `fixed`, `adaptive` or `latency` for any
// name.
#pragma once

#include <string>
#include <vector>

#include "smr/reclaimer.hpp"

namespace emr::smr {

/// Builds the named reclaimer with its free executor. Throws
/// std::invalid_argument for an unknown name.
ReclaimerBundle make_reclaimer(const std::string& name, const SmrContext& ctx,
                               const SmrConfig& cfg);

/// The ten base algorithms of the paper's Experiment 2 (Fig. 11b): each
/// is benchmarked ORIG vs `_af`.
const std::vector<std::string>& experiment2_reclaimers();

/// Every base name make_reclaimer accepts (without suffixes).
const std::vector<std::string>& reclaimer_names();

/// Every constructible name: all bases crossed with the suffix grammar
/// (the two fixed token variants take no
/// `_af`/`_pool`/`_adaptive`/`_latency`).
/// The single source of truth for sweeps that claim to cover "all
/// names" — the smoke check and the parameterized scheme tests both
/// iterate this.
const std::vector<std::string>& all_factory_names();

/// Strips a `_af`/`_pool`/`_adaptive`/`_latency` suffix according to
/// the same grammar make_reclaimer uses ("token_passfirst" stays
/// whole).
std::string reclaimer_base_name(const std::string& name);

}  // namespace emr::smr
