// Background reclaimer daemon (docs/SERVICE_MODE.md, ROADMAP item 3):
// a dedicated thread that drains FreeExecutor backlogs through the
// bundle's FreeSchedule quota path, off the operation hot path. The
// motivating regime is open-loop traffic: op-driven reclamation only
// runs while ops run, so a burst's leftover backlog survives every
// quiet period untouched — exactly when a daemon can reclaim for free.
//
// Levels:
//   off        - no daemon; the bundle behaves exactly as before (the
//                per-lane daemon locks are never armed, so the op path
//                is instruction-identical).
//   optimistic - reclaim when the system is quiet (op rate below a
//                trickle since the last tick) or under backlog pressure
//                (total backlog past twice the schedule's seal
//                threshold); otherwise stay out of the workers' way.
//   aggressive - reclaim every tick, quiet or not.
//
// The daemon registers its own ThreadHandle: its frees run on its own
// allocator lane (the modelled thread caches are single-owner), which
// also makes the remote-free cost of background reclamation physically
// honest — the daemon pays the cross-lane penalty the owner would have
// dodged. Budget one extra registration slot for it
// (SmrConfig::extra_slots).
//
// Concurrency contract: FreeExecutor::set_daemon_hooked(true) must be
// called while no thread operates on the bundle, *before* start().
// After that, start()/stop() may race handle register/deregister churn
// freely — daemon_drain synchronizes with lane owners through the
// per-lane locks the hook armed.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "smr/reclaimer.hpp"

namespace emr::smr {

enum class DaemonLevel { kOff, kOptimistic, kAggressive };

/// "off" | "optimistic" | "aggressive" (EMR_RECLAIMER_DAEMON). Throws
/// std::invalid_argument naming the valid levels.
DaemonLevel daemon_level_from_name(const std::string& name);
const char* daemon_level_name(DaemonLevel level);

class ReclaimerDaemon {
 public:
  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t quiet_ticks = 0;     // ticks that saw a quiet system
    std::uint64_t pressure_ticks = 0;  // ticks that saw backlog pressure
    std::uint64_t drained = 0;         // nodes freed by the daemon
  };

  /// Does not start the thread; `level` kOff makes start() a no-op.
  ReclaimerDaemon(Reclaimer& r, DaemonLevel level, int period_ms);
  ~ReclaimerDaemon();

  ReclaimerDaemon(const ReclaimerDaemon&) = delete;
  ReclaimerDaemon& operator=(const ReclaimerDaemon&) = delete;

  /// Registers the daemon's handle and spawns the tick loop. Throws
  /// std::logic_error if the executor was not armed with
  /// set_daemon_hooked(true) first, and propagates register_thread()'s
  /// exhaustion error (budget an extra slot). Idempotent while running.
  void start();

  /// Stops the loop, joins the thread and releases the handle.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Pin the daemon thread to this CPU when it starts (EMR_PIN: the
  /// harness hands the daemon the slot after the workers' in the pin
  /// layout). -1 (default) leaves the thread to the scheduler. Call
  /// before start().
  void set_pin_cpu(int cpu) { pin_cpu_ = cpu; }

  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  DaemonLevel level() const { return level_; }
  Stats stats() const;

 private:
  void loop();
  void tick();

  Reclaimer& r_;
  DaemonLevel level_;
  int period_ms_;
  int pin_cpu_ = -1;
  std::thread thread_;
  ThreadHandle handle_;
  std::uint64_t last_ops_ = 0;  // loop-thread private
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> quiet_ticks_{0};
  std::atomic<std::uint64_t> pressure_ticks_{0};
  std::atomic<std::uint64_t> drained_{0};
};

}  // namespace emr::smr
