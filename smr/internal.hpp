// Construction hooks and small helpers shared between smr/factory.cpp
// and the reclaimer translation units. Not part of the public surface.
#pragma once

#include <algorithm>
#include <memory>

#include "core/timing.hpp"
#include "smr/free_executor.hpp"
#include "smr/reclaimer.hpp"

namespace emr::smr::internal {

/// Records one scheme progress beat — an epoch advance, era tick, token
/// rotation, or HP scan — into the trial instruments. Every scheme
/// funnels through here so the cross-scheme timelines and garbage
/// censuses stay comparable.
inline void record_progress_beat(const SmrContext& ctx, int tid,
                                 std::uint64_t beat, std::uint64_t pending) {
  if (ctx.timeline != nullptr && ctx.timeline->enabled()) {
    const std::uint64_t now = now_ns();
    ctx.timeline->record(tid, EventKind::kEpochAdvance, now, now);
  }
  if (ctx.garbage != nullptr && ctx.garbage->enabled()) {
    ctx.garbage->record(beat, pending);
  }
}

/// Next retire-list size that should trigger a scan, given what the
/// last scan kept: at least the base threshold, and at least a quarter
/// threshold beyond the kept survivors so a fully-pinned list cannot
/// degenerate into a scan per retire.
inline std::size_t next_scan_at(std::size_t threshold, std::size_t kept) {
  return std::max(threshold,
                  kept + std::max<std::size_t>(threshold / 4, 1));
}

struct EbrOptions {
  const char* name = "ebr";
  bool leak = false;       // "none": retired nodes are never reclaimed
  bool quiescent = false;  // qsbr/rcu: relaxed begin/end, no fences
};

enum class TokenPolicy {
  kNaive,      // holder frees every thread's safe bags, then passes
  kPassFirst,  // pass first, then free own safe bags
  kPeriodic,   // pass first, free at most one own bag per receipt
  kHandOff,    // pass first, hand safe bags to the executor (_af/_pool)
};

struct TokenOptions {
  const char* name = "token";
  TokenPolicy policy = TokenPolicy::kPeriodic;
};

/// The era-clock schemes share one implementation skeleton (global era,
/// birth/retire stamping, reservation scan) and differ in what a thread
/// publishes on the read side.
enum class EraVariant {
  kHazardEras,   // he: one published era per protection slot
  kInterval,     // ibr: a single [lower, upper] reservation interval
  kWaitFreeEras, // wfe: he with a bounded validate loop + open fallback
};

std::unique_ptr<Reclaimer> make_ebr(const EbrOptions& opt,
                                    const SmrContext& ctx,
                                    const SmrConfig& cfg,
                                    FreeExecutor* executor);

std::unique_ptr<Reclaimer> make_token(const TokenOptions& opt,
                                      const SmrContext& ctx,
                                      const SmrConfig& cfg,
                                      FreeExecutor* executor);

std::unique_ptr<Reclaimer> make_hp(const SmrContext& ctx,
                                   const SmrConfig& cfg,
                                   FreeExecutor* executor);

std::unique_ptr<Reclaimer> make_era(EraVariant variant,
                                    const SmrContext& ctx,
                                    const SmrConfig& cfg,
                                    FreeExecutor* executor);

std::unique_ptr<Reclaimer> make_nbr(bool plus, const SmrContext& ctx,
                                    const SmrConfig& cfg,
                                    FreeExecutor* executor);

}  // namespace emr::smr::internal
