// Construction hooks shared between smr/factory.cpp and the reclaimer
// translation units. Not part of the public surface.
#pragma once

#include <memory>

#include "smr/free_executor.hpp"
#include "smr/reclaimer.hpp"

namespace emr::smr::internal {

enum class ProtectMode {
  kPlain,     // epoch schemes: protect is the raw load
  kAnnounce,  // interval/era schemes (ibr, wfe, nbr): one extra store
  kFence,     // hazard-pointer schemes (hp, he): publish + fence + verify
};

struct EbrOptions {
  const char* name = "ebr";
  bool leak = false;       // "none": retired nodes are never reclaimed
  bool quiescent = false;  // qsbr/rcu: relaxed begin/end, no fences
  ProtectMode protect = ProtectMode::kPlain;
};

enum class TokenPolicy {
  kNaive,      // holder frees every thread's safe bags, then passes
  kPassFirst,  // pass first, then free own safe bags
  kPeriodic,   // pass first, free at most one own bag per receipt
  kHandOff,    // pass first, hand safe bags to the executor (_af/_pool)
};

struct TokenOptions {
  const char* name = "token";
  TokenPolicy policy = TokenPolicy::kPeriodic;
};

std::unique_ptr<Reclaimer> make_ebr(const EbrOptions& opt,
                                    const SmrContext& ctx,
                                    const SmrConfig& cfg,
                                    FreeExecutor* executor);

std::unique_ptr<Reclaimer> make_token(const TokenOptions& opt,
                                      const SmrContext& ctx,
                                      const SmrConfig& cfg,
                                      FreeExecutor* executor);

}  // namespace emr::smr::internal
