// Object-pooling free schedule (the optimization the paper's section 3.3
// declines to use and footnote 4 credits for VBR's numbers): reclaimable
// nodes are recycled into subsequent alloc_node calls, so most node
// traffic never reaches the allocator at all.
#pragma once

#include "smr/free_executor.hpp"

namespace emr::smr {

class PoolingFreeExecutor final : public AmortizedFreeExecutor {
 public:
  PoolingFreeExecutor(const SmrContext& ctx, const SmrConfig& cfg,
                      FreeSchedule* schedule);

  /// Serves from the lane's freeable list when a recycled node of a
  /// compatible size is available; falls back to the allocator.
  void* alloc_node(int lane, std::size_t size) override;

  /// Pooling keeps the backlog as inventory: the per-op drain only
  /// trims what exceeds the schedule's pool cap, so on_op_end frees far
  /// less than the amortized executor does.
  void on_op_end(int lane) override;

  std::uint64_t total_pooled_allocs() const {
    return pooled_allocs_.load(std::memory_order_relaxed);
  }

 protected:
  /// The background daemon must not strip the recycling inventory: only
  /// backlog above the schedule's pool cap is reclamation debt.
  std::size_t daemon_floor() const override {
    return schedule_->pool_cap();
  }

 private:
  std::atomic<std::size_t> common_size_{0};
  std::atomic<std::uint64_t> pooled_allocs_{0};
};

}  // namespace emr::smr
