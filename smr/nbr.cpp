// Neutralization-based reclamation (Singh, Brown & Mashtizadeh,
// "NBR: Neutralization Based Reclamation", PPoPP 2021). Readers run
// inside restartable read blocks and announce the era their block
// started at; reads themselves are plain loads. A reclaiming thread
// whose retire list fills "neutralizes" the readers — the original
// delivers a POSIX signal whose handler longjmps back to the top of the
// read block; this reproduction raises a per-thread flag that the
// reader's next protect() honours by restarting its announcement at the
// current era. A retired node is handed to the FreeExecutor once every
// active announcement is newer than the node's retire era, so an
// unresponsive reader (one that never calls validate again) is never
// yanked.
//
// Restart contract: exactly as after the original's longjmp, a restart
// invalidates every pointer obtained earlier in the read block. The
// restart lives in validate(), not protect(): protect() is a plain load
// that never moves the announcement, and a traversal polls validate()
// once per hop — false means the thread was neutralized, the
// announcement has been re-entered at the current era, and the caller
// must drop every pointer it holds and re-traverse from a structure
// root (exactly what the ds/ traversal loops do). Keeping the restart
// out of protect() means a neutralization can never silently invalidate
// the very pointer a protect() call is about to return — the flag-based
// approximation's footgun in the previous revision. A reader that never
// polls validate() simply keeps its old announcement and blocks
// reclamation, which is safe. See docs/SMR_SCHEMES.md.
//
//   nbr     - neutralize on every scan (each time the list reaches the
//             batch threshold), like the original's per-full-list
//             signal burst.
//   nbrplus - NBR+'s reduced signalling: scans at the batch threshold
//             reclaim whatever grace already allows, and only a list at
//             twice the threshold forces a neutralization round.
//
// Churn: a departing handle drops its announcement (a vacated slot never
// blocks grace) and runs a departure scan whose freeable part drains
// through the executor's on_adopted() path — at the FreeSchedule quota
// per op — instead of one batch free; neutralize_all already skips
// slots with no announcement, so vacant slots are never "signalled".
//
// Batching policy: the retire-list scan threshold comes from the
// FreeSchedule (fixed = the configured batch, adaptive = prorated by
// the registered population); this TU never reads the config's batching
// knobs.
#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "core/timing.hpp"
#include "smr/internal.hpp"

namespace emr::smr::internal {
namespace {

struct RetiredNode {
  void* p;
  std::uint64_t retire;
};

struct alignas(64) NbrThread {
  // Era at the top of the current read block; 0 = not in an operation.
  std::atomic<std::uint64_t> start{0};
  // Raised by reclaimers; the next protect() restarts the read block.
  std::atomic<bool> neutralize{false};
  // Owner-private bookkeeping on its own line: scanners read start and
  // write neutralize on every reclaim pass, while the owner appends to
  // retired on every retire — keep the ping-pong off the retire path.
  alignas(64) std::vector<RetiredNode> retired;
  std::size_t scan_at = 0;
  std::uint64_t allocs = 0;
};
static_assert(alignof(NbrThread) == 64 && sizeof(NbrThread) % 64 == 0,
              "NbrThread must tile cache lines so start/neutralize never "
              "share one with a neighbour slot");

class NbrReclaimer final : public Reclaimer {
 public:
  NbrReclaimer(bool plus, const SmrContext& ctx, const SmrConfig& cfg,
               FreeExecutor* executor)
      : Reclaimer(cfg),
        name_(plus ? "nbrplus" : "nbr"),
        plus_(plus),
        ctx_(ctx),
        executor_(executor),
        epoch_freq_(std::max<std::size_t>(cfg.epoch_freq, 1)),
        threads_(cfg.slot_capacity()) {
    const std::size_t threshold = scan_threshold();
    for (NbrThread& t : threads_) {
      t.retired.reserve(threshold);
      t.scan_at = threshold;
    }
  }

  ~NbrReclaimer() override { flush_all(); }

  void begin_op_slot(int tid) override {
    NbrThread& t = slot(tid);
    t.neutralize.store(false, std::memory_order_relaxed);
    t.start.store(era_.load(std::memory_order_acquire),
                  std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void end_op_slot(int tid) override {
    NbrThread& t = slot(tid);
    t.start.store(0, std::memory_order_release);
    executor_->on_op_end(tid);
  }

  void* protect_slot(int, int, LoadFn load, const void* src) override {
    return load(src);  // reads are plain; the announcement is the shield
  }

  bool validate_slot(int tid) override {
    NbrThread& t = slot(tid);
    if (!t.neutralize.load(std::memory_order_relaxed)) return true;
    // Restart the read block: drop the old announcement and re-enter at
    // the current era (the signal handler's longjmp analogue). Every
    // pointer the caller obtained earlier in this block is now invalid.
    t.neutralize.store(false, std::memory_order_relaxed);
    t.start.store(era_.load(std::memory_order_acquire),
                  std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    neutralized_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void retire_slot(int tid, void* p) override {
    NbrThread& t = slot(tid);
    retired_.fetch_add(1, std::memory_order_relaxed);
    t.retired.push_back(
        RetiredNode{p, era_.load(std::memory_order_acquire)});
    if (t.retired.size() < t.scan_at) return;
    // nbr neutralizes on every full list; nbrplus lets grace do the work
    // at the low watermark and only signals at twice the threshold.
    if (!plus_ || t.retired.size() >= 2 * scan_threshold()) {
      neutralize_all(tid);
    }
    scan(tid, t);
  }

  void* alloc_node_slot(int tid, std::size_t size) override {
    NbrThread& t = slot(tid);
    if (++t.allocs % epoch_freq_ == 0) advance_era(tid);
    return executor_->alloc_node(tid, size);
  }

  void dealloc_unpublished_slot(int tid, void* p) override {
    ctx_.allocator->deallocate(tid, p);
  }

  /// Departure: the announcement drops (a vacated slot never blocks
  /// grace again) and one scan drains every retire older than the
  /// remaining announcements through the executor's adoption path (at
  /// the schedule's quota per op); the rest parks for the successor.
  void on_slot_deregister(int tid) override {
    NbrThread& t = slot(tid);
    t.start.store(0, std::memory_order_release);
    t.neutralize.store(false, std::memory_order_relaxed);
    if (!t.retired.empty()) scan(tid, t, /*departing=*/true);
  }

  void flush_all() override {
    for (NbrThread& t : threads_) {
      t.start.store(0, std::memory_order_relaxed);
      t.neutralize.store(false, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      NbrThread& t = threads_[i];
      const int tid = static_cast<int>(i);
      if (!t.retired.empty()) {
        std::vector<void*> bag;
        bag.reserve(t.retired.size());
        for (const RetiredNode& n : t.retired) bag.push_back(n.p);
        t.retired.clear();
        t.scan_at = scan_threshold();
        executor_->on_reclaimable(tid, std::move(bag));
      }
      executor_->quiesce(tid);
    }
  }

  SmrStats stats() const override {
    SmrStats st;
    st.retired = retired_.load(std::memory_order_relaxed);
    st.freed = executor_->total_freed();
    st.pending = st.retired - st.freed;
    st.epochs_advanced = era_.load(std::memory_order_relaxed) - 1;
    return st;
  }

  FreeExecutor& executor() override { return *executor_; }
  const char* name() const override { return name_; }
  const char* family() const override { return "nbr"; }

  std::uint64_t neutralizations() const {
    return neutralized_.load(std::memory_order_relaxed);
  }

 private:
  NbrThread& slot(int tid) {
    const std::size_t i = static_cast<std::size_t>(tid);
    return threads_[i < threads_.size() ? i : 0];
  }

  /// Retire-list scan threshold, asked of the free-schedule policy with
  /// the live population.
  std::size_t scan_threshold() const {
    return std::max<std::size_t>(
        executor_->schedule().scan_threshold(active_slots()), 1);
  }

  void neutralize_all(int tid) {
    advance_era(tid);
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      if (static_cast<int>(i) == tid) continue;
      NbrThread& t = threads_[i];
      if (t.start.load(std::memory_order_acquire) != 0) {
        t.neutralize.store(true, std::memory_order_release);
      }
    }
  }

  /// Frees every node retired strictly before the oldest active read
  /// block's announcement.
  void scan(int tid, NbrThread& t, bool departing = false) {
    std::uint64_t min_active = std::numeric_limits<std::uint64_t>::max();
    for (const NbrThread& th : threads_) {
      const std::uint64_t s = th.start.load(std::memory_order_acquire);
      if (s != 0) min_active = std::min(min_active, s);
    }
    std::vector<void*> bag;
    std::vector<RetiredNode> keep;
    bag.reserve(t.retired.size());
    for (const RetiredNode& n : t.retired) {
      if (n.retire < min_active) {
        bag.push_back(n.p);
      } else {
        keep.push_back(n);
      }
    }
    t.retired = std::move(keep);
    t.scan_at = next_scan_at(scan_threshold(), t.retired.size());
    if (!bag.empty()) executor_->hand_over(tid, departing, std::move(bag));
  }

  void advance_era(int tid) {
    const std::uint64_t e =
        era_.fetch_add(1, std::memory_order_acq_rel) + 1;
    record_progress_beat(ctx_, tid, e, stats().pending);
  }

  const char* name_;
  bool plus_;
  SmrContext ctx_;
  FreeExecutor* executor_;
  std::size_t epoch_freq_;
  std::vector<NbrThread> threads_;
  std::atomic<std::uint64_t> era_{1};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> neutralized_{0};
};

}  // namespace

std::unique_ptr<Reclaimer> make_nbr(bool plus, const SmrContext& ctx,
                                    const SmrConfig& cfg,
                                    FreeExecutor* executor) {
  return std::make_unique<NbrReclaimer>(plus, ctx, cfg, executor);
}

}  // namespace emr::smr::internal
