// Classic hazard pointers (Michael, "Hazard Pointers: Safe Memory
// Reclamation for Lock-Free Objects", TPDS 2004). Each thread owns K
// single-writer hazard slots; protect() publishes the loaded pointer
// into a slot, fences, and re-reads the source until the publication is
// known to have been visible while the pointer was still reachable.
// Retired nodes collect in a per-thread list; once the list reaches the
// scan threshold the thread snapshots every slot in the system and hands
// the unprotected suffix to the FreeExecutor as one bag — so the
// paper's batch/amortized/pooling free schedules apply to HP retires
// exactly as they do to epoch bags.
//
// Churn: a departing handle nulls its hazard slots (nothing it ever
// protected stays pinned) and runs one departure scan over its retire
// list whose freeable part drains through the executor's on_adopted()
// path — at the FreeSchedule quota per op — instead of one batch free;
// survivors still hazarded by other threads park in the slot for the
// next owner's scans (or flush_all).
//
// Batching policy: the scan threshold comes from the FreeSchedule
// (fixed = the configured batch, adaptive = prorated by the registered
// population), floored at Michael's H+1 bound; this TU never reads the
// config's batching knobs.
#include <algorithm>
#include <atomic>
#include <vector>

#include "core/timing.hpp"
#include "smr/internal.hpp"

namespace emr::smr::internal {
namespace {

struct alignas(64) HpThread {
  std::unique_ptr<std::atomic<void*>[]> slots;
  std::vector<void*> retired;
  // Next retired-list size that triggers a scan; grows past the base
  // threshold while every candidate stays protected so a pinned scan
  // cannot degenerate into O(n) work per retire.
  std::size_t scan_at = 0;
};

class HpReclaimer final : public Reclaimer {
 public:
  HpReclaimer(const SmrContext& ctx, const SmrConfig& cfg,
              FreeExecutor* executor)
      : Reclaimer(cfg),
        ctx_(ctx),
        executor_(executor),
        nlanes_(cfg.slot_capacity()),
        // Floor of 2: the ds/ traversals alternate two slots so the
        // previous hop stays protected while the next one publishes.
        nslots_(std::max<std::size_t>(cfg.hp_slots, 2)),
        threads_(cfg.slot_capacity()) {
    const std::size_t threshold = scan_threshold();
    for (HpThread& t : threads_) {
      t.slots = std::make_unique<std::atomic<void*>[]>(nslots_);
      for (std::size_t i = 0; i < nslots_; ++i) {
        t.slots[i].store(nullptr, std::memory_order_relaxed);
      }
      t.retired.reserve(threshold);
      t.scan_at = threshold;
    }
  }

  ~HpReclaimer() override { flush_all(); }

  void flush_all() override {
    for (HpThread& t : threads_) {
      for (std::size_t i = 0; i < nslots_; ++i) {
        t.slots[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    const std::size_t threshold = scan_threshold();
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      HpThread& t = threads_[i];
      const int lane = static_cast<int>(i);
      if (!t.retired.empty()) {
        executor_->on_reclaimable(lane, std::move(t.retired));
        t.retired = {};
        t.scan_at = threshold;
      }
      executor_->quiesce(lane);
    }
  }

  SmrStats stats() const override {
    SmrStats st;
    st.retired = retired_.load(std::memory_order_relaxed);
    st.freed = executor_->total_freed();
    st.pending = st.retired - st.freed;
    st.epochs_advanced = scans_.load(std::memory_order_relaxed);
    return st;
  }

  FreeExecutor& executor() override { return *executor_; }
  const char* name() const override { return "hp"; }
  const char* family() const override { return "hp"; }

 protected:
  void begin_op_slot(int) override {}

  void end_op_slot(int slot_idx) override {
    HpThread& t = slot(slot_idx);
    for (std::size_t i = 0; i < nslots_; ++i) {
      if (t.slots[i].load(std::memory_order_relaxed) != nullptr) {
        t.slots[i].store(nullptr, std::memory_order_release);
      }
    }
    executor_->on_op_end(slot_idx);
  }

  void* protect_slot(int slot_idx, int idx, LoadFn load,
                     const void* src) override {
    HpThread& t = slot(slot_idx);
    std::atomic<void*>& hp =
        t.slots[static_cast<std::size_t>(idx < 0 ? 0 : idx) % nslots_];
    void* p = load(src);
    for (;;) {
      hp.store(p, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      void* q = load(src);
      if (q == p) return p;  // publication was visible while p was live
      p = q;
    }
  }

  void retire_slot(int slot_idx, void* p) override {
    HpThread& t = slot(slot_idx);
    retired_.fetch_add(1, std::memory_order_relaxed);
    t.retired.push_back(p);
    if (t.retired.size() >= t.scan_at) scan(slot_idx, t);
  }

  void* alloc_node_slot(int slot_idx, std::size_t size) override {
    return executor_->alloc_node(slot_idx, size);
  }

  void dealloc_unpublished_slot(int slot_idx, void* p) override {
    ctx_.allocator->deallocate(slot_idx, p);
  }

  /// Departure: drop every hazard publication, then one scan hands the
  /// unprotected retires to the executor's adoption path (drained at
  /// the schedule's quota, never one burst); still-hazarded survivors
  /// park in the slot for the successor's scans.
  void on_slot_deregister(int slot_idx) override {
    HpThread& t = slot(slot_idx);
    for (std::size_t i = 0; i < nslots_; ++i) {
      if (t.slots[i].load(std::memory_order_relaxed) != nullptr) {
        t.slots[i].store(nullptr, std::memory_order_release);
      }
    }
    if (!t.retired.empty()) scan(slot_idx, t, /*departing=*/true);
  }

 private:
  HpThread& slot(int slot_idx) {
    const std::size_t i = static_cast<std::size_t>(slot_idx);
    return threads_[i < threads_.size() ? i : 0];
  }

  /// Scan threshold from the free-schedule policy, floored at Michael's
  /// R bound: a scan can only free anything once the list exceeds the
  /// total hazard count H = N*K.
  std::size_t scan_threshold() const {
    return std::max<std::size_t>(
        executor_->schedule().scan_threshold(active_slots()),
        nlanes_ * nslots_ + 1);
  }

  /// Snapshot every hazard slot, hand the unprotected retires to the
  /// executor, keep the protected ones for the next scan.
  void scan(int slot_idx, HpThread& t, bool departing = false) {
    std::vector<void*> hazards;
    hazards.reserve(nlanes_ * nslots_);
    for (const HpThread& th : threads_) {
      for (std::size_t i = 0; i < nslots_; ++i) {
        void* h = th.slots[i].load(std::memory_order_acquire);
        if (h != nullptr) hazards.push_back(h);
      }
    }
    std::sort(hazards.begin(), hazards.end());

    std::vector<void*> bag;
    std::vector<void*> keep;
    bag.reserve(t.retired.size());
    for (void* p : t.retired) {
      if (std::binary_search(hazards.begin(), hazards.end(), p)) {
        keep.push_back(p);
      } else {
        bag.push_back(p);
      }
    }
    t.retired = std::move(keep);
    t.scan_at = next_scan_at(scan_threshold(), t.retired.size());

    scans_.fetch_add(1, std::memory_order_relaxed);
    const SmrStats st = stats();
    record_progress_beat(ctx_, slot_idx, st.epochs_advanced, st.pending);
    if (!bag.empty()) {
      executor_->hand_over(slot_idx, departing, std::move(bag));
    }
  }

  SmrContext ctx_;
  FreeExecutor* executor_;
  std::size_t nlanes_;
  std::size_t nslots_;
  std::vector<HpThread> threads_;
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> scans_{0};
};

}  // namespace

std::unique_ptr<Reclaimer> make_hp(const SmrContext& ctx,
                                   const SmrConfig& cfg,
                                   FreeExecutor* executor) {
  return std::make_unique<HpReclaimer>(ctx, cfg, executor);
}

}  // namespace emr::smr::internal
