// Free-schedule policies. The reclaimer hands a FreeExecutor bags of
// nodes that have become safe to reclaim; the executor turns them into
// allocator traffic:
//
//   BatchFreeExecutor     - free the whole bag on the spot (the classical
//                           EBR behaviour the paper shows is harmful).
//   AmortizedFreeExecutor - append to a per-thread freeable list; each
//                           end_op drains `af_drain_per_op` nodes (the
//                           paper's asynchronous-free fix).
//   PoolingFreeExecutor   - like amortized, but alloc_node is served from
//                           the freeable list first (section 3.3 pooling).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "smr/reclaimer.hpp"

namespace emr::smr {

class BatchFreeExecutor final : public FreeExecutor {
 public:
  using FreeExecutor::FreeExecutor;
  void on_reclaimable(int tid, std::vector<void*>&& bag) override;
};

class AmortizedFreeExecutor : public FreeExecutor {
 public:
  AmortizedFreeExecutor(const SmrContext& ctx, const SmrConfig& cfg);
  void on_reclaimable(int tid, std::vector<void*>&& bag) override;
  void on_op_end(int tid) override;
  void quiesce(int tid) override;
  std::uint64_t backlog() const override;

 protected:
  struct alignas(64) Freeable {
    std::deque<void*> nodes;
    std::atomic<std::uint64_t> size{0};
  };
  Freeable& lane(int tid);
  std::vector<Freeable> freeable_;
};

}  // namespace emr::smr
