// Free-schedule policies. The reclaimer hands a FreeExecutor bags of
// nodes that have become safe to reclaim; the executor turns them into
// allocator traffic:
//
//   BatchFreeExecutor     - free the whole bag on the spot (the classical
//                           EBR behaviour the paper shows is harmful).
//   AmortizedFreeExecutor - append to a per-lane freeable list; each
//                           end_op drains `af_drain_per_op` nodes (the
//                           paper's asynchronous-free fix).
//   PoolingFreeExecutor   - like amortized, but alloc_node is served from
//                           the freeable list first (section 3.3 pooling).
//
// Contract (see the FreeExecutor base in smr/reclaimer.hpp for the full
// statement): ownership of every pointer in an on_reclaimable() bag
// transfers here, and each such node leaves limbo exactly once — through
// one allocator deallocate (timed_free) or, for pooling, by being handed
// back out of alloc_node(). Bags arrive already safe; delaying a free is
// always allowed, freeing early is impossible by construction. `lane` is
// the registration slot of the calling ThreadHandle: entry points are
// safe across different lanes (each lane's thread owns its state), and a
// recycled slot hands its lane — backlog included — to the successor
// thread. quiesce() is teardown-only and drains a lane completely.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "smr/reclaimer.hpp"

namespace emr::smr {

class BatchFreeExecutor final : public FreeExecutor {
 public:
  using FreeExecutor::FreeExecutor;
  void on_reclaimable(int lane, std::vector<void*>&& bag) override;
};

class AmortizedFreeExecutor : public FreeExecutor {
 public:
  AmortizedFreeExecutor(const SmrContext& ctx, const SmrConfig& cfg);
  void on_reclaimable(int lane, std::vector<void*>&& bag) override;
  void on_op_end(int lane) override;
  void quiesce(int lane) override;
  std::uint64_t backlog() const override;

 protected:
  struct alignas(64) Freeable {
    std::deque<void*> nodes;
    std::atomic<std::uint64_t> size{0};
  };
  Freeable& lane(int lane_idx);
  std::vector<Freeable> freeable_;
};

}  // namespace emr::smr
