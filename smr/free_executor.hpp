// Free-schedule executors. The reclaimer hands a FreeExecutor bags of
// nodes that have become safe to reclaim; the executor turns them into
// allocator traffic, sourcing every quantum (per-op drain, pool cap)
// from the FreeSchedule policy it is constructed over:
//
//   BatchFreeExecutor     - free the whole bag on the spot (the classical
//                           EBR behaviour the paper shows is harmful).
//   AmortizedFreeExecutor - append to a per-lane freeable list; each
//                           end_op drains at most the schedule's quota
//                           (the paper's asynchronous-free fix).
//   PoolingFreeExecutor   - like amortized, but alloc_node is served from
//                           the freeable list first (section 3.3 pooling)
//                           and only the excess over the schedule's pool
//                           cap is ever freed.
//
// Contract (see the FreeExecutor base in smr/reclaimer.hpp for the full
// statement): ownership of every pointer in an on_reclaimable() or
// on_adopted() bag transfers here, and each such node leaves limbo
// exactly once — through one allocator deallocate (timed_free) or, for
// pooling, by being handed back out of alloc_node(). Bags arrive already
// safe; delaying a free is always allowed, freeing early is impossible
// by construction. `lane` is the registration slot of the calling
// ThreadHandle: entry points are safe across different lanes (each
// lane's thread owns its state), and a recycled slot hands its lane —
// backlog included — to the successor thread. on_adopted() is the
// churn path: departure hand-offs drain at the schedule's quota per op
// instead of in one burst. quiesce() is teardown-only and drains a lane
// completely.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "smr/reclaimer.hpp"

namespace emr::smr {

class BatchFreeExecutor final : public FreeExecutor {
 public:
  using FreeExecutor::FreeExecutor;
  void on_reclaimable(int lane, std::vector<void*>&& bag) override;
};

class AmortizedFreeExecutor : public FreeExecutor {
 public:
  AmortizedFreeExecutor(const SmrContext& ctx, const SmrConfig& cfg,
                        FreeSchedule* schedule);
  void on_reclaimable(int lane, std::vector<void*>&& bag) override;
  void on_adopted(int lane, std::vector<void*>&& bag) override;
  void on_op_end(int lane) override;
  void quiesce(int lane) override;
  std::size_t daemon_drain(int lane, std::size_t quota,
                           int daemon_lane) override;

 protected:
  struct alignas(64) Freeable {
    std::deque<void*> nodes;
    /// Tenant tags parallel to `nodes`; maintained only when the
    /// bundle is multi-tenant (empty otherwise).
    std::deque<std::uint32_t> tags;
    std::atomic<std::uint64_t> size{0};
  };
  Freeable& lane(int lane_idx);
  std::uint64_t lane_backlog(int lane_idx) const override;
  /// Frees up to `quota` nodes from the lane's freeable list (down to
  /// `floor` survivors — the pooling inventory); returns how many.
  /// Takes the lane lock internally when a daemon is hooked.
  std::size_t drain_freeable(int lane_idx, std::size_t quota,
                             std::size_t floor);
  std::vector<Freeable> freeable_;
};

}  // namespace emr::smr
