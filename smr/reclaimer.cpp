// Registration-slot registry behind the ThreadHandle API. Registration
// and release are deliberately coarse (one mutex): they happen at thread
// birth/death — at most once per churn interval — while the per-op paths
// stay lock-free and touch only the slot the handle pins.
#include "smr/reclaimer.hpp"

namespace emr::smr {

Reclaimer::Reclaimer(const SmrConfig& cfg)
    : slot_state_(cfg.slot_capacity()) {
  free_slots_.reserve(slot_state_.size());
  // LIFO pop order hands out slot 0 first, matching the dense-tid layout
  // instruments and tests expect for a churn-free population.
  for (std::size_t i = slot_state_.size(); i > 0; --i) {
    free_slots_.push_back(static_cast<int>(i - 1));
  }
}

ThreadHandle Reclaimer::register_thread() {
  std::lock_guard<std::mutex> lock(reg_mu_);
  if (free_slots_.empty()) {
    throw std::runtime_error(
        "register_thread: all " + std::to_string(slot_state_.size()) +
        " registration slots are live (capacity = num_threads + "
        "extra_slots; raise SmrConfig::num_threads or "
        "SmrConfig::extra_slots — EMR_EXTRA_SLOTS from the harness)");
  }
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  SlotState& s = slot_state_[static_cast<std::size_t>(slot)];
  ++s.generation;
  // Adoption hook first: the incoming thread owns the slot's parked
  // backlog before the slot is visible as active to ring/scan logic.
  on_slot_register(slot);
  s.active.store(true, std::memory_order_seq_cst);
  const std::size_t live =
      active_count_.fetch_add(1, std::memory_order_acq_rel) + 1;
  executor().schedule().on_population(live);
  on_population_change(live);
  return ThreadHandle(this, slot, s.generation);
}

void Reclaimer::deregister(ThreadHandle& h) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  const int slot = h.slot_;
  SlotState& s = slot_state_[static_cast<std::size_t>(slot)];
  // Inactive first so scheme departure hooks (token hand-off, epoch
  // advance checks) already see the slot as vacant.
  s.active.store(false, std::memory_order_seq_cst);
  const std::size_t live =
      active_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  executor().schedule().on_population(live);
  on_population_change(live);
  on_slot_deregister(slot);
  // After the scheme has parked the slot's bags, splice the departing
  // lane's remote-free stash into the adoption queue: a vacant lane runs
  // no ops, so nothing would flush it until the daemon's next sweep, and
  // a daemon-less config would strand the blocks outright.
  executor().on_lane_released(slot);
  free_slots_.push_back(slot);
}

SmrStats Reclaimer::stats_with_lanes() const {
  // Lanes first, then the scheme-wide totals: lane_stats() reads each
  // lane's exit counters (drained/flushed) before its entry counters
  // (enqueued/stashed), so a concurrent op can only make a lane look
  // slightly *behind* — derived gauges (backlog, stash_backlog) never go
  // transiently negative. The scheme totals are read last for the same
  // reason: they can only over-count completed work relative to the lane
  // rows, never report work the lanes have not yet seen. The snapshot as
  // a whole is still not a single atomic cut — rows taken while traffic
  // is live may disagree by in-flight ops — and consumers (JSON
  // emitters, the daemon tick) must treat it as monotone-consistent, not
  // exact.
  FreeExecutor& ex = const_cast<Reclaimer*>(this)->executor();
  std::vector<LaneStats> lanes;
  lanes.reserve(ex.lane_count());
  for (std::size_t i = 0; i < ex.lane_count(); ++i) {
    lanes.push_back(ex.lane_stats(static_cast<int>(i)));
  }
  SmrStats st = stats();
  st.lanes = std::move(lanes);
  return st;
}

}  // namespace emr::smr
