// The shipped FreeSchedule policies (interface: smr/reclaimer.hpp,
// contract: docs/FREE_SCHEDULES.md):
//
//   FixedFreeSchedule         - mirrors the SmrConfig constants: the
//                               drain quantum is af_drain_per_op, the
//                               seal/scan threshold is batch_size
//                               regardless of who is registered. This is
//                               the paper's setup and the default behind
//                               every plain/_af/_pool name.
//   AdaptiveFreeSchedule      - a population-aware feedback controller:
//                               the seal/scan threshold is the
//                               configured batch prorated by the live
//                               fraction of the slot table (the
//                               batch-size-vs-population lesson from the
//                               large-batch-training literature), and
//                               the drain quantum tracks each lane's
//                               backlog against a drain horizon that
//                               tightens as the registered population
//                               grows, capped by the lane's measured
//                               ns-per-free so one op never stalls on a
//                               slow allocator path.
//   LatencyTargetFreeSchedule - the adaptive controller closed over the
//                               *observed* per-op tail: the harness
//                               pumps the merged p99.9 in through
//                               on_tail_latency, and a multiplicative
//                               scale on the adaptive quantum backs off
//                               while the tail overshoots
//                               SmrConfig::latency_target_us and creeps
//                               back up while it sits comfortably under.
//
// make_free_schedule is the only place in smr/ that reads the config's
// batching knobs; executors and scheme TUs consult the policy
// (ci/check.sh greps to keep it that way — and the same grep keeps
// latency counters out of the scheme TUs).
#pragma once

#include <memory>

#include "smr/reclaimer.hpp"

namespace emr::smr {

enum class ScheduleKind { kFixed, kAdaptive, kLatency };

class FixedFreeSchedule final : public FreeSchedule {
 public:
  explicit FixedFreeSchedule(const SmrConfig& cfg);

  const char* name() const override { return "fixed"; }
  std::size_t drain_quota(const LaneStats&) const override { return drain_; }
  std::size_t scan_threshold(std::size_t) const override { return batch_; }
  std::size_t pool_cap() const override { return pool_cap_; }
  /// Home-flush quantum mirrors the config constant, like every other
  /// fixed quantum: EMR_FLUSH_BATCH stashed blocks per op end.
  std::size_t flush_quota(const LaneStats&) const override {
    return flush_batch_;
  }
  /// Constant quantum: executors skip the per-op stats snapshot and
  /// drain-cost clocking, keeping the paper-reproduction rows on the
  /// pre-policy-layer hot path.
  bool consumes_lane_stats() const override { return false; }
  /// The per-op quantum is deliberately tiny (af_drain_per_op), so the
  /// default daemon scaling would barely move backlog between ticks.
  /// Off the op path a tick may swallow up to one sealed bag under
  /// pressure, and a slice of one when merely quiet.
  std::size_t daemon_quota(const LaneStats&, bool pressure) const override {
    if (pressure) return batch_;
    const std::size_t slice = batch_ / 8;
    return drain_ > slice ? drain_ : slice;
  }

 private:
  std::size_t drain_;
  std::size_t batch_;
  std::size_t pool_cap_;
  std::size_t flush_batch_;
};

class AdaptiveFreeSchedule : public FreeSchedule {
 public:
  explicit AdaptiveFreeSchedule(const SmrConfig& cfg);

  const char* name() const override { return "adaptive"; }
  std::size_t drain_quota(const LaneStats& lane) const override;
  std::size_t scan_threshold(std::size_t population) const override;
  std::size_t pool_cap() const override { return pool_cap_; }
  /// Backlog-proportional flush quantum: the lane's stash backlog over
  /// the same population-tightened horizon the drain controller uses,
  /// clamped to [1, EMR_FLUSH_BATCH]. A lane whose stash is being fed
  /// faster than it drains flushes harder; a quiet stash costs one
  /// block's worth of work per op end. No ns-per-free cap: flushed
  /// blocks take the local fast path, which is the cheap case the
  /// drain-side cap exists to protect.
  std::size_t flush_quota(const LaneStats& lane) const override;
  void on_population(std::size_t n) override {
    population_.store(n, std::memory_order_relaxed);
  }

  /// Last population the reclaimer pushed (live ThreadHandles).
  std::size_t population() const {
    return population_.load(std::memory_order_relaxed);
  }

 protected:
  // The latency-target subclass clamps its scaled quantum to the same
  // bounds the base controller honours.
  std::size_t drain_min() const { return drain_min_; }
  std::size_t drain_max() const { return drain_max_; }
  std::size_t flush_batch() const { return flush_batch_; }

 private:
  std::size_t batch_;
  std::size_t capacity_;      // slot_capacity(): full-table batch scale
  std::size_t base_threads_;  // configured steady-state population
  std::size_t drain_min_;
  std::size_t drain_max_;
  std::size_t pool_cap_;
  std::size_t flush_batch_;
  std::atomic<std::size_t> population_{0};
};

/// AdaptiveFreeSchedule steered by the observed per-op tail. The
/// harness's sampler thread measures the merged p99.9 every sample
/// period and pushes it through on_tail_latency; the schedule keeps a
/// multiplicative scale (fixed-point, kScaleUnit == 1.0) on the
/// adaptive quantum:
///
///   p99.9 > target          -> scale halves   (back off hard: the
///                              drain bursts are what stalls the tail)
///   p99.9 < 3/4 * target    -> scale grows 25% (relax gently while
///                              there is headroom, so backlog drains)
///
/// The scale is floored well above zero — a latency target can shrink
/// the quantum to drain_min but never stop reclamation entirely, so
/// backlog stays bounded even under an unreachable target.
class LatencyTargetFreeSchedule final : public AdaptiveFreeSchedule {
 public:
  static constexpr std::size_t kScaleUnit = 1024;  // fixed-point 1.0
  static constexpr std::size_t kScaleMin = 16;     // 1/64th of adaptive
  static constexpr std::size_t kScaleMax = 4 * kScaleUnit;

  explicit LatencyTargetFreeSchedule(const SmrConfig& cfg);

  const char* name() const override { return "latency"; }
  std::size_t drain_quota(const LaneStats& lane) const override;
  /// The adaptive flush quantum under the same tail scale as the drain
  /// quantum — a stressed tail shrinks home-flush bursts too — but
  /// floored at 1, never 0: a stash that stops draining strands remote
  /// blocks on live lanes, which the latency policy must not do.
  std::size_t flush_quota(const LaneStats& lane) const override;
  void on_tail_latency(std::uint64_t p999_ns) override;
  bool wants_latency_feedback() const override { return true; }
  /// The tail scale exists to keep drain bursts off the *op* path; a
  /// background-reclaimer tick frees off that path entirely, so its
  /// quantum is the unscaled adaptive one. Without this the daemon
  /// inherits the throttled op quota and the backlog the latency policy
  /// deliberately defers can outlive the traffic that produced it.
  std::size_t daemon_quota(const LaneStats& lane,
                           bool pressure) const override {
    const std::size_t q = AdaptiveFreeSchedule::drain_quota(lane);
    return pressure ? q * 8 : q * 2;
  }

  std::uint64_t target_ns() const { return target_ns_; }
  /// Current multiplier on the adaptive quantum, in 1/kScaleUnit units.
  std::size_t scale() const {
    return scale_.load(std::memory_order_relaxed);
  }
  /// Last p99.9 the driver pushed (0 before the first beat).
  std::uint64_t last_p999_ns() const {
    return last_p999_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t target_ns_;
  std::atomic<std::size_t> scale_{kScaleUnit};
  std::atomic<std::uint64_t> last_p999_{0};
};

/// Builds the policy, failing fast (std::invalid_argument naming the
/// knob) on nonsensical config: batch_size == 0, flush_batch == 0,
/// drain_min == 0, drain_max < drain_min, or a zero latency_target_us
/// for the latency policy. `kind` is the factory-name default; SmrConfig::schedule
/// ("fixed" | "adaptive" | "latency", EMR_SCHEDULE) overrides it, and
/// any other non-empty value throws.
std::unique_ptr<FreeSchedule> make_free_schedule(ScheduleKind kind,
                                                 const SmrConfig& cfg);

}  // namespace emr::smr
