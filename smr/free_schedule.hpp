// The two shipped FreeSchedule policies (interface: smr/reclaimer.hpp,
// contract: docs/FREE_SCHEDULES.md):
//
//   FixedFreeSchedule    - mirrors the SmrConfig constants: the drain
//                          quantum is af_drain_per_op, the seal/scan
//                          threshold is batch_size regardless of who is
//                          registered. This is the paper's setup and the
//                          default behind every plain/_af/_pool name.
//   AdaptiveFreeSchedule - a population-aware feedback controller: the
//                          seal/scan threshold is the configured batch
//                          prorated by the live fraction of the slot
//                          table (the batch-size-vs-population lesson
//                          from the large-batch-training literature),
//                          and the drain quantum tracks each lane's
//                          backlog against a drain horizon that tightens
//                          as the registered population grows, capped by
//                          the lane's measured ns-per-free so one op
//                          never stalls on a slow allocator path.
//
// make_free_schedule is the only place in smr/ that reads the config's
// batching knobs; executors and scheme TUs consult the policy
// (ci/check.sh greps to keep it that way).
#pragma once

#include <memory>

#include "smr/reclaimer.hpp"

namespace emr::smr {

enum class ScheduleKind { kFixed, kAdaptive };

class FixedFreeSchedule final : public FreeSchedule {
 public:
  explicit FixedFreeSchedule(const SmrConfig& cfg);

  const char* name() const override { return "fixed"; }
  std::size_t drain_quota(const LaneStats&) const override { return drain_; }
  std::size_t scan_threshold(std::size_t) const override { return batch_; }
  std::size_t pool_cap() const override { return pool_cap_; }
  /// Constant quantum: executors skip the per-op stats snapshot and
  /// drain-cost clocking, keeping the paper-reproduction rows on the
  /// pre-policy-layer hot path.
  bool consumes_lane_stats() const override { return false; }

 private:
  std::size_t drain_;
  std::size_t batch_;
  std::size_t pool_cap_;
};

class AdaptiveFreeSchedule final : public FreeSchedule {
 public:
  explicit AdaptiveFreeSchedule(const SmrConfig& cfg);

  const char* name() const override { return "adaptive"; }
  std::size_t drain_quota(const LaneStats& lane) const override;
  std::size_t scan_threshold(std::size_t population) const override;
  std::size_t pool_cap() const override { return pool_cap_; }
  void on_population(std::size_t n) override {
    population_.store(n, std::memory_order_relaxed);
  }

  /// Last population the reclaimer pushed (live ThreadHandles).
  std::size_t population() const {
    return population_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t batch_;
  std::size_t capacity_;      // slot_capacity(): full-table batch scale
  std::size_t base_threads_;  // configured steady-state population
  std::size_t drain_min_;
  std::size_t drain_max_;
  std::size_t pool_cap_;
  std::atomic<std::size_t> population_{0};
};

/// Builds the policy, failing fast (std::invalid_argument naming the
/// knob) on nonsensical config: batch_size == 0, drain_min == 0,
/// drain_max < drain_min. `kind` is the factory-name default;
/// SmrConfig::schedule ("fixed" | "adaptive", EMR_SCHEDULE) overrides
/// it, and any other non-empty value throws.
std::unique_ptr<FreeSchedule> make_free_schedule(ScheduleKind kind,
                                                 const SmrConfig& cfg);

}  // namespace emr::smr
