#include "smr/factory.hpp"

#include <stdexcept>

#include "smr/internal.hpp"
#include "smr/pooling_executor.hpp"

namespace emr::smr {

namespace {

using internal::EbrOptions;
using internal::ProtectMode;
using internal::TokenOptions;
using internal::TokenPolicy;

enum class ExecKind { kBatch, kAmortized, kPooling };

std::unique_ptr<FreeExecutor> make_executor(ExecKind kind,
                                            const SmrContext& ctx,
                                            const SmrConfig& cfg) {
  switch (kind) {
    case ExecKind::kBatch:
      return std::make_unique<BatchFreeExecutor>(ctx, cfg);
    case ExecKind::kAmortized:
      return std::make_unique<AmortizedFreeExecutor>(ctx, cfg);
    case ExecKind::kPooling:
      return std::make_unique<PoolingFreeExecutor>(ctx, cfg);
  }
  return nullptr;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() > suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

ReclaimerBundle make_reclaimer(const std::string& name, const SmrContext& ctx,
                               const SmrConfig& cfg) {
  if (ctx.allocator == nullptr) {
    throw std::invalid_argument("make_reclaimer: SmrContext.allocator unset");
  }

  // Split off the free-schedule suffix. The multi-word token variants are
  // whole names, not suffixed forms of "token".
  std::string base = name;
  ExecKind exec = ExecKind::kBatch;
  if (name != "token_naive" && name != "token_passfirst") {
    if (ends_with(name, "_af")) {
      base = name.substr(0, name.size() - 3);
      exec = ExecKind::kAmortized;
    } else if (ends_with(name, "_pool")) {
      base = name.substr(0, name.size() - 5);
      exec = ExecKind::kPooling;
    }
  }

  ReclaimerBundle bundle;
  bundle.executor = make_executor(exec, ctx, cfg);

  // Token family.
  TokenOptions topt;
  bool is_token = true;
  if (base == "token_naive") {
    topt = {"token_naive", TokenPolicy::kNaive};
  } else if (base == "token_passfirst") {
    topt = {"token_passfirst", TokenPolicy::kPassFirst};
  } else if (base == "token") {
    topt = exec == ExecKind::kBatch
               ? TokenOptions{"token", TokenPolicy::kPeriodic}
               : TokenOptions{exec == ExecKind::kAmortized ? "token_af"
                                                           : "token_pool",
                              TokenPolicy::kHandOff};
  } else {
    is_token = false;
  }
  if (is_token) {
    bundle.reclaimer =
        internal::make_token(topt, ctx, cfg, bundle.executor.get());
    return bundle;
  }

  // Epoch family (and the pointer-scheme aliases).
  EbrOptions opt;
  if (base == "none") {
    opt = {"none", /*leak=*/true, /*quiescent=*/true, ProtectMode::kPlain};
  } else if (base == "qsbr") {
    opt = {"qsbr", false, /*quiescent=*/true, ProtectMode::kPlain};
  } else if (base == "rcu") {
    opt = {"rcu", false, /*quiescent=*/true, ProtectMode::kPlain};
  } else if (base == "debra") {
    opt = {"debra", false, false, ProtectMode::kPlain};
  } else if (base == "hp") {
    opt = {"hp", false, false, ProtectMode::kFence};
  } else if (base == "he") {
    opt = {"he", false, false, ProtectMode::kFence};
  } else if (base == "ibr") {
    opt = {"ibr", false, false, ProtectMode::kAnnounce};
  } else if (base == "wfe") {
    opt = {"wfe", false, false, ProtectMode::kAnnounce};
  } else if (base == "nbr") {
    opt = {"nbr", false, false, ProtectMode::kAnnounce};
  } else if (base == "nbrplus") {
    opt = {"nbrplus", false, false, ProtectMode::kAnnounce};
  } else {
    throw std::invalid_argument("unknown reclaimer: " + name);
  }
  bundle.reclaimer = internal::make_ebr(opt, ctx, cfg, bundle.executor.get());
  return bundle;
}

const std::vector<std::string>& experiment2_reclaimers() {
  static const std::vector<std::string> kNames = {
      "debra", "token", "qsbr", "rcu", "ibr",
      "nbr",   "nbrplus", "he", "hp",  "wfe"};
  return kNames;
}

const std::vector<std::string>& reclaimer_names() {
  static const std::vector<std::string> kNames = {
      "none", "qsbr", "rcu", "debra", "hp",  "he",
      "ibr",  "wfe",  "nbr", "nbrplus", "token_naive",
      "token_passfirst", "token"};
  return kNames;
}

}  // namespace emr::smr
