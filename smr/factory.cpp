#include "smr/factory.hpp"

#include <stdexcept>

#include "smr/free_schedule.hpp"
#include "smr/internal.hpp"
#include "smr/pooling_executor.hpp"

namespace emr::smr {

namespace {

using internal::EbrOptions;
using internal::EraVariant;
using internal::TokenOptions;
using internal::TokenPolicy;

enum class ExecKind { kBatch, kAmortized, kPooling };

std::unique_ptr<FreeExecutor> make_executor(ExecKind kind,
                                            const SmrContext& ctx,
                                            const SmrConfig& cfg,
                                            FreeSchedule* schedule) {
  switch (kind) {
    case ExecKind::kBatch:
      return std::make_unique<BatchFreeExecutor>(ctx, cfg, schedule);
    case ExecKind::kAmortized:
      return std::make_unique<AmortizedFreeExecutor>(ctx, cfg, schedule);
    case ExecKind::kPooling:
      return std::make_unique<PoolingFreeExecutor>(ctx, cfg, schedule);
  }
  return nullptr;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() > suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The multi-word token variants are whole names, not suffixed forms of
/// "token".
bool takes_suffix(const std::string& name) {
  return name != "token_naive" && name != "token_passfirst";
}

}  // namespace

std::string reclaimer_base_name(const std::string& name) {
  if (takes_suffix(name)) {
    if (ends_with(name, "_af")) return name.substr(0, name.size() - 3);
    if (ends_with(name, "_pool")) return name.substr(0, name.size() - 5);
    if (ends_with(name, "_adaptive")) {
      return name.substr(0, name.size() - 9);
    }
    if (ends_with(name, "_latency")) {
      return name.substr(0, name.size() - 8);
    }
  }
  return name;
}

ReclaimerBundle make_reclaimer(const std::string& name, const SmrContext& ctx,
                               const SmrConfig& cfg) {
  if (ctx.allocator == nullptr) {
    throw std::invalid_argument("make_reclaimer: SmrContext.allocator unset");
  }

  // Split off the free-schedule suffix. Suffixed forms of the fixed
  // token variants ("token_naive_af") are not in the name grammar —
  // reject them rather than constructing an untested combination.
  const std::string base = reclaimer_base_name(name);
  if (!takes_suffix(base) && base != name) {
    throw std::invalid_argument("unknown reclaimer: " + name);
  }
  const std::string suffix = name.substr(base.size());
  ExecKind exec = ExecKind::kBatch;
  ScheduleKind sched = ScheduleKind::kFixed;
  if (suffix == "_af") {
    exec = ExecKind::kAmortized;
  } else if (suffix == "_pool") {
    exec = ExecKind::kPooling;
  } else if (suffix == "_adaptive") {
    // The adaptive variants amortize like _af, but the drain quantum and
    // seal/scan thresholds come from the population-aware controller.
    exec = ExecKind::kAmortized;
    sched = ScheduleKind::kAdaptive;
  } else if (suffix == "_latency") {
    // Same amortizing executor, quantum steered by the observed per-op
    // tail (the driver pumps p99.9 through FreeSchedule::on_tail_latency).
    exec = ExecKind::kAmortized;
    sched = ScheduleKind::kLatency;
  }

  ReclaimerBundle bundle;
  // SmrConfig::schedule ("fixed" | "adaptive", EMR_SCHEDULE) overrides
  // the suffix-derived kind inside make_free_schedule.
  bundle.schedule = make_free_schedule(sched, cfg);
  bundle.executor = make_executor(exec, ctx, cfg, bundle.schedule.get());

  // Token family.
  TokenOptions topt;
  bool is_token = true;
  if (base == "token_naive") {
    topt = {"token_naive", TokenPolicy::kNaive};
  } else if (base == "token_passfirst") {
    topt = {"token_passfirst", TokenPolicy::kPassFirst};
  } else if (base == "token") {
    if (suffix.empty()) {
      topt = {"token", TokenPolicy::kPeriodic};
    } else {
      topt = {suffix == "_af"         ? "token_af"
              : suffix == "_pool"     ? "token_pool"
              : suffix == "_adaptive" ? "token_adaptive"
                                      : "token_latency",
              TokenPolicy::kHandOff};
    }
  } else {
    is_token = false;
  }
  if (is_token) {
    bundle.reclaimer =
        internal::make_token(topt, ctx, cfg, bundle.executor.get());
    return bundle;
  }

  // Pointer-protecting families, each in its own translation unit.
  if (base == "hp") {
    bundle.reclaimer = internal::make_hp(ctx, cfg, bundle.executor.get());
    return bundle;
  }
  if (base == "he" || base == "ibr" || base == "wfe") {
    const EraVariant variant = base == "he"    ? EraVariant::kHazardEras
                               : base == "ibr" ? EraVariant::kInterval
                                               : EraVariant::kWaitFreeEras;
    bundle.reclaimer =
        internal::make_era(variant, ctx, cfg, bundle.executor.get());
    return bundle;
  }
  if (base == "nbr" || base == "nbrplus") {
    bundle.reclaimer = internal::make_nbr(/*plus=*/base == "nbrplus", ctx,
                                          cfg, bundle.executor.get());
    return bundle;
  }

  // Epoch family.
  EbrOptions opt;
  if (base == "none") {
    opt = {"none", /*leak=*/true, /*quiescent=*/true};
  } else if (base == "qsbr") {
    opt = {"qsbr", false, /*quiescent=*/true};
  } else if (base == "rcu") {
    opt = {"rcu", false, /*quiescent=*/true};
  } else if (base == "debra") {
    opt = {"debra", false, false};
  } else {
    throw std::invalid_argument("unknown reclaimer: " + name);
  }
  bundle.reclaimer = internal::make_ebr(opt, ctx, cfg, bundle.executor.get());
  return bundle;
}

const std::vector<std::string>& experiment2_reclaimers() {
  static const std::vector<std::string> kNames = {
      "debra", "token", "qsbr", "rcu", "ibr",
      "nbr",   "nbrplus", "he", "hp",  "wfe"};
  return kNames;
}

const std::vector<std::string>& reclaimer_names() {
  static const std::vector<std::string> kNames = {
      "none", "qsbr", "rcu", "debra", "hp",  "he",
      "ibr",  "wfe",  "nbr", "nbrplus", "token_naive",
      "token_passfirst", "token"};
  return kNames;
}

const std::vector<std::string>& all_factory_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const std::string& base : reclaimer_names()) {
      names.push_back(base);
      if (takes_suffix(base)) {
        names.push_back(base + "_af");
        names.push_back(base + "_pool");
        names.push_back(base + "_adaptive");
        names.push_back(base + "_latency");
      }
    }
    return names;
  }();
  return kNames;
}

}  // namespace emr::smr
