#include "smr/factory.hpp"

#include <stdexcept>

#include "smr/free_schedule.hpp"
#include "smr/internal.hpp"
#include "smr/pooling_executor.hpp"

namespace emr::smr {

namespace {

using internal::EbrOptions;
using internal::EraVariant;
using internal::TokenOptions;
using internal::TokenPolicy;

enum class ExecKind { kBatch, kAmortized, kPooling };

std::unique_ptr<FreeExecutor> make_executor(ExecKind kind,
                                            const SmrContext& ctx,
                                            const SmrConfig& cfg,
                                            FreeSchedule* schedule) {
  switch (kind) {
    case ExecKind::kBatch:
      return std::make_unique<BatchFreeExecutor>(ctx, cfg, schedule);
    case ExecKind::kAmortized:
      return std::make_unique<AmortizedFreeExecutor>(ctx, cfg, schedule);
    case ExecKind::kPooling:
      return std::make_unique<PoolingFreeExecutor>(ctx, cfg, schedule);
  }
  return nullptr;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() > suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The multi-word token variants are whole names, not suffixed forms of
/// "token".
bool takes_suffix(const std::string& name) {
  return name != "token_naive" && name != "token_passfirst";
}

}  // namespace

std::string reclaimer_base_name(const std::string& name) {
  // "_hf" (home-flush) is the outermost suffix: it composes with every
  // suffixable form (hp_hf, hp_af_hf, token_latency_hf), so strip it
  // before the schedule suffix.
  std::string rest = name;
  if (ends_with(rest, "_hf")) rest = rest.substr(0, rest.size() - 3);
  if (takes_suffix(rest)) {
    if (ends_with(rest, "_af")) return rest.substr(0, rest.size() - 3);
    if (ends_with(rest, "_pool")) return rest.substr(0, rest.size() - 5);
    if (ends_with(rest, "_adaptive")) {
      return rest.substr(0, rest.size() - 9);
    }
    if (ends_with(rest, "_latency")) {
      return rest.substr(0, rest.size() - 8);
    }
  }
  return rest;
}

ReclaimerBundle make_reclaimer(const std::string& name, const SmrContext& ctx,
                               const SmrConfig& cfg) {
  if (ctx.allocator == nullptr) {
    throw std::invalid_argument("make_reclaimer: SmrContext.allocator unset");
  }

  // Split off the trailing home-flush marker first ("hp_af_hf" ->
  // "hp_af" + routing on), then the free-schedule suffix.
  // SmrConfig::home_flush ("on"/"off", EMR_HOME_FLUSH) overrides the
  // name-derived setting either way, so one binary can A/B the routing
  // layer without renaming its reclaimer column.
  bool hf = false;
  std::string stem = name;
  if (ends_with(stem, "_hf")) {
    hf = true;
    stem = stem.substr(0, stem.size() - 3);
  }
  if (!cfg.home_flush.empty()) {
    if (cfg.home_flush == "on") {
      hf = true;
    } else if (cfg.home_flush == "off") {
      hf = false;
    } else {
      throw std::invalid_argument(
          "invalid SmrConfig::home_flush: '" + cfg.home_flush +
          "' (EMR_HOME_FLUSH must be \"on\" or \"off\")");
    }
  }

  // Suffixed forms of the fixed token variants ("token_naive_af",
  // "token_naive_hf") are not in the name grammar — reject them rather
  // than constructing an untested combination.
  const std::string base = reclaimer_base_name(stem);
  if (!takes_suffix(base) && base != name) {
    throw std::invalid_argument("unknown reclaimer: " + name);
  }
  const std::string suffix = stem.substr(base.size());
  ExecKind exec = ExecKind::kBatch;
  ScheduleKind sched = ScheduleKind::kFixed;
  if (suffix == "_af") {
    exec = ExecKind::kAmortized;
  } else if (suffix == "_pool") {
    exec = ExecKind::kPooling;
  } else if (suffix == "_adaptive") {
    // The adaptive variants amortize like _af, but the drain quantum and
    // seal/scan thresholds come from the population-aware controller.
    exec = ExecKind::kAmortized;
    sched = ScheduleKind::kAdaptive;
  } else if (suffix == "_latency") {
    // Same amortizing executor, quantum steered by the observed per-op
    // tail (the driver pumps p99.9 through FreeSchedule::on_tail_latency).
    exec = ExecKind::kAmortized;
    sched = ScheduleKind::kLatency;
  }

  ReclaimerBundle bundle;
  // SmrConfig::schedule ("fixed" | "adaptive", EMR_SCHEDULE) overrides
  // the suffix-derived kind inside make_free_schedule.
  bundle.schedule = make_free_schedule(sched, cfg);
  bundle.executor = make_executor(exec, ctx, cfg, bundle.schedule.get());
  bundle.executor->set_home_flush(hf);

  // Token family.
  TokenOptions topt;
  bool is_token = true;
  if (base == "token_naive") {
    topt = {"token_naive", TokenPolicy::kNaive};
  } else if (base == "token_passfirst") {
    topt = {"token_passfirst", TokenPolicy::kPassFirst};
  } else if (base == "token") {
    if (suffix.empty()) {
      topt = {"token", TokenPolicy::kPeriodic};
    } else {
      topt = {suffix == "_af"         ? "token_af"
              : suffix == "_pool"     ? "token_pool"
              : suffix == "_adaptive" ? "token_adaptive"
                                      : "token_latency",
              TokenPolicy::kHandOff};
    }
  } else {
    is_token = false;
  }
  if (is_token) {
    bundle.reclaimer =
        internal::make_token(topt, ctx, cfg, bundle.executor.get());
    return bundle;
  }

  // Pointer-protecting families, each in its own translation unit.
  if (base == "hp") {
    bundle.reclaimer = internal::make_hp(ctx, cfg, bundle.executor.get());
    return bundle;
  }
  if (base == "he" || base == "ibr" || base == "wfe") {
    const EraVariant variant = base == "he"    ? EraVariant::kHazardEras
                               : base == "ibr" ? EraVariant::kInterval
                                               : EraVariant::kWaitFreeEras;
    bundle.reclaimer =
        internal::make_era(variant, ctx, cfg, bundle.executor.get());
    return bundle;
  }
  if (base == "nbr" || base == "nbrplus") {
    bundle.reclaimer = internal::make_nbr(/*plus=*/base == "nbrplus", ctx,
                                          cfg, bundle.executor.get());
    return bundle;
  }

  // Epoch family.
  EbrOptions opt;
  if (base == "none") {
    opt = {"none", /*leak=*/true, /*quiescent=*/true};
  } else if (base == "qsbr") {
    opt = {"qsbr", false, /*quiescent=*/true};
  } else if (base == "rcu") {
    opt = {"rcu", false, /*quiescent=*/true};
  } else if (base == "debra") {
    opt = {"debra", false, false};
  } else {
    throw std::invalid_argument("unknown reclaimer: " + name);
  }
  bundle.reclaimer = internal::make_ebr(opt, ctx, cfg, bundle.executor.get());
  return bundle;
}

const std::vector<std::string>& experiment2_reclaimers() {
  static const std::vector<std::string> kNames = {
      "debra", "token", "qsbr", "rcu", "ibr",
      "nbr",   "nbrplus", "he", "hp",  "wfe"};
  return kNames;
}

const std::vector<std::string>& reclaimer_names() {
  static const std::vector<std::string> kNames = {
      "none", "qsbr", "rcu", "debra", "hp",  "he",
      "ibr",  "wfe",  "nbr", "nbrplus", "token_naive",
      "token_passfirst", "token"};
  return kNames;
}

const std::vector<std::string>& all_factory_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const std::string& base : reclaimer_names()) {
      names.push_back(base);
      if (!takes_suffix(base)) continue;
      names.push_back(base + "_af");
      names.push_back(base + "_pool");
      names.push_back(base + "_adaptive");
      names.push_back(base + "_latency");
      // Home-flush twin of every suffixable form.
      for (const char* sfx : {"", "_af", "_pool", "_adaptive", "_latency"}) {
        names.push_back(base + sfx + "_hf");
      }
    }
    return names;
  }();
  return kNames;
}

}  // namespace emr::smr
