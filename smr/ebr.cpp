// Epoch-based reclamation family: DEBRA (amortized epoch checks,
// per-thread limbo bags), QSBR/RCU (quiescent-state announcement, no
// fences), and the leaking "none" baseline. Reads are plain loads — the
// begin_op/end_op bracket is the protection. The pointer-protecting
// schemes that used to alias this machinery live in their own
// translation units now (smr/hp.cpp, smr/he_ibr_wfe.cpp, smr/nbr.cpp).
//
// Churn: a departing handle clears its announcement (so it can never pin
// the epoch again), seals its bag and drains whatever grace already
// allows; sealed bags that are still too young stay parked in the slot,
// stamped with their seal epoch, and the slot's next owner adopts them
// on registration (flush_all drains vacant slots at teardown). Every bag
// a departing thread leaves behind is marked adopted: when grace later
// admits it, it goes through the executor's on_adopted() path and drains
// at the FreeSchedule quota over the successor's next ops instead of in
// one free burst.
//
// Batching policy: the bag-seal threshold comes from the FreeSchedule
// (fixed = the configured batch, adaptive = prorated by the registered
// population); this TU never reads the config's batching knobs.
#include <algorithm>
#include <atomic>
#include <deque>
#include <vector>

#include "core/timing.hpp"
#include "smr/internal.hpp"

namespace emr::smr::internal {
namespace {

constexpr std::uint64_t kAdvanceEveryOps = 16;

struct SealedBag {
  std::uint64_t epoch = 0;
  bool adopted = false;  // left behind by a departed generation
  std::vector<void*> nodes;
};

struct alignas(64) EbrSlot {
  // (epoch << 1) | active. Inactive threads never block an advance.
  std::atomic<std::uint64_t> announce{0};
  // Owner-private bookkeeping starts on its own cache line: every
  // advance scan reads every slot's announce, and the owner rewrites
  // bag/ops on every retire — sharing the line would bounce it across
  // the whole population once per epoch check.
  alignas(64) std::vector<void*> bag;
  std::deque<SealedBag> sealed;
  std::uint64_t ops = 0;
};
static_assert(alignof(EbrSlot) == 64 && sizeof(EbrSlot) % 64 == 0,
              "EbrSlot must tile cache lines so announce never shares "
              "one with a neighbour slot");

class EbrReclaimer final : public Reclaimer {
 public:
  EbrReclaimer(const EbrOptions& opt, const SmrContext& ctx,
               const SmrConfig& cfg, FreeExecutor* executor)
      : Reclaimer(cfg),
        opt_(opt),
        ctx_(ctx),
        executor_(executor),
        slots_(cfg.slot_capacity()) {
    seal_threshold_.store(compute_seal_threshold(),
                          std::memory_order_relaxed);
  }

  ~EbrReclaimer() override { flush_all(); }

  void flush_all() override {
    for (std::size_t t = 0; t < slots_.size(); ++t) {
      EbrSlot& s = slots_[t];
      seal(s);
      while (!s.sealed.empty()) {
        executor_->on_reclaimable(static_cast<int>(t),
                                  std::move(s.sealed.front().nodes));
        s.sealed.pop_front();
      }
      executor_->quiesce(static_cast<int>(t));
    }
  }

  SmrStats stats() const override {
    SmrStats st;
    st.retired = retired_.load(std::memory_order_relaxed);
    st.freed = executor_->total_freed();
    st.pending = st.retired - st.freed;
    st.epochs_advanced = epochs_advanced_.load(std::memory_order_relaxed);
    return st;
  }

  FreeExecutor& executor() override { return *executor_; }
  const char* name() const override { return opt_.name; }
  const char* family() const override { return "ebr"; }

 protected:
  void begin_op_slot(int slot_idx) override {
    EbrSlot& s = slot(slot_idx);
    if (opt_.quiescent) {
      const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
      s.announce.store((e << 1) | 1, std::memory_order_relaxed);
    } else {
      const std::uint64_t e = epoch_.load(std::memory_order_acquire);
      s.announce.store((e << 1) | 1, std::memory_order_seq_cst);
    }
  }

  void end_op_slot(int slot_idx) override {
    EbrSlot& s = slot(slot_idx);
    s.announce.store(s.announce.load(std::memory_order_relaxed) & ~1ULL,
                     opt_.quiescent ? std::memory_order_relaxed
                                    : std::memory_order_release);
    if (++s.ops % kAdvanceEveryOps == 0) try_advance(slot_idx);
    if (!opt_.leak) collect_safe(slot_idx, s);
    executor_->on_op_end(slot_idx);
  }

  void* protect_slot(int, int, LoadFn load, const void* src) override {
    return load(src);  // epoch-class scheme: reads need no publication
  }

  void retire_slot(int slot_idx, void* p) override {
    EbrSlot& s = slot(slot_idx);
    retired_.fetch_add(1, std::memory_order_relaxed);
    s.bag.push_back(p);
    if (s.bag.size() >= seal_threshold()) {
      seal(s);
      try_advance(slot_idx);
    }
  }

  void* alloc_node_slot(int slot_idx, std::size_t size) override {
    return executor_->alloc_node(slot_idx, size);
  }

  void dealloc_unpublished_slot(int slot_idx, void* p) override {
    ctx_.allocator->deallocate(slot_idx, p);
  }

  /// Generation hand-off: the incoming thread adopts its predecessor's
  /// parked bags, draining the ones whose grace has already elapsed.
  void on_slot_register(int slot_idx) override {
    if (!opt_.leak) collect_safe(slot_idx, slot(slot_idx));
  }

  void on_population_change(std::size_t) override {
    seal_threshold_.store(compute_seal_threshold(),
                          std::memory_order_relaxed);
  }

  /// Departure: the announcement drops (a vacated slot can never hold
  /// an epoch back), the open bag is sealed, and every parked bag is
  /// marked adopted — whenever grace admits it, it drains at the
  /// schedule's quota over the successor's ops, never in one burst.
  void on_slot_deregister(int slot_idx) override {
    EbrSlot& s = slot(slot_idx);
    s.announce.store(0, std::memory_order_release);
    seal(s);
    for (SealedBag& b : s.sealed) b.adopted = true;
    if (!opt_.leak) {
      try_advance(slot_idx);
      collect_safe(slot_idx, s);
    }
  }

 private:
  EbrSlot& slot(int slot_idx) {
    const std::size_t i = static_cast<std::size_t>(slot_idx);
    return slots_[i < slots_.size() ? i : 0];
  }

  /// Bag size that seals the open bag. The policy answer only moves on
  /// population beats, so it is cached out of the per-retire path and
  /// refreshed by on_population_change (the adaptive schedule's only
  /// input besides the config is the registered population).
  std::size_t seal_threshold() const {
    return seal_threshold_.load(std::memory_order_relaxed);
  }

  std::size_t compute_seal_threshold() const {
    return std::max<std::size_t>(
        executor_->schedule().scan_threshold(active_slots()), 1);
  }

  void seal(EbrSlot& s) {
    if (s.bag.empty()) return;
    const std::size_t sealed_size = s.bag.size();
    s.sealed.push_back(SealedBag{epoch_.load(std::memory_order_relaxed),
                                 /*adopted=*/false, std::move(s.bag)});
    s.bag = {};
    s.bag.reserve(sealed_size);
  }

  /// Hands every bag two epochs behind the global epoch to the executor
  /// (adopted bags through the amortizing adoption path).
  void collect_safe(int slot_idx, EbrSlot& s) {
    if (s.sealed.empty()) return;
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    while (!s.sealed.empty() && s.sealed.front().epoch + 2 <= e) {
      executor_->hand_over(slot_idx, s.sealed.front().adopted,
                           std::move(s.sealed.front().nodes));
      s.sealed.pop_front();
    }
  }

  void try_advance(int slot_idx) {
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    for (const EbrSlot& s : slots_) {
      const std::uint64_t a = s.announce.load(std::memory_order_acquire);
      if ((a & 1) != 0 && (a >> 1) != e) return;  // active in an old epoch
    }
    std::uint64_t expected = e;
    if (epoch_.compare_exchange_strong(expected, e + 1,
                                       std::memory_order_acq_rel)) {
      epochs_advanced_.fetch_add(1, std::memory_order_relaxed);
      record_progress_beat(ctx_, slot_idx, e + 1, stats().pending);
    }
  }

  EbrOptions opt_;
  SmrContext ctx_;
  FreeExecutor* executor_;
  std::vector<EbrSlot> slots_;
  std::atomic<std::size_t> seal_threshold_{1};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> epochs_advanced_{0};
};

}  // namespace

std::unique_ptr<Reclaimer> make_ebr(const EbrOptions& opt,
                                    const SmrContext& ctx,
                                    const SmrConfig& cfg,
                                    FreeExecutor* executor) {
  return std::make_unique<EbrReclaimer>(opt, ctx, cfg, executor);
}

}  // namespace emr::smr::internal
