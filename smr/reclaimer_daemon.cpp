#include "smr/reclaimer_daemon.hpp"

#include <chrono>
#include <stdexcept>

#include "core/affinity.hpp"

namespace emr::smr {

namespace {

/// Below this many completed ops per millisecond across all lanes the
/// system counts as quiet — the optimistic level's cue that draining
/// now costs the workers nothing.
constexpr std::uint64_t kQuietOpsPerMs = 16;

}  // namespace

DaemonLevel daemon_level_from_name(const std::string& name) {
  if (name == "off") return DaemonLevel::kOff;
  if (name == "optimistic") return DaemonLevel::kOptimistic;
  if (name == "aggressive") return DaemonLevel::kAggressive;
  throw std::invalid_argument(
      "unknown reclaimer-daemon level \"" + name +
      "\" (EMR_RECLAIMER_DAEMON); valid levels: off optimistic "
      "aggressive");
}

const char* daemon_level_name(DaemonLevel level) {
  switch (level) {
    case DaemonLevel::kOff:
      return "off";
    case DaemonLevel::kOptimistic:
      return "optimistic";
    case DaemonLevel::kAggressive:
      return "aggressive";
  }
  return "off";
}

ReclaimerDaemon::ReclaimerDaemon(Reclaimer& r, DaemonLevel level,
                                 int period_ms)
    : r_(r), level_(level), period_ms_(period_ms < 1 ? 1 : period_ms) {}

ReclaimerDaemon::~ReclaimerDaemon() { stop(); }

void ReclaimerDaemon::start() {
  if (level_ == DaemonLevel::kOff || running_.load()) return;
  if (!r_.executor().daemon_hooked()) {
    throw std::logic_error(
        "ReclaimerDaemon::start: the executor was not armed with "
        "set_daemon_hooked(true) — arm it before any thread operates "
        "on the bundle");
  }
  handle_ = r_.register_thread();
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void ReclaimerDaemon::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  handle_.release();
  running_.store(false, std::memory_order_release);
}

ReclaimerDaemon::Stats ReclaimerDaemon::stats() const {
  Stats s;
  s.ticks = ticks_.load(std::memory_order_relaxed);
  s.quiet_ticks = quiet_ticks_.load(std::memory_order_relaxed);
  s.pressure_ticks = pressure_ticks_.load(std::memory_order_relaxed);
  s.drained = drained_.load(std::memory_order_relaxed);
  return s;
}

void ReclaimerDaemon::loop() {
  if (pin_cpu_ >= 0) affinity::pin_current_thread(pin_cpu_);
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(period_ms_));
    tick();
  }
}

void ReclaimerDaemon::tick() {
  FreeExecutor& ex = r_.executor();
  FreeSchedule& sched = ex.schedule();
  const int lanes = static_cast<int>(ex.lane_count());

  std::uint64_t ops = 0;
  std::uint64_t backlog = 0;
  for (int lane = 0; lane < lanes; ++lane) {
    const LaneStats ls = ex.lane_stats(lane);
    ops += ls.ops;
    backlog += ls.backlog;
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t ops_delta = ops - last_ops_;
  last_ops_ = ops;
  const bool quiet =
      ops_delta < kQuietOpsPerMs * static_cast<std::uint64_t>(period_ms_);
  // Pressure: the executors hold more than two sealed bags' worth for
  // the live population — op-driven draining has fallen behind.
  std::size_t population = r_.active_slots();
  if (population == 0) population = 1;
  const bool pressure = backlog >= 2 * sched.scan_threshold(population);
  if (quiet) quiet_ticks_.fetch_add(1, std::memory_order_relaxed);
  if (pressure) pressure_ticks_.fetch_add(1, std::memory_order_relaxed);

  const bool act = level_ == DaemonLevel::kAggressive || quiet || pressure;
  if (!act || backlog == 0) return;

  const int own_lane = handle_.slot();
  // The sweep covers every lane, vacant ones included, and ls.backlog
  // folds in the home-flush stash — so a stash fed after its owner
  // departed (or while the owner idles between service bursts) is
  // adopted here rather than stranding until re-registration.
  for (int lane = 0; lane < lanes; ++lane) {
    if (stop_.load(std::memory_order_acquire)) return;
    const LaneStats ls = ex.lane_stats(lane);
    if (ls.backlog == 0) continue;
    const std::size_t quota = sched.daemon_quota(ls, pressure);
    drained_.fetch_add(ex.daemon_drain(lane, quota, own_lane),
                       std::memory_order_relaxed);
  }
}

}  // namespace emr::smr
