// Token-EBR family (the paper's section 5 progression). A single token
// circulates among the *registered* slots; holding it proves every other
// thread has quiesced since the previous visit, so a bag sealed at pass
// p is safe once enough further passes have happened for two full
// rotations. The four policies differ only in the free schedule the
// holder runs:
//
//   token_naive     - the holder frees EVERY thread's safe bags before
//                     passing: frees serialize on one thread, rotations
//                     stall, and garbage piles up without bound (Fig 6).
//   token_passfirst - pass first, then free your own safe bags: frees are
//                     concurrent again, but still arbitrarily large
//                     batches (Fig 7).
//   token           - pass first, free at most one bag per receipt: the
//                     periodic variant (Fig 8).
//   token_af        - pass first, hand safe bags to the amortized
//                     executor: per-op drains, no pile-up (Fig 9).
//
// Churn: pass_token routes to the next *active* slot, so a vacated slot
// is skipped instead of stalling the rotation forever; if the token is
// parked on a slot whose owner departed (or the departing holder loses
// the hand-off race), any active thread's next end_op adopts it with a
// CAS. A departing handle seals its bag, drains what is already safe and
// parks the rest for the slot's successor (or flush_all); every bag the
// departing thread leaves behind is marked adopted and later drains
// through the executor's on_adopted() path — at the FreeSchedule quota
// per op — instead of in one burst.
//
// Batching policy: the bag-seal threshold comes from the FreeSchedule
// (fixed = the configured batch, adaptive = prorated by the registered
// population); this TU never reads the config's batching knobs.
#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "core/timing.hpp"
#include "smr/internal.hpp"

namespace emr::smr::internal {
namespace {

struct SealedBag {
  std::uint64_t pass = 0;
  bool adopted = false;  // left behind by a departed generation
  std::vector<void*> nodes;
};

struct alignas(64) TokenSlot {
  std::mutex mu;  // naive's holder drains other threads' queues
  std::vector<void*> bag;
  std::deque<SealedBag> sealed;
};

class TokenReclaimer final : public Reclaimer {
 public:
  TokenReclaimer(const TokenOptions& opt, const SmrContext& ctx,
                 const SmrConfig& cfg, FreeExecutor* executor)
      : Reclaimer(cfg),
        opt_(opt),
        ctx_(ctx),
        executor_(executor),
        nlanes_(static_cast<int>(cfg.slot_capacity())),
        slots_(cfg.slot_capacity()) {
    seal_threshold_.store(compute_seal_threshold(),
                          std::memory_order_relaxed);
  }

  ~TokenReclaimer() override { flush_all(); }

  void flush_all() override {
    for (std::size_t t = 0; t < slots_.size(); ++t) {
      TokenSlot& s = slots_[t];
      std::lock_guard<std::mutex> lock(s.mu);
      seal(s);
      while (!s.sealed.empty()) {
        executor_->on_reclaimable(static_cast<int>(t),
                                  std::move(s.sealed.front().nodes));
        s.sealed.pop_front();
      }
      executor_->quiesce(static_cast<int>(t));
    }
  }

  SmrStats stats() const override {
    SmrStats st;
    st.retired = retired_.load(std::memory_order_relaxed);
    st.freed = executor_->total_freed();
    st.pending = st.retired - st.freed;
    st.epochs_advanced = passes_.load(std::memory_order_relaxed) /
                         static_cast<std::uint64_t>(nlanes_);
    return st;
  }

  FreeExecutor& executor() override { return *executor_; }
  const char* name() const override { return opt_.name; }
  const char* family() const override { return "token"; }

 protected:
  void begin_op_slot(int) override {}

  void end_op_slot(int slot_idx) override {
    std::uint64_t word = holder_.load(std::memory_order_acquire);
    if (holder_slot(word) == slot_idx) {
      on_token(slot_idx, word);
    } else if (!slot_active(holder_slot(word))) {
      // The token is parked on a vacated slot (its owner deregistered
      // after the hand-off landed, or the departing holder found nobody
      // active). Adopt it so the rotation never stalls. Every holder
      // transition bumps the word's version through a CAS, so a stale
      // observation — the parked slot re-registered and its new owner
      // took the fast path above — loses here rather than minting a
      // second token.
      const std::uint64_t adopted = holder_word(word, slot_idx);
      if (holder_.compare_exchange_strong(word, adopted,
                                          std::memory_order_acq_rel)) {
        on_token(slot_idx, adopted);
      }
    }
    executor_->on_op_end(slot_idx);
  }

  void* protect_slot(int, int, LoadFn load, const void* src) override {
    return load(src);  // epoch-class scheme: reads need no publication
  }

  void retire_slot(int slot_idx, void* p) override {
    TokenSlot& s = slot(slot_idx);
    retired_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t threshold = seal_threshold();
    std::lock_guard<std::mutex> lock(s.mu);
    s.bag.push_back(p);
    if (s.bag.size() >= threshold) seal(s);
  }

  void* alloc_node_slot(int slot_idx, std::size_t size) override {
    return executor_->alloc_node(slot_idx, size);
  }

  void dealloc_unpublished_slot(int slot_idx, void* p) override {
    ctx_.allocator->deallocate(slot_idx, p);
  }

  /// Departure: seal, mark every parked bag adopted (so whenever grace
  /// admits it, it drains at the schedule's quota over the successor's
  /// ops), drain what's already safe through the same amortizing path,
  /// and hand the token onward if this slot holds it (a racing adopter
  /// may win the CAS instead — either way it moves). The hand-off is a
  /// transfer, not a quiesce: passes_ stays put.
  void on_population_change(std::size_t) override {
    seal_threshold_.store(compute_seal_threshold(),
                          std::memory_order_relaxed);
  }

  void on_slot_deregister(int slot_idx) override {
    TokenSlot& s = slot(slot_idx);
    {
      std::lock_guard<std::mutex> lock(s.mu);
      seal(s);
      for (SealedBag& b : s.sealed) b.adopted = true;
    }
    const std::uint64_t pass_now = passes_.load(std::memory_order_relaxed);
    for (SealedBag& b : take_safe(s, pass_now, 0)) {
      hand_over(slot_idx, std::move(b));
    }
    std::uint64_t word = holder_.load(std::memory_order_acquire);
    const int next = next_active(slot_idx);
    if (holder_slot(word) == slot_idx && next != slot_idx) {
      holder_.compare_exchange_strong(word, holder_word(word, next),
                                      std::memory_order_acq_rel);
    }
  }

 private:
  TokenSlot& slot(int slot_idx) {
    const std::size_t i = static_cast<std::size_t>(slot_idx);
    return slots_[i < slots_.size() ? i : 0];
  }

  /// Bag size that seals the open bag. The policy answer only moves on
  /// population beats, so it is cached out of the per-retire path and
  /// refreshed by on_population_change.
  std::size_t seal_threshold() const {
    return seal_threshold_.load(std::memory_order_relaxed);
  }

  std::size_t compute_seal_threshold() const {
    return std::max<std::size_t>(
        executor_->schedule().scan_threshold(active_slots()), 1);
  }

  void seal(TokenSlot& s) {
    if (s.bag.empty()) return;
    const std::size_t sealed_size = s.bag.size();
    s.sealed.push_back(SealedBag{passes_.load(std::memory_order_relaxed),
                                 /*adopted=*/false, std::move(s.bag)});
    s.bag = {};
    s.bag.reserve(sealed_size);
  }

  /// Routes one safe bag to the executor: adopted bags through the
  /// amortizing adoption path, fresh ones straight to the schedule.
  void hand_over(int slot_idx, SealedBag&& b) {
    executor_->hand_over(slot_idx, b.adopted, std::move(b.nodes));
  }

  /// A bag is safe once 2 * slot_capacity passes have elapsed since its
  /// seal: the ring visits every active slot at least twice in that
  /// window (each pass goes to the next active slot in ring order), a
  /// pass is a quiesce point, and threads registered after the seal are
  /// fresh — they cannot reach a node that was already unlinked.
  bool safe(const SealedBag& b, std::uint64_t pass_now) const {
    return b.pass + 2 * static_cast<std::uint64_t>(nlanes_) <= pass_now;
  }

  /// Next registered slot after `from` in ring order; `from` itself when
  /// no other slot is active (the token then parks until an adopter).
  int next_active(int from) const {
    for (int i = 1; i <= nlanes_; ++i) {
      const int c = (from + i) % nlanes_;
      if (slot_active(c)) return c;
    }
    return from;
  }

  // The holder word packs (version << 32) | slot; every transition —
  // pass, adoption, departure hand-off — bumps the version through one
  // CAS, so exactly one of any set of racing transfers wins and
  // passes_ counts each genuine hand-off once. safe()'s grace bound
  // rests on that count being honest.
  static int holder_slot(std::uint64_t word) {
    return static_cast<int>(word & 0xffffffffULL);
  }
  static std::uint64_t holder_word(std::uint64_t prev, int slot) {
    const std::uint64_t version = (prev >> 32) + 1;
    return (version << 32) | static_cast<std::uint64_t>(slot);
  }

  /// Hands the token to the next active slot. `word` is the holder
  /// value this thread took the token under; a failed CAS means the
  /// token was concurrently adopted away (stale observation) and this
  /// thread must not count a pass.
  void pass_token(int slot_idx, std::uint64_t word) {
    if (!holder_.compare_exchange_strong(
            word, holder_word(word, next_active(slot_idx)),
            std::memory_order_acq_rel)) {
      return;
    }
    const std::uint64_t p =
        passes_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (p % static_cast<std::uint64_t>(nlanes_) == 0) {
      const std::uint64_t rotation = p / static_cast<std::uint64_t>(nlanes_);
      record_progress_beat(ctx_, slot_idx, rotation, stats().pending);
    }
  }

  /// Pops up to `max_bags` safe bags from `s` (0 = all).
  std::vector<SealedBag> take_safe(TokenSlot& s, std::uint64_t pass_now,
                                   std::size_t max_bags) {
    std::vector<SealedBag> out;
    std::lock_guard<std::mutex> lock(s.mu);
    while (!s.sealed.empty() && safe(s.sealed.front(), pass_now) &&
           (max_bags == 0 || out.size() < max_bags)) {
      out.push_back(std::move(s.sealed.front()));
      s.sealed.pop_front();
    }
    return out;
  }

  /// Runs the holder's policy. Frees stay safe even under a stale
  /// token observation (pass_token's CAS then simply fails): take_safe
  /// admits only bags aged past the passes_-counted grace bound, which
  /// never depends on who currently holds the token.
  void on_token(int slot_idx, std::uint64_t word) {
    const std::uint64_t pass_now = passes_.load(std::memory_order_relaxed);
    switch (opt_.policy) {
      case TokenPolicy::kNaive:
        // Serialize: the holder reclaims for everyone, then passes.
        for (TokenSlot& s : slots_) {
          for (SealedBag& b : take_safe(s, pass_now, 0)) {
            hand_over(slot_idx, std::move(b));
          }
        }
        pass_token(slot_idx, word);
        break;
      case TokenPolicy::kPassFirst:
        pass_token(slot_idx, word);
        for (SealedBag& b : take_safe(slot(slot_idx), pass_now, 0)) {
          hand_over(slot_idx, std::move(b));
        }
        break;
      case TokenPolicy::kPeriodic:
        pass_token(slot_idx, word);
        for (SealedBag& b : take_safe(slot(slot_idx), pass_now, 1)) {
          hand_over(slot_idx, std::move(b));
        }
        break;
      case TokenPolicy::kHandOff:
        pass_token(slot_idx, word);
        for (SealedBag& b : take_safe(slot(slot_idx), pass_now, 0)) {
          hand_over(slot_idx, std::move(b));
        }
        break;
    }
  }

  TokenOptions opt_;
  SmrContext ctx_;
  FreeExecutor* executor_;
  int nlanes_;
  std::vector<TokenSlot> slots_;
  std::atomic<std::size_t> seal_threshold_{1};
  // (version << 32) | slot — see holder_word(). Starts at slot 0,
  // version 0.
  std::atomic<std::uint64_t> holder_{0};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace

std::unique_ptr<Reclaimer> make_token(const TokenOptions& opt,
                                      const SmrContext& ctx,
                                      const SmrConfig& cfg,
                                      FreeExecutor* executor) {
  return std::make_unique<TokenReclaimer>(opt, ctx, cfg, executor);
}

}  // namespace emr::smr::internal
