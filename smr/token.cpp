// Token-EBR family (the paper's section 5 progression). A single token
// circulates; holding it proves every other thread has quiesced since the
// previous visit, so a bag sealed at pass p is safe once the token has
// made two further full rotations. The four policies differ only in the
// free schedule the holder runs:
//
//   token_naive     - the holder frees EVERY thread's safe bags before
//                     passing: frees serialize on one thread, rotations
//                     stall, and garbage piles up without bound (Fig 6).
//   token_passfirst - pass first, then free your own safe bags: frees are
//                     concurrent again, but still arbitrarily large
//                     batches (Fig 7).
//   token           - pass first, free at most one bag per receipt: the
//                     periodic variant (Fig 8).
//   token_af        - pass first, hand safe bags to the amortized
//                     executor: per-op drains, no pile-up (Fig 9).
#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "core/timing.hpp"
#include "smr/internal.hpp"

namespace emr::smr::internal {
namespace {

struct SealedBag {
  std::uint64_t pass = 0;
  std::vector<void*> nodes;
};

struct alignas(64) TokenSlot {
  std::mutex mu;  // naive's holder drains other threads' queues
  std::vector<void*> bag;
  std::deque<SealedBag> sealed;
};

class TokenReclaimer final : public Reclaimer {
 public:
  TokenReclaimer(const TokenOptions& opt, const SmrContext& ctx,
                 const SmrConfig& cfg, FreeExecutor* executor)
      : opt_(opt),
        ctx_(ctx),
        cfg_(cfg),
        executor_(executor),
        nthreads_(std::max(cfg.num_threads, 1)),
        slots_(static_cast<std::size_t>(nthreads_)) {}

  ~TokenReclaimer() override { flush_all(); }

  void begin_op(int) override {}

  void end_op(int tid) override {
    if (holder_.load(std::memory_order_acquire) == tid) on_token(tid);
    executor_->on_op_end(tid);
  }

  void* protect(int, int, LoadFn load, const void* src) override {
    return load(src);  // epoch-class scheme: reads need no publication
  }

  void retire(int tid, void* p) override {
    TokenSlot& s = slot(tid);
    retired_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.mu);
    s.bag.push_back(p);
    if (s.bag.size() >= cfg_.batch_size) seal(s);
  }

  void* alloc_node(int tid, std::size_t size) override {
    return executor_->alloc_node(tid, size);
  }

  void dealloc_unpublished(int tid, void* p) override {
    ctx_.allocator->deallocate(tid, p);
  }

  void flush_all() override {
    for (std::size_t t = 0; t < slots_.size(); ++t) {
      TokenSlot& s = slots_[t];
      std::lock_guard<std::mutex> lock(s.mu);
      seal(s);
      while (!s.sealed.empty()) {
        executor_->on_reclaimable(static_cast<int>(t),
                                  std::move(s.sealed.front().nodes));
        s.sealed.pop_front();
      }
      executor_->quiesce(static_cast<int>(t));
    }
  }

  SmrStats stats() const override {
    SmrStats st;
    st.retired = retired_.load(std::memory_order_relaxed);
    st.freed = executor_->total_freed();
    st.pending = st.retired - st.freed;
    st.epochs_advanced = passes_.load(std::memory_order_relaxed) /
                         static_cast<std::uint64_t>(nthreads_);
    return st;
  }

  FreeExecutor& executor() override { return *executor_; }
  const char* name() const override { return opt_.name; }
  const char* family() const override { return "token"; }

 private:
  TokenSlot& slot(int tid) {
    const std::size_t i = static_cast<std::size_t>(tid);
    return slots_[i < slots_.size() ? i : 0];
  }

  void seal(TokenSlot& s) {
    if (s.bag.empty()) return;
    s.sealed.push_back(SealedBag{passes_.load(std::memory_order_relaxed),
                                 std::move(s.bag)});
    s.bag = {};
    s.bag.reserve(cfg_.batch_size);
  }

  /// A bag is safe once the token has fully rotated twice past its seal.
  bool safe(const SealedBag& b, std::uint64_t pass_now) const {
    return b.pass + 2 * static_cast<std::uint64_t>(nthreads_) <= pass_now;
  }

  void pass_token(int tid) {
    const std::uint64_t p =
        passes_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (p % static_cast<std::uint64_t>(nthreads_) == 0) {
      const std::uint64_t rotation =
          p / static_cast<std::uint64_t>(nthreads_);
      record_progress_beat(ctx_, tid, rotation, stats().pending);
    }
    holder_.store((tid + 1) % nthreads_, std::memory_order_release);
  }

  /// Pops up to `max_bags` safe bags from `s` (0 = all).
  std::vector<SealedBag> take_safe(TokenSlot& s, std::uint64_t pass_now,
                                   std::size_t max_bags) {
    std::vector<SealedBag> out;
    std::lock_guard<std::mutex> lock(s.mu);
    while (!s.sealed.empty() && safe(s.sealed.front(), pass_now) &&
           (max_bags == 0 || out.size() < max_bags)) {
      out.push_back(std::move(s.sealed.front()));
      s.sealed.pop_front();
    }
    return out;
  }

  void on_token(int tid) {
    const std::uint64_t pass_now = passes_.load(std::memory_order_relaxed);
    switch (opt_.policy) {
      case TokenPolicy::kNaive:
        // Serialize: the holder reclaims for everyone, then passes.
        for (TokenSlot& s : slots_) {
          for (SealedBag& b : take_safe(s, pass_now, 0)) {
            executor_->on_reclaimable(tid, std::move(b.nodes));
          }
        }
        pass_token(tid);
        break;
      case TokenPolicy::kPassFirst:
        pass_token(tid);
        for (SealedBag& b : take_safe(slot(tid), pass_now, 0)) {
          executor_->on_reclaimable(tid, std::move(b.nodes));
        }
        break;
      case TokenPolicy::kPeriodic:
        pass_token(tid);
        for (SealedBag& b : take_safe(slot(tid), pass_now, 1)) {
          executor_->on_reclaimable(tid, std::move(b.nodes));
        }
        break;
      case TokenPolicy::kHandOff:
        pass_token(tid);
        for (SealedBag& b : take_safe(slot(tid), pass_now, 0)) {
          executor_->on_reclaimable(tid, std::move(b.nodes));
        }
        break;
    }
  }

  TokenOptions opt_;
  SmrContext ctx_;
  SmrConfig cfg_;
  FreeExecutor* executor_;
  int nthreads_;
  std::vector<TokenSlot> slots_;
  std::atomic<int> holder_{0};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace

std::unique_ptr<Reclaimer> make_token(const TokenOptions& opt,
                                      const SmrContext& ctx,
                                      const SmrConfig& cfg,
                                      FreeExecutor* executor) {
  return std::make_unique<TokenReclaimer>(opt, ctx, cfg, executor);
}

}  // namespace emr::smr::internal
