#include "smr/free_executor.hpp"

#include <algorithm>

#include "core/timing.hpp"
#include "smr/pooling_executor.hpp"

namespace emr::smr {

FreeExecutor::FreeExecutor(const SmrContext& ctx, const SmrConfig& cfg)
    : ctx_(ctx), cfg_(cfg) {}

void* FreeExecutor::alloc_node(int lane, std::size_t size) {
  // Every node must have room for the reclaimer-owned intrusive header,
  // and the header must never be indeterminate: schemes that don't stamp
  // birth eras would otherwise hand make_node() uninitialized bytes.
  void* p =
      ctx_.allocator->allocate(lane, std::max(size, sizeof(NodeHeader)));
  static_cast<NodeHeader*>(p)->birth_era = 0;
  return p;
}

void FreeExecutor::timed_free(int lane, void* p) {
  Timeline* tl = ctx_.timeline;
  if (tl != nullptr && tl->enabled()) {
    const std::uint64_t t0 = now_ns();
    ctx_.allocator->deallocate(lane, p);
    tl->record(lane, EventKind::kFreeCall, t0, now_ns());
  } else {
    ctx_.allocator->deallocate(lane, p);
  }
  freed_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- batch

void BatchFreeExecutor::on_reclaimable(int lane, std::vector<void*>&& bag) {
  if (bag.empty()) return;
  Timeline* tl = ctx_.timeline;
  const bool instrumented = tl != nullptr && tl->enabled();
  const std::uint64_t t0 = instrumented ? now_ns() : 0;
  for (void* p : bag) timed_free(lane, p);
  if (instrumented) tl->record(lane, EventKind::kBatchFree, t0, now_ns());
}

// ------------------------------------------------------------ amortized

AmortizedFreeExecutor::AmortizedFreeExecutor(const SmrContext& ctx,
                                             const SmrConfig& cfg)
    : FreeExecutor(ctx, cfg), freeable_(cfg.slot_capacity()) {}

AmortizedFreeExecutor::Freeable& AmortizedFreeExecutor::lane(int lane_idx) {
  const std::size_t i = static_cast<std::size_t>(lane_idx);
  return freeable_[i < freeable_.size() ? i : 0];
}

void AmortizedFreeExecutor::on_reclaimable(int lane_idx,
                                           std::vector<void*>&& bag) {
  Freeable& f = lane(lane_idx);
  for (void* p : bag) f.nodes.push_back(p);
  f.size.store(f.nodes.size(), std::memory_order_relaxed);
}

void AmortizedFreeExecutor::on_op_end(int lane_idx) {
  Freeable& f = lane(lane_idx);
  std::size_t n = std::min<std::size_t>(cfg_.af_drain_per_op,
                                        f.nodes.size());
  while (n-- > 0) {
    timed_free(lane_idx, f.nodes.front());
    f.nodes.pop_front();
  }
  f.size.store(f.nodes.size(), std::memory_order_relaxed);
}

void AmortizedFreeExecutor::quiesce(int lane_idx) {
  Freeable& f = lane(lane_idx);
  while (!f.nodes.empty()) {
    timed_free(lane_idx, f.nodes.front());
    f.nodes.pop_front();
  }
  f.size.store(0, std::memory_order_relaxed);
}

std::uint64_t AmortizedFreeExecutor::backlog() const {
  std::uint64_t total = 0;
  for (const Freeable& f : freeable_) {
    total += f.size.load(std::memory_order_relaxed);
  }
  return total;
}

// -------------------------------------------------------------- pooling

PoolingFreeExecutor::PoolingFreeExecutor(const SmrContext& ctx,
                                         const SmrConfig& cfg)
    : AmortizedFreeExecutor(ctx, cfg),
      pool_cap_(std::max<std::size_t>(cfg.batch_size * 4, 1024)) {}

void* PoolingFreeExecutor::alloc_node(int lane_idx, std::size_t size) {
  // Trials use one node size; recycle only for that size and fall back to
  // the allocator for anything else.
  std::size_t expected = 0;
  common_size_.compare_exchange_strong(expected, size,
                                       std::memory_order_relaxed);
  Freeable& f = lane(lane_idx);
  if (size == common_size_.load(std::memory_order_relaxed) &&
      !f.nodes.empty()) {
    void* p = f.nodes.front();
    f.nodes.pop_front();
    f.size.store(f.nodes.size(), std::memory_order_relaxed);
    pooled_allocs_.fetch_add(1, std::memory_order_relaxed);
    freed_.fetch_add(1, std::memory_order_relaxed);  // left limbo via reuse
    return p;
  }
  void* p =
      ctx_.allocator->allocate(lane_idx, std::max(size, sizeof(NodeHeader)));
  static_cast<NodeHeader*>(p)->birth_era = 0;
  return p;
}

void PoolingFreeExecutor::on_op_end(int lane_idx) {
  Freeable& f = lane(lane_idx);
  std::size_t n = cfg_.af_drain_per_op;
  while (n-- > 0 && f.nodes.size() > pool_cap_) {
    timed_free(lane_idx, f.nodes.front());
    f.nodes.pop_front();
  }
  f.size.store(f.nodes.size(), std::memory_order_relaxed);
}

}  // namespace emr::smr
