#include "smr/free_executor.hpp"

#include <algorithm>

#include "core/timing.hpp"
#include "smr/pooling_executor.hpp"

namespace emr::smr {

FreeExecutor::FreeExecutor(const SmrContext& ctx, const SmrConfig& cfg,
                           FreeSchedule* schedule)
    : ctx_(ctx),
      schedule_(schedule),
      stats_hungry_(schedule->consumes_lane_stats()),
      tenants_(cfg.tenants < 1 ? 1 : cfg.tenants),
      multi_tenant_(tenants_ > 1),
      lanes_(cfg.slot_capacity()),
      stash_(cfg.slot_capacity()) {
  if (multi_tenant_) {
    // Value-initialized atomic grids: every counter starts at zero.
    const std::size_t cells =
        lanes_.size() * static_cast<std::size_t>(tenants_);
    tenant_retired_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(cells);
    tenant_enqueued_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(cells);
    tenant_drained_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(cells);
  }
}

FreeExecutor::LaneState& FreeExecutor::lane_state(int lane) {
  const std::size_t i = static_cast<std::size_t>(lane);
  return lanes_[i < lanes_.size() ? i : 0];
}

const FreeExecutor::LaneState& FreeExecutor::lane_state(int lane) const {
  const std::size_t i = static_cast<std::size_t>(lane);
  return lanes_[i < lanes_.size() ? i : 0];
}

void* FreeExecutor::alloc_node(int lane, std::size_t size) {
  // Every node must have room for the reclaimer-owned intrusive header,
  // and the header must never be indeterminate: schemes that don't stamp
  // birth eras would otherwise hand make_node() uninitialized bytes.
  void* p =
      ctx_.allocator->allocate(lane, std::max(size, sizeof(NodeHeader)));
  static_cast<NodeHeader*>(p)->birth_era = 0;
  return p;
}

void FreeExecutor::timed_free_as(int stats_lane, int alloc_lane, void* p) {
  Timeline* tl = ctx_.timeline;
  if (tl != nullptr && tl->enabled()) {
    const std::uint64_t t0 = now_ns();
    ctx_.allocator->deallocate(alloc_lane, p);
    tl->record(alloc_lane, EventKind::kFreeCall, t0, now_ns());
  } else {
    ctx_.allocator->deallocate(alloc_lane, p);
  }
  freed_.fetch_add(1, std::memory_order_relaxed);
  lane_state(stats_lane).drained.fetch_add(1, std::memory_order_relaxed);
}

void FreeExecutor::timed_hint_free(int stats_lane, int alloc_lane, void* p) {
  Timeline* tl = ctx_.timeline;
  if (tl != nullptr && tl->enabled()) {
    const std::uint64_t t0 = now_ns();
    ctx_.allocator->free_local_hint(alloc_lane, p);
    tl->record(alloc_lane, EventKind::kFreeCall, t0, now_ns());
  } else {
    ctx_.allocator->free_local_hint(alloc_lane, p);
  }
  freed_.fetch_add(1, std::memory_order_relaxed);
  lane_state(stats_lane).drained.fetch_add(1, std::memory_order_relaxed);
}

void FreeExecutor::routed_free(int stats_lane, int alloc_lane, void* p) {
  if (home_flush_ && !teardown_.load(std::memory_order_relaxed)) {
    const int home = ctx_.allocator->home_lane(p);
    if (home >= 0 && home != alloc_lane &&
        static_cast<std::size_t>(home) < stash_.size()) {
      stash_push(stats_lane, home, p);
      return;
    }
  }
  timed_free_as(stats_lane, alloc_lane, p);
}

void FreeExecutor::stash_push(int stats_lane, int home, void* p) {
  lane_state(stats_lane).stashed.fetch_add(1, std::memory_order_relaxed);
  RemoteStash& s = stash_[static_cast<std::size_t>(home)];
  // Gauge up *before* the node publishes: a drainer can only decrement
  // after its acquire-exchange observed this push's release-CAS, which
  // orders the increment first — the gauge never reads negative.
  s.backlog.fetch_add(1, std::memory_order_relaxed);
  // The node is dead (ownership transferred at hand-over), so its first
  // 8 bytes — the NodeHeader the reclaimer owns — carry the intrusive
  // link. Plain store is race-free: publication happens via the head.
  void* old = s.head.load(std::memory_order_relaxed);
  do {
    *static_cast<void**>(p) = old;
  } while (!s.head.compare_exchange_weak(old, p, std::memory_order_release,
                                         std::memory_order_relaxed));
}

std::size_t FreeExecutor::drain_stash(int lane, std::size_t quota,
                                      int alloc_lane) {
  const std::size_t i = static_cast<std::size_t>(lane);
  RemoteStash& s = stash_[i < stash_.size() ? i : 0];
  if (quota == 0 || s.backlog.load(std::memory_order_relaxed) == 0) {
    return 0;
  }
  LaneState& l = lane_state(lane);
  const std::uint64_t t0 = stats_hungry_ ? now_ns() : 0;
  std::size_t n = 0;
  {
    LaneLock lock(l, daemon_hooked_);
    while (n < quota) {
      if (l.stash_chain == nullptr) {
        // Grab the whole Treiber stack in one exchange; the remainder
        // over quota waits in the private chain for the next flush.
        l.stash_chain = s.head.exchange(nullptr, std::memory_order_acquire);
        if (l.stash_chain == nullptr) break;
      }
      void* p = l.stash_chain;
      l.stash_chain = *static_cast<void**>(p);
      timed_hint_free(lane, alloc_lane, p);
      s.flushed.fetch_add(1, std::memory_order_relaxed);
      s.backlog.fetch_sub(1, std::memory_order_relaxed);
      ++n;
    }
  }
  if (stats_hungry_) {
    l.drain_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    l.timed_drained.fetch_add(n, std::memory_order_relaxed);
  }
  return n;
}

void FreeExecutor::maybe_flush_stash(int lane) {
  if (!home_flush_) return;
  if (teardown_.load(std::memory_order_relaxed)) {
    // A mid-run flush_all latched routing off; an op ending proves the
    // bundle is live again, so re-arm.
    teardown_.store(false, std::memory_order_relaxed);
  }
  const std::size_t i = static_cast<std::size_t>(lane);
  if (stash_[i < stash_.size() ? i : 0].backlog.load(
          std::memory_order_relaxed) == 0) {
    return;
  }
  const std::size_t quota =
      stats_hungry_ ? schedule_->flush_quota(lane_stats(lane))
                    : schedule_->flush_quota(LaneStats{});
  drain_stash(lane, quota, lane);
}

void FreeExecutor::on_lane_released(int lane) {
  if (!home_flush_) return;
  const std::size_t i = static_cast<std::size_t>(lane);
  RemoteStash& s = stash_[i < stash_.size() ? i : 0];
  LaneState& l = lane_state(lane);
  std::vector<void*> bag;
  {
    LaneLock lock(l, daemon_hooked_);
    void* p = l.stash_chain;
    l.stash_chain = nullptr;
    while (p != nullptr) {
      bag.push_back(p);
      p = *static_cast<void**>(p);
    }
    p = s.head.exchange(nullptr, std::memory_order_acquire);
    while (p != nullptr) {
      bag.push_back(p);
      p = *static_cast<void**>(p);
    }
  }
  if (bag.empty()) return;
  // The blocks leave the stash (counted flushed) and re-enter through
  // the churn-aware adoption path, so the successor — or the daemon, or
  // flush_all — drains them at the usual quota instead of in a burst.
  s.flushed.fetch_add(bag.size(), std::memory_order_relaxed);
  s.backlog.fetch_sub(bag.size(), std::memory_order_relaxed);
  on_adopted(lane, std::move(bag));
}

std::uint64_t FreeExecutor::total_stashed() const {
  std::uint64_t t = 0;
  for (const LaneState& l : lanes_) {
    t += l.stashed.load(std::memory_order_relaxed);
  }
  return t;
}

std::uint64_t FreeExecutor::total_flushed() const {
  std::uint64_t t = 0;
  for (const RemoteStash& s : stash_) {
    t += s.flushed.load(std::memory_order_relaxed);
  }
  return t;
}

std::uint64_t FreeExecutor::total_stash_backlog() const {
  std::uint64_t t = 0;
  for (const RemoteStash& s : stash_) {
    t += s.backlog.load(std::memory_order_relaxed);
  }
  return t;
}

void FreeExecutor::on_adopted(int lane, std::vector<void*>&& bag) {
  if (bag.empty()) return;
  LaneState& l = lane_state(lane);
  l.enqueued.fetch_add(bag.size(), std::memory_order_relaxed);
  l.adopted_total.fetch_add(bag.size(), std::memory_order_relaxed);
  const std::uint32_t tenant = lane_tenant(lane);
  note_tenant_enqueued(lane, tenant, bag.size());
  LaneLock lock(l, daemon_hooked_);
  for (void* p : bag) l.adopted.push_back(p);
  if (multi_tenant_) {
    l.adopted_tags.insert(l.adopted_tags.end(), bag.size(), tenant);
  }
  l.adopted_backlog.store(l.adopted.size(), std::memory_order_relaxed);
}

std::size_t FreeExecutor::drain_adopted(int lane, std::size_t quota) {
  LaneState& l = lane_state(lane);
  if (quota == 0 ||
      l.adopted_backlog.load(std::memory_order_relaxed) == 0) {
    return 0;
  }
  const std::uint64_t t0 = stats_hungry_ ? now_ns() : 0;
  std::size_t n = 0;
  {
    LaneLock lock(l, daemon_hooked_);
    while (n < quota && !l.adopted.empty()) {
      void* p = l.adopted.front();
      l.adopted.pop_front();
      if (multi_tenant_) {
        note_tenant_drained(lane, l.adopted_tags.front(), 1);
        l.adopted_tags.pop_front();
      }
      routed_free(lane, lane, p);
      ++n;
    }
    l.adopted_backlog.store(l.adopted.size(), std::memory_order_relaxed);
  }
  if (stats_hungry_) {
    l.drain_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    l.timed_drained.fetch_add(n, std::memory_order_relaxed);
  }
  return n;
}

void FreeExecutor::on_op_end(int lane) {
  LaneState& l = lane_state(lane);
  l.ops.fetch_add(1, std::memory_order_relaxed);
  if (l.adopted_backlog.load(std::memory_order_relaxed) != 0) {
    drain_adopted(lane, drain_quota_for(lane));
  }
  maybe_flush_stash(lane);
}

void FreeExecutor::quiesce(int lane) {
  // Latch routing off for the rest of the teardown pass: the schemes'
  // flush_all loops interleave hand-over and quiesce per lane, and a
  // post-quiesce hand-over must not scatter blocks into stashes that
  // were already drained. Pre-latch pushes are safe — every lane's
  // quiesce drains its own stash below, and flush_all visits them all.
  teardown_.store(true, std::memory_order_relaxed);
  LaneState& l = lane_state(lane);
  {
    LaneLock lock(l, daemon_hooked_);
    while (!l.adopted.empty()) {
      void* p = l.adopted.front();
      l.adopted.pop_front();
      if (multi_tenant_) {
        note_tenant_drained(lane, l.adopted_tags.front(), 1);
        l.adopted_tags.pop_front();
      }
      timed_free(lane, p);
    }
    l.adopted_backlog.store(0, std::memory_order_relaxed);
  }
  if (home_flush_) {
    while (drain_stash(lane, ~std::size_t{0}, lane) != 0) {
    }
  }
}

std::size_t FreeExecutor::daemon_drain(int lane, std::size_t quota,
                                       int daemon_lane) {
  LaneState& l = lane_state(lane);
  std::size_t n = 0;
  if (quota != 0 &&
      l.adopted_backlog.load(std::memory_order_relaxed) != 0) {
    LaneLock lock(l, true);
    while (n < quota && !l.adopted.empty()) {
      void* p = l.adopted.front();
      l.adopted.pop_front();
      if (multi_tenant_) {
        note_tenant_drained(lane, l.adopted_tags.front(), 1);
        l.adopted_tags.pop_front();
      }
      timed_free_as(lane, daemon_lane, p);
      ++n;
    }
    l.adopted_backlog.store(l.adopted.size(), std::memory_order_relaxed);
  }
  // Orphan/idle stash coverage: when routing is armed, the remaining
  // quota flushes this lane's stash from the daemon — the path that
  // keeps departed or idle lanes from stranding stashed blocks. The
  // frees go through free_local_hint (remote attribution stays exact;
  // the per-block penalty was amortized by the batch hand-off).
  if (home_flush_ && n < quota) {
    n += drain_stash(lane, quota - n, daemon_lane);
  }
  return n;
}

std::uint64_t FreeExecutor::backlog() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    total += lanes_[i].adopted_backlog.load(std::memory_order_relaxed);
    total += lane_backlog(static_cast<int>(i));
    total += stash_[i].backlog.load(std::memory_order_relaxed);
  }
  return total;
}

LaneStats FreeExecutor::lane_stats(int lane) const {
  const LaneState& l = lane_state(lane);
  const std::size_t i = static_cast<std::size_t>(lane);
  const RemoteStash& st = stash_[i < stash_.size() ? i : 0];
  LaneStats s;
  s.ops = l.ops.load(std::memory_order_relaxed);
  // Mid-trial snapshots are unsynchronized by design (one relaxed load
  // per counter; no lock on the hot path), so pairs of counters can
  // tear. The exit-side counters (drained, flushed) are read *before*
  // their entry-side partners (enqueued, stashed): exits only follow
  // entries, so a later-read entry counter is always >= the
  // earlier-read exit counter and derived gauges (enqueued - drained,
  // stashed - flushed) never go negative. The backlog gauges are
  // maintained entry-first for the same reason (see stash_push) rather
  // than derived here.
  s.drained = l.drained.load(std::memory_order_relaxed);
  s.enqueued = l.enqueued.load(std::memory_order_relaxed);
  s.adopted = l.adopted_total.load(std::memory_order_relaxed);
  s.flushed = st.flushed.load(std::memory_order_relaxed);
  s.stashed = l.stashed.load(std::memory_order_relaxed);
  s.stash_backlog = st.backlog.load(std::memory_order_relaxed);
  s.backlog = l.adopted_backlog.load(std::memory_order_relaxed) +
              lane_backlog(lane) + s.stash_backlog;
  s.drain_ns = l.drain_ns.load(std::memory_order_relaxed);
  s.timed_drained = l.timed_drained.load(std::memory_order_relaxed);
  if (multi_tenant_) {
    const std::size_t t_count = static_cast<std::size_t>(tenants_);
    s.tenant_enqueued.resize(t_count);
    s.tenant_drained.resize(t_count);
    for (std::size_t t = 0; t < t_count; ++t) {
      const std::size_t cell =
          tenant_cell(lane, static_cast<std::uint32_t>(t));
      s.tenant_drained[t] =
          tenant_drained_[cell].load(std::memory_order_relaxed);
      s.tenant_enqueued[t] =
          tenant_enqueued_[cell].load(std::memory_order_relaxed);
    }
  }
  return s;
}

TenantStats FreeExecutor::tenant_stats(int tenant) const {
  TenantStats out;
  if (!multi_tenant_ || tenant < 0 || tenant >= tenants_) return out;
  const auto t = static_cast<std::uint32_t>(tenant);
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    const std::size_t cell = tenant_cell(static_cast<int>(lane), t);
    out.retired += tenant_retired_[cell].load(std::memory_order_relaxed);
    // drained before enqueued: enqueue counters are bumped before nodes
    // enter a backlog and drain counters after they leave, so this read
    // order keeps the derived backlog non-negative.
    out.drained += tenant_drained_[cell].load(std::memory_order_relaxed);
    out.enqueued += tenant_enqueued_[cell].load(std::memory_order_relaxed);
  }
  out.backlog = out.enqueued > out.drained ? out.enqueued - out.drained : 0;
  return out;
}

// ---------------------------------------------------------------- batch

void BatchFreeExecutor::on_reclaimable(int lane, std::vector<void*>&& bag) {
  if (bag.empty()) return;
  lane_state(lane).enqueued.fetch_add(bag.size(),
                                      std::memory_order_relaxed);
  if (multi_tenant_) {
    // The whole bag is freed on the spot: it enters and leaves the
    // tenant's books in one step (bag-granularity attribution to the
    // lane's current tenant, like every executor hand-over).
    const std::uint32_t tenant = lane_tenant(lane);
    note_tenant_enqueued(lane, tenant, bag.size());
    note_tenant_drained(lane, tenant, bag.size());
  }
  Timeline* tl = ctx_.timeline;
  const bool instrumented = tl != nullptr && tl->enabled();
  const std::uint64_t t0 = instrumented ? now_ns() : 0;
  for (void* p : bag) routed_free(lane, lane, p);
  if (instrumented) tl->record(lane, EventKind::kBatchFree, t0, now_ns());
}

// ------------------------------------------------------------ amortized

AmortizedFreeExecutor::AmortizedFreeExecutor(const SmrContext& ctx,
                                             const SmrConfig& cfg,
                                             FreeSchedule* schedule)
    : FreeExecutor(ctx, cfg, schedule), freeable_(cfg.slot_capacity()) {}

AmortizedFreeExecutor::Freeable& AmortizedFreeExecutor::lane(int lane_idx) {
  const std::size_t i = static_cast<std::size_t>(lane_idx);
  return freeable_[i < freeable_.size() ? i : 0];
}

void AmortizedFreeExecutor::on_reclaimable(int lane_idx,
                                           std::vector<void*>&& bag) {
  LaneState& l = lane_state(lane_idx);
  l.enqueued.fetch_add(bag.size(), std::memory_order_relaxed);
  const std::uint32_t tenant = lane_tenant(lane_idx);
  note_tenant_enqueued(lane_idx, tenant, bag.size());
  Freeable& f = lane(lane_idx);
  LaneLock lock(l, daemon_hooked_);
  for (void* p : bag) f.nodes.push_back(p);
  if (multi_tenant_) {
    f.tags.insert(f.tags.end(), bag.size(), tenant);
  }
  f.size.store(f.nodes.size(), std::memory_order_relaxed);
}

void AmortizedFreeExecutor::on_adopted(int lane_idx,
                                       std::vector<void*>&& bag) {
  // The freeable list already drains at the schedule's quota per op, so
  // adoption folds straight into it — same amortization, no second
  // queue.
  lane_state(lane_idx).adopted_total.fetch_add(bag.size(),
                                               std::memory_order_relaxed);
  on_reclaimable(lane_idx, std::move(bag));
}

std::size_t AmortizedFreeExecutor::drain_freeable(int lane_idx,
                                                  std::size_t quota,
                                                  std::size_t floor) {
  Freeable& f = lane(lane_idx);
  if (quota == 0 || f.size.load(std::memory_order_relaxed) <= floor) {
    return 0;
  }
  LaneState& l = lane_state(lane_idx);
  const std::uint64_t t0 = stats_hungry_ ? now_ns() : 0;
  std::size_t n = 0;
  {
    LaneLock lock(l, daemon_hooked_);
    while (n < quota && f.nodes.size() > floor) {
      void* p = f.nodes.front();
      f.nodes.pop_front();
      if (multi_tenant_) {
        note_tenant_drained(lane_idx, f.tags.front(), 1);
        f.tags.pop_front();
      }
      routed_free(lane_idx, lane_idx, p);
      ++n;
    }
    f.size.store(f.nodes.size(), std::memory_order_relaxed);
  }
  if (stats_hungry_) {
    l.drain_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    l.timed_drained.fetch_add(n, std::memory_order_relaxed);
  }
  return n;
}

void AmortizedFreeExecutor::on_op_end(int lane_idx) {
  LaneState& l = lane_state(lane_idx);
  l.ops.fetch_add(1, std::memory_order_relaxed);
  // One quota bounds the whole op end: the (rare) adoption queue first,
  // then the freeable backlog takes whatever is left.
  const std::size_t quota = drain_quota_for(lane_idx);
  const std::size_t used = drain_adopted(lane_idx, quota);
  drain_freeable(lane_idx, quota - used, 0);
  maybe_flush_stash(lane_idx);
}

void AmortizedFreeExecutor::quiesce(int lane_idx) {
  FreeExecutor::quiesce(lane_idx);
  Freeable& f = lane(lane_idx);
  LaneLock lock(lane_state(lane_idx), daemon_hooked_);
  while (!f.nodes.empty()) {
    void* p = f.nodes.front();
    f.nodes.pop_front();
    if (multi_tenant_) {
      note_tenant_drained(lane_idx, f.tags.front(), 1);
      f.tags.pop_front();
    }
    timed_free(lane_idx, p);
  }
  f.size.store(0, std::memory_order_relaxed);
}

std::size_t AmortizedFreeExecutor::daemon_drain(int lane_idx,
                                                std::size_t quota,
                                                int daemon_lane) {
  // The adoption queue first (base behaviour), then the freeable
  // backlog — two separate critical sections so the lane owner can
  // interleave. Pool inventory under daemon_floor() stays put.
  std::size_t n = FreeExecutor::daemon_drain(lane_idx, quota, daemon_lane);
  Freeable& f = lane(lane_idx);
  const std::size_t floor = daemon_floor();
  if (n >= quota || f.size.load(std::memory_order_relaxed) <= floor) {
    return n;
  }
  LaneLock lock(lane_state(lane_idx), true);
  while (n < quota && f.nodes.size() > floor) {
    void* p = f.nodes.front();
    f.nodes.pop_front();
    if (multi_tenant_) {
      note_tenant_drained(lane_idx, f.tags.front(), 1);
      f.tags.pop_front();
    }
    timed_free_as(lane_idx, daemon_lane, p);
    ++n;
  }
  f.size.store(f.nodes.size(), std::memory_order_relaxed);
  return n;
}

std::uint64_t AmortizedFreeExecutor::lane_backlog(int lane_idx) const {
  const std::size_t i = static_cast<std::size_t>(lane_idx);
  return freeable_[i < freeable_.size() ? i : 0].size.load(
      std::memory_order_relaxed);
}

// -------------------------------------------------------------- pooling

PoolingFreeExecutor::PoolingFreeExecutor(const SmrContext& ctx,
                                         const SmrConfig& cfg,
                                         FreeSchedule* schedule)
    : AmortizedFreeExecutor(ctx, cfg, schedule) {}

void* PoolingFreeExecutor::alloc_node(int lane_idx, std::size_t size) {
  // Trials use one node size; recycle only for that size and fall back to
  // the allocator for anything else.
  std::size_t expected = 0;
  common_size_.compare_exchange_strong(expected, size,
                                       std::memory_order_relaxed);
  Freeable& f = lane(lane_idx);
  if (size == common_size_.load(std::memory_order_relaxed) &&
      f.size.load(std::memory_order_relaxed) != 0) {
    LaneLock lock(lane_state(lane_idx), daemon_hooked_);
    if (!f.nodes.empty()) {
      void* p = f.nodes.front();
      f.nodes.pop_front();
      if (multi_tenant_) {
        note_tenant_drained(lane_idx, f.tags.front(), 1);
        f.tags.pop_front();
      }
      f.size.store(f.nodes.size(), std::memory_order_relaxed);
      pooled_allocs_.fetch_add(1, std::memory_order_relaxed);
      freed_.fetch_add(1, std::memory_order_relaxed);  // left limbo via reuse
      lane_state(lane_idx).drained.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  void* p =
      ctx_.allocator->allocate(lane_idx, std::max(size, sizeof(NodeHeader)));
  static_cast<NodeHeader*>(p)->birth_era = 0;
  return p;
}

void PoolingFreeExecutor::on_op_end(int lane_idx) {
  LaneState& l = lane_state(lane_idx);
  l.ops.fetch_add(1, std::memory_order_relaxed);
  const std::size_t quota = drain_quota_for(lane_idx);
  const std::size_t used = drain_adopted(lane_idx, quota);
  // The backlog is inventory: trim only the excess over the schedule's
  // pool cap, inside the same per-op quota.
  drain_freeable(lane_idx, quota - used, schedule_->pool_cap());
  maybe_flush_stash(lane_idx);
}

}  // namespace emr::smr
