#include "smr/free_schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace emr::smr {

namespace {

/// Target number of lane ops over which the adaptive controller aims to
/// clear a lane's backlog when the registered population matches the
/// configured steady state. More registrants shorten the horizon
/// proportionally: the table is producing garbage faster than any one
/// lane's ops are ticking, so each op must carry more of the drain.
constexpr std::size_t kDrainHorizonOps = 256;

/// Ceiling on the time one op-end drain burst may spend freeing, given
/// the lane's measured ns-per-free. Keeps the adaptive quantum from
/// recreating the very free-call stalls the paper measures when the
/// allocator path is expensive (remote frees, cache flushes).
constexpr std::uint64_t kMaxDrainNsPerOp = 50'000;

std::size_t auto_pool_cap(const SmrConfig& cfg) {
  if (cfg.pool_cap != 0) return cfg.pool_cap;
  return std::max<std::size_t>(cfg.batch_size * 4, 1024);
}

}  // namespace

FixedFreeSchedule::FixedFreeSchedule(const SmrConfig& cfg)
    : drain_(std::max<std::size_t>(cfg.af_drain_per_op, 1)),
      batch_(cfg.batch_size),
      pool_cap_(auto_pool_cap(cfg)),
      flush_batch_(cfg.flush_batch) {}

AdaptiveFreeSchedule::AdaptiveFreeSchedule(const SmrConfig& cfg)
    : batch_(cfg.batch_size),
      capacity_(cfg.slot_capacity()),
      base_threads_(
          static_cast<std::size_t>(cfg.num_threads < 1 ? 1
                                                       : cfg.num_threads)),
      drain_min_(cfg.drain_min),
      drain_max_(cfg.drain_max),
      pool_cap_(auto_pool_cap(cfg)),
      flush_batch_(cfg.flush_batch) {}

std::size_t AdaptiveFreeSchedule::drain_quota(const LaneStats& lane) const {
  if (lane.backlog == 0) return drain_min();
  const std::size_t pop =
      std::max<std::size_t>(population_.load(std::memory_order_relaxed), 1);
  const std::size_t horizon =
      std::max<std::size_t>(kDrainHorizonOps * base_threads_ / pop, 1);
  std::size_t quota = static_cast<std::size_t>(lane.backlog) / horizon + 1;
  // timed_drained, not drained: only clocked drain bursts feed
  // drain_ns, while drained also counts pool recycles and batch
  // whole-bag frees that would dilute the ns-per-free estimate and
  // defeat the stall cap.
  if (lane.timed_drained > 0 && lane.drain_ns > 0) {
    const std::uint64_t ns_per_free =
        std::max<std::uint64_t>(lane.drain_ns / lane.timed_drained, 1);
    quota = std::min<std::size_t>(
        quota, static_cast<std::size_t>(kMaxDrainNsPerOp / ns_per_free) + 1);
  }
  return std::clamp(quota, drain_min(), drain_max());
}

std::size_t AdaptiveFreeSchedule::flush_quota(const LaneStats& lane) const {
  if (lane.stash_backlog == 0) return 1;
  const std::size_t pop =
      std::max<std::size_t>(population_.load(std::memory_order_relaxed), 1);
  const std::size_t horizon =
      std::max<std::size_t>(kDrainHorizonOps * base_threads_ / pop, 1);
  const std::size_t quota =
      static_cast<std::size_t>(lane.stash_backlog) / horizon + 1;
  return std::clamp<std::size_t>(quota, 1, flush_batch_);
}

std::size_t AdaptiveFreeSchedule::scan_threshold(
    std::size_t population) const {
  // Prorate the configured batch by the live fraction of the slot
  // table: the configured EMR_BATCH buys its amortization when every
  // slot is producing garbage, but a half-empty table reaches the same
  // per-thread amortization with half the limbo volume — so bags seal
  // (and scans trigger) sooner, and peak garbage tracks the population
  // instead of the worst-case constant.
  const std::size_t pop = std::clamp<std::size_t>(population, 1, capacity_);
  return std::max<std::size_t>(batch_ * pop / capacity_, 1);
}

LatencyTargetFreeSchedule::LatencyTargetFreeSchedule(const SmrConfig& cfg)
    : AdaptiveFreeSchedule(cfg),
      target_ns_(cfg.latency_target_us * 1000) {}

std::size_t LatencyTargetFreeSchedule::drain_quota(
    const LaneStats& lane) const {
  const std::size_t base = AdaptiveFreeSchedule::drain_quota(lane);
  const std::size_t s = scale_.load(std::memory_order_relaxed);
  return std::clamp(base * s / kScaleUnit, drain_min(), drain_max());
}

std::size_t LatencyTargetFreeSchedule::flush_quota(
    const LaneStats& lane) const {
  const std::size_t base = AdaptiveFreeSchedule::flush_quota(lane);
  const std::size_t s = scale_.load(std::memory_order_relaxed);
  return std::clamp<std::size_t>(base * s / kScaleUnit, 1, flush_batch());
}

void LatencyTargetFreeSchedule::on_tail_latency(std::uint64_t p999_ns) {
  last_p999_.store(p999_ns, std::memory_order_relaxed);
  // Single writer (the driver's sampler thread): plain load-modify-store
  // on the relaxed atomic is race-free; concurrent drain_quota readers
  // see either scale.
  std::size_t s = scale_.load(std::memory_order_relaxed);
  if (p999_ns > target_ns_) {
    s = std::max(s / 2, kScaleMin);
  } else if (p999_ns * 4 < target_ns_ * 3) {
    s = std::min(s + s / 4 + 1, kScaleMax);
  }
  scale_.store(s, std::memory_order_relaxed);
}

std::unique_ptr<FreeSchedule> make_free_schedule(ScheduleKind kind,
                                                 const SmrConfig& cfg) {
  if (!cfg.schedule.empty()) {
    if (cfg.schedule == "fixed") {
      kind = ScheduleKind::kFixed;
    } else if (cfg.schedule == "adaptive") {
      kind = ScheduleKind::kAdaptive;
    } else if (cfg.schedule == "latency") {
      kind = ScheduleKind::kLatency;
    } else {
      throw std::invalid_argument(
          "unknown free schedule: '" + cfg.schedule +
          "' (valid EMR_SCHEDULE values: fixed adaptive latency)");
    }
  }
  if (cfg.batch_size == 0) {
    throw std::invalid_argument(
        "invalid SmrConfig::batch_size: 0 (EMR_BATCH must be >= 1)");
  }
  if (cfg.flush_batch == 0) {
    throw std::invalid_argument(
        "invalid SmrConfig::flush_batch: 0 (EMR_FLUSH_BATCH must be >= 1)");
  }
  if (cfg.drain_min == 0) {
    throw std::invalid_argument(
        "invalid SmrConfig::drain_min: 0 (EMR_DRAIN_MIN must be >= 1)");
  }
  if (cfg.drain_max < cfg.drain_min) {
    throw std::invalid_argument(
        "invalid drain clamp: drain_max=" + std::to_string(cfg.drain_max) +
        " < drain_min=" + std::to_string(cfg.drain_min) +
        " (EMR_DRAIN_MAX must be >= EMR_DRAIN_MIN)");
  }
  if (kind == ScheduleKind::kLatency) {
    if (cfg.latency_target_us == 0) {
      throw std::invalid_argument(
          "invalid SmrConfig::latency_target_us: 0 (EMR_LATENCY_TARGET_US "
          "must be >= 1 microsecond for the latency schedule)");
    }
    return std::make_unique<LatencyTargetFreeSchedule>(cfg);
  }
  if (kind == ScheduleKind::kAdaptive) {
    return std::make_unique<AdaptiveFreeSchedule>(cfg);
  }
  return std::make_unique<FixedFreeSchedule>(cfg);
}

}  // namespace emr::smr
