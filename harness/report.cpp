#include "harness/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "core/env.hpp"

namespace emr::harness {

std::string fixed(double v, int precision) {
  // Non-finite values print as "nan"/"inf", which is_json_number
  // rejects, so emit_json writes them as quoted strings and the
  // BENCH_*.json artifacts stay parseable even when a degenerate
  // measurement slips through.
  if (!std::isfinite(v)) return std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", std::max(precision, 0), v);
  return buf;
}

std::string human_count(double v) {
  const char* suffix = "";
  double scaled = v;
  if (std::fabs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%s", scaled, suffix);
  return buf;
}

std::string human_ns(double ns) {
  if (!std::isfinite(ns)) return fixed(ns, 0);
  const double mag = std::fabs(ns);
  char buf[32];
  if (mag >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (mag >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (mag >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

void print_banner(const std::string& title, const std::string& source,
                  const std::string& config) {
  const std::size_t width =
      std::max({title.size(), source.size(), config.size()}) + 2;
  const std::string bar(width + 2, '=');
  std::printf("%s\n %s\n %s\n %s\n%s\n", bar.c_str(), title.c_str(),
              source.c_str(), config.c_str(), bar.c_str());
}

std::string out_dir() {
  std::string dir = env_str("EMR_OUT", "emr_out");
  if (dir.empty()) dir = "emr_out";
  if (dir.back() != '/') dir += '/';
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total > 2 ? total - 2 : total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      // Cells are simple tokens; quote defensively if a comma sneaks in.
      const bool quote = row[c].find(',') != std::string::npos;
      std::fprintf(f, "%s%s%s%s", quote ? "\"" : "", row[c].c_str(),
                   quote ? "\"" : "", c + 1 == row.size() ? "\n" : ",");
    }
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  std::fclose(f);
  return true;
}

bool Table::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  emit_json(out, *this);
  return static_cast<bool>(out);
}

namespace {

/// True iff the whole cell is one number under the JSON grammar
/// (-?int[.frac][exp], no leading zeros) — such cells are emitted
/// unquoted. Deliberately stricter than strtod, whose hex/"+5"/".5"
/// forms would be invalid JSON if copied through verbatim.
bool is_json_number(const std::string& cell) {
  const char* p = cell.c_str();
  if (*p == '-') ++p;
  if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  const bool leading_zero = *p == '0';
  ++p;
  if (leading_zero && std::isdigit(static_cast<unsigned char>(*p))) {
    return false;
  }
  while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  if (*p == '.') {
    ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  return *p == '\0';
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void emit_json(std::ostream& os, const Table& table) {
  os << "[\n";
  for (std::size_t i = 0; i < table.rows(); ++i) {
    const std::vector<std::string>& row = table.row(i);
    os << "  {";
    for (std::size_t c = 0; c < table.headers().size(); ++c) {
      if (c > 0) os << ", ";
      write_json_string(os, table.headers()[c]);
      os << ": ";
      const std::string& cell = row[c];  // add_row pads to headers_.size()
      if (is_json_number(cell)) {
        os << cell;
      } else {
        write_json_string(os, cell);
      }
    }
    os << (i + 1 == table.rows() ? "}\n" : "},\n");
  }
  os << "]\n";
}

}  // namespace emr::harness
