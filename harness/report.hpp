// Result presentation: aligned console tables, CSV artifacts, banners,
// and the EMR_OUT artifact directory.
#pragma once

#include <string>
#include <vector>

namespace emr::harness {

/// Fixed-point formatting, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double v, int precision);

/// Compact magnitudes: 950 -> "950", 1.2e6 -> "1.20M", 3.4e9 -> "3.40G".
std::string human_count(double v);

/// Three-line header every bench prints before its sweep.
void print_banner(const std::string& title, const std::string& source,
                  const std::string& config);

/// Artifact directory (EMR_OUT, default "emr_out/"), created on first
/// use, always returned with a trailing slash.
std::string out_dir();

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  std::size_t rows() const { return rows_.size(); }

  /// Prints headers + rows with column alignment.
  void print() const;

  /// Writes headers + rows as CSV. Returns success.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emr::harness
