// Result presentation: aligned console tables, CSV and JSON artifacts,
// banners, and the EMR_OUT artifact directory.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace emr::harness {

/// Fixed-point formatting, e.g. fixed(3.14159, 2) == "3.14".
/// Non-finite inputs format as "nan"/"inf"/"-inf" — outside the JSON
/// number grammar, so emit_json quotes them and artifacts stay valid.
std::string fixed(double v, int precision);

/// Compact magnitudes: 950 -> "950", 1.2e6 -> "1.20M", 3.4e9 -> "3.40G".
std::string human_count(double v);

/// Durations in the unit that keeps 2-3 significant digits: 850 ->
/// "850ns", 12'400 -> "12.4us", 3.1e6 -> "3.10ms", 2.5e9 -> "2.50s".
/// Non-finite inputs follow fixed()'s "nan"/"inf" convention.
std::string human_ns(double ns);

/// Three-line header every bench prints before its sweep.
void print_banner(const std::string& title, const std::string& source,
                  const std::string& config);

/// Artifact directory (EMR_OUT, default "emr_out/"), created on first
/// use, always returned with a trailing slash.
std::string out_dir();

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Prints headers + rows with column alignment.
  void print() const;

  /// Writes headers + rows as CSV. Returns success.
  bool write_csv(const std::string& path) const;

  /// Writes the table through emit_json(). Returns success.
  bool write_json(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streams the table as a JSON array with one object per row, keyed by
/// the table's headers: [{"threads": 4, "reclaimer": "debra_af"}, ...].
/// Cells that parse fully as finite numbers are emitted unquoted so the
/// BENCH_*.json perf trajectories stay typed; everything else is an
/// escaped JSON string.
void emit_json(std::ostream& os, const Table& table);

}  // namespace emr::harness
