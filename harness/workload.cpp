#include "harness/workload.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "alloc/factory.hpp"
#include "core/env.hpp"
#include "core/timing.hpp"
#include "smr/factory.hpp"
#include "smr/free_executor.hpp"

namespace emr::harness {

// ------------------------------------------------------------- env glue

void apply_env_overrides(TrialConfig& cfg) {
  cfg.ds = env_str("EMR_DS", cfg.ds);
  cfg.reclaimer = env_str("EMR_RECLAIMER", cfg.reclaimer);
  cfg.allocator = env_str("EMR_ALLOC", cfg.allocator);
  if (env_has("EMR_KEYRANGE")) {
    cfg.keyrange = std::max<std::uint64_t>(
        env_u64("EMR_KEYRANGE", cfg.keyrange), 2);
  }
  if (env_has("EMR_MS")) {
    cfg.measure_ms = static_cast<int>(
        std::max<long long>(env_i64("EMR_MS", cfg.measure_ms), 1));
  }
  if (env_has("EMR_TRIALS")) {
    cfg.trials = static_cast<int>(
        std::max<long long>(env_i64("EMR_TRIALS", cfg.trials), 1));
  }
  if (env_has("EMR_SEED")) cfg.seed = env_u64("EMR_SEED", cfg.seed);
  if (env_has("EMR_BATCH")) {
    cfg.smr.batch_size = static_cast<std::size_t>(
        std::max<std::uint64_t>(env_u64("EMR_BATCH", cfg.smr.batch_size), 1));
  }
  if (env_has("EMR_AF_DRAIN")) {
    cfg.smr.af_drain_per_op = static_cast<std::size_t>(std::max<std::uint64_t>(
        env_u64("EMR_AF_DRAIN", cfg.smr.af_drain_per_op), 1));
  }
  if (env_has("EMR_HP_SLOTS")) {
    cfg.smr.hp_slots = static_cast<std::size_t>(std::max<std::uint64_t>(
        env_u64("EMR_HP_SLOTS", cfg.smr.hp_slots), 1));
  }
  if (env_has("EMR_EPOCH_FREQ")) {
    cfg.smr.epoch_freq = static_cast<std::size_t>(std::max<std::uint64_t>(
        env_u64("EMR_EPOCH_FREQ", cfg.smr.epoch_freq), 1));
  }
  if (env_has("EMR_REMOTE_PENALTY_NS")) {
    cfg.alloc.remote_free_penalty_ns =
        env_u64("EMR_REMOTE_PENALTY_NS", cfg.alloc.remote_free_penalty_ns);
  }
  if (env_has("EMR_TCACHE_CAP")) {
    cfg.alloc.tcache_cap = static_cast<std::size_t>(std::max<std::uint64_t>(
        env_u64("EMR_TCACHE_CAP", cfg.alloc.tcache_cap), 1));
  }
  if (env_has("EMR_FLUSH_FRACTION")) {
    cfg.alloc.flush_fraction =
        env_f64("EMR_FLUSH_FRACTION", cfg.alloc.flush_fraction);
  }
  if (env_has("EMR_DEFERRED_FLUSH")) {
    cfg.alloc.deferred_flush = env_i64("EMR_DEFERRED_FLUSH", 0) != 0;
  }
  if (env_has("EMR_INSERT_FRAC")) {
    cfg.insert_frac = env_f64("EMR_INSERT_FRAC", cfg.insert_frac);
  }
  if (env_has("EMR_ERASE_FRAC")) {
    cfg.erase_frac = env_f64("EMR_ERASE_FRAC", cfg.erase_frac);
  }
}

TrialConfig config_from_env() {
  TrialConfig cfg;
  apply_env_overrides(cfg);
  return cfg;
}

std::vector<int> thread_sweep_from_env(std::vector<int> def) {
  std::vector<int> parsed = env_int_list("EMR_THREADS");
  if (parsed.empty()) return def;
  for (int& n : parsed) n = std::clamp(n, 1, 1024);
  return parsed;
}

std::size_t node_size_for_ds(const std::string& ds) {
  if (ds == "occtree") return 64;   // compact OCC nodes: light alloc traffic
  if (ds == "dgt") return 96;       // external BST with ticket-lock word
  return 240;                       // abtree: the paper's fat B-tree nodes
}

// -------------------------------------------------------------- opstream

OpStream::OpStream(std::uint64_t seed, int tid, double insert_frac,
                   double erase_frac, std::uint64_t keyrange)
    : rng_(seed ^ (static_cast<std::uint64_t>(tid) + 1) *
                      0x9E3779B97F4A7C15ULL),
      insert_frac_(insert_frac),
      erase_frac_(erase_frac),
      keyrange_(std::max<std::uint64_t>(keyrange, 1)) {}

Op OpStream::next() {
  const double r = rng_.next_double();
  Op op;
  if (r < insert_frac_) {
    op.kind = Op::kInsert;
  } else if (r < insert_frac_ + erase_frac_) {
    op.kind = Op::kErase;
  } else {
    op.kind = Op::kLookup;
  }
  op.key = rng_.next_range(keyrange_);
  return op;
}

// -------------------------------------------------------------- workload

namespace {

std::uint64_t mix_key(std::uint64_t k) {
  std::uint64_t s = k;
  return splitmix64(s);
}

struct Spinlock {
  std::atomic_flag flag = ATOMIC_FLAG_INIT;
  void lock() {
    while (flag.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  void unlock() { flag.clear(std::memory_order_release); }
};

struct Node {
  std::uint64_t key;
  std::atomic<Node*> next;
};

void* load_next(const void* src) {
  return static_cast<const std::atomic<Node*>*>(src)->load(
      std::memory_order_acquire);
}

}  // namespace

/// Sharded chained hash set. Every node comes from the reclaimer (so
/// pooling can intercept it) and leaves through retire(); traversals call
/// protect() per hop so pointer-protecting schemes pay their read-side
/// cost. Shard spinlocks keep mutations simple — the contention under
/// study lives in the allocator, not the structure.
class Workload {
 public:
  Workload(const TrialConfig& cfg, smr::Reclaimer* reclaimer,
           alloc::Allocator* allocator)
      : node_size_(std::max(node_size_for_ds(cfg.ds), sizeof(Node))),
        reclaimer_(reclaimer),
        allocator_(allocator) {
    std::size_t want = std::max<std::uint64_t>(cfg.keyrange / 2, 64);
    nbuckets_ = 1;
    while (nbuckets_ < want) nbuckets_ <<= 1;
    buckets_ = std::make_unique<std::atomic<Node*>[]>(nbuckets_);
    for (std::size_t i = 0; i < nbuckets_; ++i) buckets_[i].store(nullptr);
    locks_ = std::make_unique<Spinlock[]>(kShards);
  }

  ~Workload() {
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      Node* n = buckets_[i].load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* next = n->next.load(std::memory_order_relaxed);
        allocator_->deallocate(0, n);
        n = next;
      }
    }
  }

  bool insert(int tid, std::uint64_t key) {
    const std::size_t b = bucket_of(key);
    Spinlock& lock = locks_[b & (kShards - 1)];
    lock.lock();
    Node* head = buckets_[b].load(std::memory_order_relaxed);
    for (Node* n = head; n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) {
        lock.unlock();
        return false;
      }
    }
    Node* node =
        static_cast<Node*>(reclaimer_->alloc_node(tid, node_size_));
    node->key = key;
    node->next.store(head, std::memory_order_relaxed);
    buckets_[b].store(node, std::memory_order_release);
    lock.unlock();
    return true;
  }

  bool erase(int tid, std::uint64_t key) {
    const std::size_t b = bucket_of(key);
    Spinlock& lock = locks_[b & (kShards - 1)];
    lock.lock();
    Node* prev = nullptr;
    Node* n = buckets_[b].load(std::memory_order_relaxed);
    while (n != nullptr && n->key != key) {
      prev = n;
      n = n->next.load(std::memory_order_relaxed);
    }
    if (n == nullptr) {
      lock.unlock();
      return false;
    }
    Node* next = n->next.load(std::memory_order_relaxed);
    if (prev == nullptr) {
      buckets_[b].store(next, std::memory_order_release);
    } else {
      prev->next.store(next, std::memory_order_release);
    }
    lock.unlock();
    reclaimer_->retire(tid, n);
    return true;
  }

  bool lookup(int tid, std::uint64_t key) {
    const std::size_t b = bucket_of(key);
    Spinlock& lock = locks_[b & (kShards - 1)];
    lock.lock();
    int hop = 0;
    Node* n = static_cast<Node*>(
        reclaimer_->protect(tid, hop, load_next, &buckets_[b]));
    bool found = false;
    while (n != nullptr) {
      if (n->key == key) {
        found = true;
        break;
      }
      ++hop;
      // Slot choice is the reclaimer's business: schemes mod the index
      // by their configured slot count (EMR_HP_SLOTS).
      n = static_cast<Node*>(
          reclaimer_->protect(tid, hop, load_next, &n->next));
    }
    lock.unlock();
    return found;
  }

  /// Deterministic half-full prefill: every even key, inserted through
  /// the normal op path on tid 0.
  void prefill(std::uint64_t keyrange) {
    for (std::uint64_t k = 0; k < keyrange; k += 2) {
      reclaimer_->begin_op(0);
      insert(0, k);
      reclaimer_->end_op(0);
    }
  }

 private:
  static constexpr std::size_t kShards = 256;

  std::size_t bucket_of(std::uint64_t key) const {
    return static_cast<std::size_t>(mix_key(key)) & (nbuckets_ - 1);
  }

  std::size_t node_size_;
  std::size_t nbuckets_;
  smr::Reclaimer* reclaimer_;
  alloc::Allocator* allocator_;
  std::unique_ptr<std::atomic<Node*>[]> buckets_;
  std::unique_ptr<Spinlock[]> locks_;
};

// ----------------------------------------------------------------- trial

Trial::Trial(const TrialConfig& cfg) : cfg_(cfg) {
  alloc::AllocConfig acfg = cfg_.alloc;
  acfg.max_threads = std::max(cfg_.nthreads, 1);
  allocator_ = alloc::make_allocator(cfg_.allocator, acfg);

  smr::SmrConfig scfg = cfg_.smr;
  scfg.num_threads = std::max(cfg_.nthreads, 1);
  smr::SmrContext ctx;
  ctx.allocator = allocator_.get();
  ctx.timeline = &timeline_;
  ctx.garbage = &garbage_;
  bundle_ = smr::make_reclaimer(cfg_.reclaimer, ctx, scfg);

  workload_ = std::make_unique<Workload>(cfg_, bundle_.reclaimer.get(),
                                         allocator_.get());
}

Trial::~Trial() = default;

TrialResult Trial::run() {
  if (ran_) throw std::logic_error("Trial::run called twice");
  ran_ = true;

  // Instruments stay disarmed through the prefill.
  timeline_.reset(cfg_.nthreads, 0, cfg_.timeline_min_duration_ns, false);
  garbage_.reset(false);
  workload_->prefill(cfg_.keyrange);

  const int nthreads = std::max(cfg_.nthreads, 1);
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(nthreads), 0);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nthreads));
  for (int tid = 0; tid < nthreads; ++tid) {
    workers.emplace_back([&, tid] {
      OpStream ops(cfg_, tid);
      smr::Reclaimer& r = *bundle_.reclaimer;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Op op = ops.next();
        r.begin_op(tid);
        switch (op.kind) {
          case Op::kInsert:
            workload_->insert(tid, op.key);
            break;
          case Op::kErase:
            workload_->erase(tid, op.key);
            break;
          case Op::kLookup:
            workload_->lookup(tid, op.key);
            break;
        }
        r.end_op(tid);
        ++done;
      }
      counts[static_cast<std::size_t>(tid)] = done;
    });
  }

  const alloc::AllocStats alloc_before = allocator_->stats();
  const smr::SmrStats smr_before = bundle_.reclaimer->stats();
  const std::uint64_t t0 = now_ns();
  timeline_.reset(nthreads, t0, cfg_.timeline_min_duration_ns,
                  cfg_.enable_timeline);
  garbage_.reset(cfg_.enable_garbage);
  go.store(true, std::memory_order_release);

  std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.measure_ms));
  stop.store(true, std::memory_order_relaxed);
  const std::uint64_t t1 = now_ns();
  for (std::thread& w : workers) w.join();

  const alloc::AllocStats alloc_after = allocator_->stats();
  const smr::SmrStats smr_after = bundle_.reclaimer->stats();

  // Teardown frees are not part of the story the instruments tell.
  timeline_.disarm();
  garbage_.disarm();
  bundle_.reclaimer->flush_all();
  allocator_->flush_thread_caches();

  TrialResult r;
  for (std::uint64_t c : counts) r.ops += c;
  r.wall_ns = std::max<std::uint64_t>(t1 - t0, 1);
  r.mops = static_cast<double>(r.ops) * 1e3 / static_cast<double>(r.wall_ns);
  r.peak_bytes_mapped = alloc_after.peak_bytes_mapped;
  r.smr_stats = smr_after;
  r.epochs_in_window =
      smr_after.epochs_advanced - smr_before.epochs_advanced;
  r.freed_in_window = smr_after.freed - smr_before.freed;

  r.alloc_diff.totals.n_alloc =
      alloc_after.totals.n_alloc - alloc_before.totals.n_alloc;
  r.alloc_diff.totals.n_free =
      alloc_after.totals.n_free - alloc_before.totals.n_free;
  r.alloc_diff.totals.n_remote_free =
      alloc_after.totals.n_remote_free - alloc_before.totals.n_remote_free;
  r.alloc_diff.totals.n_flush =
      alloc_after.totals.n_flush - alloc_before.totals.n_flush;
  r.alloc_diff.totals.ns_in_free =
      alloc_after.totals.ns_in_free - alloc_before.totals.ns_in_free;
  r.alloc_diff.totals.ns_in_flush =
      alloc_after.totals.ns_in_flush - alloc_before.totals.ns_in_flush;
  r.alloc_diff.totals.ns_in_lock =
      alloc_after.totals.ns_in_lock - alloc_before.totals.ns_in_lock;
  r.alloc_diff.bytes_mapped =
      alloc_after.bytes_mapped - alloc_before.bytes_mapped;
  r.alloc_diff.peak_bytes_mapped = alloc_after.peak_bytes_mapped;

  const double thread_ns =
      static_cast<double>(nthreads) * static_cast<double>(r.wall_ns);
  r.pct_free =
      100.0 * static_cast<double>(r.alloc_diff.totals.ns_in_free) / thread_ns;
  r.pct_flush = 100.0 *
                static_cast<double>(r.alloc_diff.totals.ns_in_flush) /
                thread_ns;
  r.pct_lock =
      100.0 * static_cast<double>(r.alloc_diff.totals.ns_in_lock) / thread_ns;
  return r;
}

AggregateResult run_trials(const TrialConfig& cfg) {
  AggregateResult agg;
  const int trials = std::max(cfg.trials, 1);
  double peak_sum = 0;
  for (int i = 0; i < trials; ++i) {
    TrialConfig one = cfg;
    one.seed = cfg.seed + static_cast<std::uint64_t>(i);
    Trial trial(one);
    const TrialResult r = trial.run();
    if (i == 0) {
      agg.min_mops = r.mops;
      agg.max_mops = r.mops;
    }
    agg.avg_mops += r.mops;
    agg.min_mops = std::min(agg.min_mops, r.mops);
    agg.max_mops = std::max(agg.max_mops, r.mops);
    peak_sum += static_cast<double>(r.peak_bytes_mapped);
  }
  agg.avg_mops /= trials;
  agg.avg_peak_mib = peak_sum / trials / (1024.0 * 1024.0);
  agg.trials = trials;
  return agg;
}

}  // namespace emr::harness
