#include "harness/workload.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <vector>

#include "alloc/factory.hpp"
#include "core/affinity.hpp"
#include "core/calibration.hpp"
#include "core/env.hpp"
#include "core/timing.hpp"
#include "ds/queue.hpp"
#include "ds/set.hpp"
#include "smr/factory.hpp"
#include "smr/free_executor.hpp"

namespace emr::harness {

// ------------------------------------------------------------- env glue

void apply_env_overrides(TrialConfig& cfg) {
  cfg.ds = env_str("EMR_DS", cfg.ds);
  cfg.reclaimer = env_str("EMR_RECLAIMER", cfg.reclaimer);
  cfg.allocator = env_str("EMR_ALLOC", cfg.allocator);
  if (env_has("EMR_KEYRANGE")) {
    cfg.keyrange = std::max<std::uint64_t>(
        env_u64("EMR_KEYRANGE", cfg.keyrange), 2);
  }
  if (env_has("EMR_MS")) {
    cfg.measure_ms = static_cast<int>(
        std::max<long long>(env_i64("EMR_MS", cfg.measure_ms), 1));
  }
  if (env_has("EMR_TRIALS")) {
    cfg.trials = static_cast<int>(
        std::max<long long>(env_i64("EMR_TRIALS", cfg.trials), 1));
  }
  if (env_has("EMR_SEED")) cfg.seed = env_u64("EMR_SEED", cfg.seed);
  if (env_has("EMR_BATCH")) {
    cfg.smr.batch_size = static_cast<std::size_t>(
        std::max<std::uint64_t>(env_u64("EMR_BATCH", cfg.smr.batch_size), 1));
  }
  if (env_has("EMR_AF_DRAIN")) {
    cfg.smr.af_drain_per_op = static_cast<std::size_t>(std::max<std::uint64_t>(
        env_u64("EMR_AF_DRAIN", cfg.smr.af_drain_per_op), 1));
  }
  if (env_has("EMR_SCHEDULE")) {
    // Validity ("fixed" | "adaptive") is enforced by make_free_schedule
    // when the reclaimer is built, so a typo fails loudly with the
    // valid choices instead of silently running the wrong policy.
    cfg.smr.schedule = env_str("EMR_SCHEDULE", cfg.smr.schedule);
  }
  if (env_has("EMR_FLUSH_BATCH")) {
    const long long v = env_i64("EMR_FLUSH_BATCH", -1);
    if (v < 1) {
      throw std::invalid_argument(
          "invalid EMR_FLUSH_BATCH: '" + env_str("EMR_FLUSH_BATCH", "") +
          "' (must be >= 1: the home-flush quantum's ceiling)");
    }
    cfg.smr.flush_batch = static_cast<std::size_t>(v);
  }
  if (env_has("EMR_HOME_FLUSH")) {
    // Validity ("on" | "off") is enforced by make_reclaimer, so a typo
    // fails loudly there instead of silently keeping the name-derived
    // routing setting.
    cfg.smr.home_flush = env_str("EMR_HOME_FLUSH", cfg.smr.home_flush);
  }
  if (env_has("EMR_DRAIN_MIN")) {
    const long long v = env_i64("EMR_DRAIN_MIN", -1);
    if (v < 1) {
      throw std::invalid_argument(
          "invalid EMR_DRAIN_MIN: '" + env_str("EMR_DRAIN_MIN", "") +
          "' (must be >= 1: the adaptive drain quantum's floor)");
    }
    cfg.smr.drain_min = static_cast<std::size_t>(v);
  }
  if (env_has("EMR_DRAIN_MAX")) {
    const long long v = env_i64("EMR_DRAIN_MAX", -1);
    if (v < 1) {
      throw std::invalid_argument(
          "invalid EMR_DRAIN_MAX: '" + env_str("EMR_DRAIN_MAX", "") +
          "' (must be >= 1: the adaptive drain quantum's ceiling)");
    }
    // drain_max < drain_min fails in make_free_schedule naming both
    // knobs.
    cfg.smr.drain_max = static_cast<std::size_t>(v);
  }
  if (env_has("EMR_POOL_CAP")) {
    const long long v = env_i64("EMR_POOL_CAP", -1);
    if (v <= 0) {
      throw std::invalid_argument(
          "invalid EMR_POOL_CAP: '" + env_str("EMR_POOL_CAP", "") +
          "' (must be a positive node count; unset it for the automatic "
          "cap of four batches)");
    }
    cfg.smr.pool_cap = static_cast<std::size_t>(v);
  }
  if (env_has("EMR_EXTRA_SLOTS")) {
    const long long v = env_i64("EMR_EXTRA_SLOTS", -1);
    if (v < 1) {
      throw std::invalid_argument(
          "invalid EMR_EXTRA_SLOTS: '" + env_str("EMR_EXTRA_SLOTS", "") +
          "' (must be >= 1: the registration table needs headroom for "
          "churn overlap and the teardown handle)");
    }
    cfg.smr.extra_slots = static_cast<std::size_t>(v);
  }
  if (env_has("EMR_LATENCY_TARGET_US")) {
    const long long v = env_i64("EMR_LATENCY_TARGET_US", -1);
    if (v < 1) {
      throw std::invalid_argument(
          "invalid EMR_LATENCY_TARGET_US: '" +
          env_str("EMR_LATENCY_TARGET_US", "") +
          "' (must be >= 1: the latency schedule's p99.9 target in "
          "microseconds)");
    }
    cfg.smr.latency_target_us = static_cast<std::uint64_t>(v);
  }
  if (env_has("EMR_LATENCY")) {
    cfg.enable_latency = env_i64("EMR_LATENCY", 0) != 0;
  }
  if (env_has("EMR_SAMPLE_MS")) {
    // Unclamped like EMR_CHURN_MS: validate_config rejects < 1.
    cfg.schedule_sample_ms =
        static_cast<int>(env_i64("EMR_SAMPLE_MS", cfg.schedule_sample_ms));
  }
  if (env_has("EMR_HP_SLOTS")) {
    cfg.smr.hp_slots = static_cast<std::size_t>(std::max<std::uint64_t>(
        env_u64("EMR_HP_SLOTS", cfg.smr.hp_slots), 1));
  }
  if (env_has("EMR_EPOCH_FREQ")) {
    cfg.smr.epoch_freq = static_cast<std::size_t>(std::max<std::uint64_t>(
        env_u64("EMR_EPOCH_FREQ", cfg.smr.epoch_freq), 1));
  }
  if (env_has("EMR_REMOTE_PENALTY_NS")) {
    cfg.alloc.remote_free_penalty_ns =
        env_u64("EMR_REMOTE_PENALTY_NS", cfg.alloc.remote_free_penalty_ns);
    // The explicit knob beats the startup calibration (Trial ctor only
    // substitutes the measured transfer cost when this stays false).
    cfg.alloc.remote_penalty_explicit = true;
  }
  if (env_has("EMR_TCACHE_CAP")) {
    cfg.alloc.tcache_cap = static_cast<std::size_t>(std::max<std::uint64_t>(
        env_u64("EMR_TCACHE_CAP", cfg.alloc.tcache_cap), 1));
  }
  if (env_has("EMR_FLUSH_FRACTION")) {
    cfg.alloc.flush_fraction =
        env_f64("EMR_FLUSH_FRACTION", cfg.alloc.flush_fraction);
  }
  if (env_has("EMR_DEFERRED_FLUSH")) {
    cfg.alloc.deferred_flush = env_i64("EMR_DEFERRED_FLUSH", 0) != 0;
  }
  if (env_has("EMR_CHURN_MS")) {
    // Deliberately unclamped: validate_config owns the range check so a
    // bad value fails loudly instead of being silently repaired.
    cfg.churn_interval_ms =
        static_cast<int>(env_i64("EMR_CHURN_MS", cfg.churn_interval_ms));
  }
  if (env_has("EMR_INSERT_FRAC")) {
    cfg.insert_frac = env_f64("EMR_INSERT_FRAC", cfg.insert_frac);
  }
  if (env_has("EMR_ERASE_FRAC")) {
    cfg.erase_frac = env_f64("EMR_ERASE_FRAC", cfg.erase_frac);
  }
  if (env_has("EMR_ARRIVAL")) {
    // Validity (closed | poisson | burst) is owned by validate_config.
    cfg.arrival = env_str("EMR_ARRIVAL", cfg.arrival);
  }
  if (env_has("EMR_RATE_OPS")) {
    // Deliberately unclamped: validate_config rejects rates <= 0 or
    // non-finite naming the range.
    cfg.rate_ops = env_f64("EMR_RATE_OPS", cfg.rate_ops);
  }
  if (env_has("EMR_ZIPF_S")) {
    cfg.zipf_s = env_f64("EMR_ZIPF_S", cfg.zipf_s);
  }
  {
    std::vector<double> phases;
    std::string bad;
    if (!env_f64_list_strict("EMR_PHASES", &phases, &bad)) {
      throw std::invalid_argument(
          "invalid EMR_PHASES token '" + bad +
          "' (expected a comma/space-separated list of per-phase rate "
          "multipliers, e.g. \"2,0.05\" for a busy half then a "
          "near-idle tail)");
    }
    if (!phases.empty()) cfg.phases = std::move(phases);
  }
  if (env_has("EMR_TENANTS")) {
    // Unclamped: validate_config rejects tenants < 1.
    cfg.tenants = static_cast<int>(env_i64("EMR_TENANTS", cfg.tenants));
  }
  {
    std::vector<double> weights;
    std::string bad;
    if (!env_f64_list_strict("EMR_TENANT_WEIGHTS", &weights, &bad)) {
      throw std::invalid_argument(
          "invalid EMR_TENANT_WEIGHTS token '" + bad +
          "' (expected a comma/space-separated list of per-tenant draw "
          "weights, e.g. \"10,1\" for a hot and a cold tenant)");
    }
    if (!weights.empty()) cfg.tenant_weights = std::move(weights);
  }
  if (env_has("EMR_RECLAIMER_DAEMON")) {
    // Validity (off | optimistic | aggressive) is owned by
    // validate_config via daemon_level_from_name.
    cfg.reclaimer_daemon =
        env_str("EMR_RECLAIMER_DAEMON", cfg.reclaimer_daemon);
  }
  if (env_has("EMR_DAEMON_MS")) {
    // Unclamped: validate_config rejects periods < 1.
    cfg.daemon_period_ms =
        static_cast<int>(env_i64("EMR_DAEMON_MS", cfg.daemon_period_ms));
  }
  if (env_has("EMR_PIN")) {
    // Validity (off | compact | scatter) is owned by validate_config
    // via affinity::pin_mode_from_name.
    cfg.pin = env_str("EMR_PIN", cfg.pin);
  }
  if (env_has("EMR_WORKLOAD")) {
    // Validity (set | pipeline) is owned by validate_config.
    cfg.workload = env_str("EMR_WORKLOAD", cfg.workload);
  }
  if (env_has("EMR_PRODUCERS")) {
    // Unclamped: validate_config rejects values outside [0, nthreads)
    // and producers set on the set workload.
    cfg.producers =
        static_cast<int>(env_i64("EMR_PRODUCERS", cfg.producers));
  }
  if (env_has("EMR_QUEUE_CAP")) {
    const long long v = env_i64("EMR_QUEUE_CAP", -1);
    if (v < 0) {
      throw std::invalid_argument(
          "invalid EMR_QUEUE_CAP: '" + env_str("EMR_QUEUE_CAP", "") +
          "' (must be >= 0, where 0 is an unbounded queue)");
    }
    cfg.queue_cap = static_cast<std::uint64_t>(v);
  }
  if (env_has("EMR_CALIBRATE")) {
    // Validity (on | off) is owned by validate_config.
    cfg.calibrate = env_str("EMR_CALIBRATE", cfg.calibrate);
  }
}

TrialConfig config_from_env() {
  TrialConfig cfg;
  apply_env_overrides(cfg);
  return cfg;
}

std::vector<int> thread_sweep_from_env(std::vector<int> def) {
  std::vector<int> parsed;
  std::string bad;
  if (!env_int_list_strict("EMR_THREADS", &parsed, &bad)) {
    // Never shrink a sweep silently: a typo'd EMR_THREADS would
    // otherwise drop columns (or empty the sweep entirely) and the
    // bench would "pass" on the wrong experiment.
    std::fprintf(stderr,
                 "harness: malformed EMR_THREADS token '%s'; "
                 "ignoring the variable and running the default sweep\n",
                 bad.c_str());
    return def;
  }
  if (parsed.empty()) return def;  // unset or empty
  for (int& n : parsed) n = std::clamp(n, 1, 1024);
  return parsed;
}

std::size_t node_size_for_ds(const std::string& ds) {
  return ds::node_size_for_ds(ds);  // sizeof the structure's real nodes
}

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += " ";
    out += n;
  }
  return out;
}

bool known_name(const std::vector<std::string>& names,
                const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

void validate_config(const TrialConfig& cfg) {
  if (cfg.insert_frac < 0.0 || cfg.erase_frac < 0.0 ||
      cfg.insert_frac > 1.0 || cfg.erase_frac > 1.0 ||
      cfg.insert_frac + cfg.erase_frac > 1.0) {
    throw std::invalid_argument(
        "invalid op mix: insert_frac=" + std::to_string(cfg.insert_frac) +
        " erase_frac=" + std::to_string(cfg.erase_frac) +
        " (each must be in [0,1] and sum to at most 1)");
  }
  if (cfg.measure_ms <= 0) {
    throw std::invalid_argument(
        "invalid measure_ms: " + std::to_string(cfg.measure_ms) +
        " (valid range: >= 1 millisecond — a zero-length window divides "
        "by nothing and reports garbage)");
  }
  if (cfg.trials <= 0) {
    throw std::invalid_argument(
        "invalid trials: " + std::to_string(cfg.trials) +
        " (valid range: >= 1)");
  }
  if (cfg.schedule_sample_ms <= 0) {
    throw std::invalid_argument(
        "invalid schedule_sample_ms: " +
        std::to_string(cfg.schedule_sample_ms) +
        " (valid range: >= 1 millisecond — the schedule/latency sampler "
        "period)");
  }
  if (cfg.churn_interval_ms < 0) {
    throw std::invalid_argument(
        "invalid churn_interval_ms: " + std::to_string(cfg.churn_interval_ms) +
        " (valid range: >= 0, where 0 disables churn)");
  }
  if (cfg.churn_interval_ms > 0 && cfg.nthreads < 2) {
    throw std::invalid_argument(
        "invalid churn config: churn_interval_ms=" +
        std::to_string(cfg.churn_interval_ms) + " needs nthreads >= 2 (got " +
        std::to_string(cfg.nthreads) + "): churn joins one worker while "
        "the others keep running, which a lone worker cannot do");
  }
  if (cfg.arrival != "closed" && cfg.arrival != "poisson" &&
      cfg.arrival != "burst") {
    throw std::invalid_argument(
        "unknown arrival process: '" + cfg.arrival +
        "' (valid: closed poisson burst)");
  }
  if (!std::isfinite(cfg.rate_ops) || cfg.rate_ops <= 0.0) {
    throw std::invalid_argument(
        "invalid rate_ops: " + std::to_string(cfg.rate_ops) +
        " (valid range: a finite offered load > 0 ops/sec)");
  }
  if (!std::isfinite(cfg.zipf_s) || cfg.zipf_s < 0.0) {
    throw std::invalid_argument(
        "invalid zipf_s: " + std::to_string(cfg.zipf_s) +
        " (valid range: >= 0, where 0 is a uniform key draw)");
  }
  if (cfg.phases.empty()) {
    throw std::invalid_argument(
        "invalid phases: empty (valid: at least one finite rate "
        "multiplier > 0; {1.0} is the flat default)");
  }
  for (double m : cfg.phases) {
    if (!std::isfinite(m) || m <= 0.0) {
      throw std::invalid_argument(
          "invalid phase multiplier: " + std::to_string(m) +
          " (valid range: finite and > 0)");
    }
  }
  if (cfg.tenants < 1) {
    throw std::invalid_argument(
        "invalid tenants: " + std::to_string(cfg.tenants) +
        " (valid range: >= 1, where 1 is the classic single domain)");
  }
  if (!cfg.tenant_weights.empty() &&
      cfg.tenant_weights.size() != static_cast<std::size_t>(cfg.tenants)) {
    throw std::invalid_argument(
        "invalid tenant_weights: " +
        std::to_string(cfg.tenant_weights.size()) + " entries for " +
        std::to_string(cfg.tenants) +
        " tenants (must be empty for a uniform draw, or exactly one "
        "weight per tenant)");
  }
  for (double w : cfg.tenant_weights) {
    if (!std::isfinite(w) || w <= 0.0) {
      throw std::invalid_argument(
          "invalid tenant weight: " + std::to_string(w) +
          " (valid range: finite and > 0)");
    }
  }
  if (cfg.daemon_period_ms < 1) {
    throw std::invalid_argument(
        "invalid daemon_period_ms: " + std::to_string(cfg.daemon_period_ms) +
        " (valid range: >= 1 millisecond — the reclaimer daemon's tick "
        "period)");
  }
  // Throws listing the valid levels on an unknown name.
  smr::daemon_level_from_name(cfg.reclaimer_daemon);
  // Throws listing the valid layouts on an unknown name (EMR_PIN).
  affinity::pin_mode_from_name(cfg.pin);
  if (cfg.calibrate != "on" && cfg.calibrate != "off") {
    throw std::invalid_argument(
        "unknown calibrate switch: '" + cfg.calibrate +
        "' (EMR_CALIBRATE; valid: on off — whether the measured "
        "cache-line transfer cost replaces the default remote-free "
        "penalty)");
  }
  if (cfg.arrival != "closed") {
    const double expected =
        cfg.rate_ops * static_cast<double>(cfg.measure_ms) / 1000.0;
    if (expected > static_cast<double>(kMaxArrivals)) {
      throw std::invalid_argument(
          "open-loop schedule too large: rate_ops x window = " +
          std::to_string(expected) + " expected events (valid range: <= " +
          std::to_string(kMaxArrivals) +
          " — lower rate_ops or measure_ms)");
    }
  }
  if (cfg.workload != "set" && cfg.workload != "pipeline") {
    throw std::invalid_argument(
        "unknown workload: '" + cfg.workload +
        "' (EMR_WORKLOAD; valid: set pipeline)");
  }
  if (cfg.workload == "set") {
    if (cfg.producers != 0) {
      throw std::invalid_argument(
          "invalid producers: " + std::to_string(cfg.producers) +
          " (EMR_PRODUCERS applies only to the pipeline workload; set "
          "EMR_WORKLOAD=pipeline or leave it 0)");
    }
    if (cfg.queue_cap != 0) {
      throw std::invalid_argument(
          "invalid queue_cap: " + std::to_string(cfg.queue_cap) +
          " (EMR_QUEUE_CAP applies only to the pipeline workload; set "
          "EMR_WORKLOAD=pipeline or leave it 0)");
    }
  } else {
    if (!known_name(ds::queue_names(), cfg.ds)) {
      throw std::invalid_argument(
          "invalid pipeline ds: '" + cfg.ds +
          "' (the pipeline workload drives a queue; valid: " +
          join_names(ds::queue_names()) + ")");
    }
    if (cfg.producers < 0 || cfg.producers >= std::max(cfg.nthreads, 1)) {
      throw std::invalid_argument(
          "invalid producers: " + std::to_string(cfg.producers) +
          " with nthreads=" + std::to_string(cfg.nthreads) +
          " (valid range: 0 <= producers < nthreads — 0 runs every "
          "worker symmetric, and a role split needs at least one "
          "consumer)");
    }
    if (cfg.arrival != "closed") {
      throw std::invalid_argument(
          "invalid pipeline arrival: '" + cfg.arrival +
          "' (the pipeline workload is closed-loop only; valid: closed)");
    }
    if (cfg.tenants != 1) {
      throw std::invalid_argument(
          "invalid pipeline tenants: " + std::to_string(cfg.tenants) +
          " (the pipeline workload drives a single queue; valid: 1)");
    }
  }
  // The set-workload ds name is not re-checked here: ds::make_set (run
  // from Trial's constructor right after this) already fails fast
  // listing set_names().
  if (!known_name(smr::all_factory_names(), cfg.reclaimer)) {
    throw std::invalid_argument(
        "unknown reclaimer: '" + cfg.reclaimer +
        "' (valid: " + join_names(smr::all_factory_names()) + ")");
  }
  if (!known_name(alloc::allocator_names(), cfg.allocator)) {
    throw std::invalid_argument(
        "unknown allocator: '" + cfg.allocator +
        "' (valid: " + join_names(alloc::allocator_names()) + ")");
  }
}

// -------------------------------------------------------------- opstream

OpStream::OpStream(std::uint64_t seed, int tid, double insert_frac,
                   double erase_frac, std::uint64_t keyrange)
    : rng_(seed ^ (static_cast<std::uint64_t>(tid) + 1) *
                      0x9E3779B97F4A7C15ULL),
      insert_frac_(insert_frac),
      erase_frac_(erase_frac),
      keyrange_(std::max<std::uint64_t>(keyrange, 1)) {}

OpStream::OpStream(const TrialConfig& cfg, int tid)
    : OpStream(cfg.seed, tid, cfg.insert_frac, cfg.erase_frac,
               cfg.keyrange) {
  // Both extensions are draw-for-draw conservative: with zipf_s == 0
  // and tenants <= 1 next() consumes exactly the legacy random stream,
  // so pre-service-mode trials replay bit-identically.
  if (cfg.zipf_s > 0.0) {
    zipf_ = std::make_unique<Zipf>(keyrange_, cfg.zipf_s);
  }
  tenants_ = std::max(cfg.tenants, 1);
  if (tenants_ > 1 && !cfg.tenant_weights.empty()) {
    double total = 0.0;
    for (double w : cfg.tenant_weights) total += w;
    tenant_cdf_.reserve(cfg.tenant_weights.size());
    double acc = 0.0;
    for (double w : cfg.tenant_weights) {
      acc += w;
      tenant_cdf_.push_back(acc / total);
    }
  }
}

Op OpStream::next() {
  const double r = rng_.next_double();
  Op op;
  if (r < insert_frac_) {
    op.kind = Op::kInsert;
  } else if (r < insert_frac_ + erase_frac_) {
    op.kind = Op::kErase;
  } else {
    op.kind = Op::kLookup;
  }
  // Same per-event draw order as core/arrival.hpp's generator (kind,
  // key, tenant), and like it the zipf path consumes exactly one
  // uniform per key.
  op.key = zipf_ ? zipf_->sample(rng_.next_double())
                 : rng_.next_range(keyrange_);
  if (tenants_ > 1) {
    if (tenant_cdf_.empty()) {
      op.tenant = static_cast<std::uint32_t>(
          rng_.next_range(static_cast<std::uint64_t>(tenants_)));
    } else {
      const double u = rng_.next_double();
      std::uint32_t t = 0;
      while (t + 1 < static_cast<std::uint32_t>(tenants_) &&
             u >= tenant_cdf_[t]) {
        ++t;
      }
      op.tenant = t;
    }
  }
  return op;
}

// ----------------------------------------------------------------- trial

namespace {

/// Deterministic half-full prefill through the normal op path on a
/// transient registration: every even key, in an order shuffled from the
/// trial seed so the unbalanced occtree is not built from a sorted
/// stream (which would degenerate it into a list). Tenant 0's order is
/// the pre-service-mode one bit-for-bit; further tenants mix their
/// index into the shuffle seed.
void prefill(ds::ConcurrentSet& set, smr::Reclaimer& r,
             const TrialConfig& cfg, int tenant) {
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(cfg.keyrange / 2 + 1));
  for (std::uint64_t k = 0; k < cfg.keyrange; k += 2) keys.push_back(k);
  // Distinct xor constant: seed ^ golden-ratio is already worker 0's
  // OpStream seed, and the prefill order must not correlate with it.
  Rng rng(cfg.seed ^ 0xC3A5C85C97CB3127ULL ^
          (static_cast<std::uint64_t>(tenant) * 0x9E3779B97F4A7C15ULL));
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.next_range(i)]);
  }
  smr::ThreadHandle h = r.register_thread();
  // Structural retires during the prefill (e.g. abtree splits) should
  // already land on the right tenant's ledger.
  r.executor().set_lane_tenant(h.slot(), tenant);
  for (std::uint64_t k : keys) set.insert(h, k);
}

}  // namespace

Trial::Trial(const TrialConfig& cfg) : cfg_(cfg) {
  validate_config(cfg_);

  // Clock first (idempotent): every timestamp below — and the spin the
  // allocator model burns per remote block — rides the calibrated
  // TSC/pause rates from here on.
  timing::calibrate_clock();

  const smr::DaemonLevel dlevel =
      smr::daemon_level_from_name(cfg_.reclaimer_daemon);

  smr::SmrConfig scfg = cfg_.smr;
  scfg.num_threads = std::max(cfg_.nthreads, 1);
  scfg.tenants = std::max(cfg_.tenants, 1);
  // The daemon registers its own ThreadHandle: budget its slot on top
  // of the configured churn/teardown headroom.
  if (dlevel != smr::DaemonLevel::kOff) scfg.extra_slots += 1;

  // Allocator lanes are keyed by registration slot, so the lane table
  // covers the whole slot capacity (workers + churn/teardown headroom).
  alloc::AllocConfig acfg = cfg_.alloc;
  acfg.max_threads = static_cast<int>(scfg.slot_capacity());
  // Measured remote cost: the startup ping-pong's one-way cache-line
  // transfer latency replaces the configured default — unless the knob
  // (or a bench sweep) set the penalty explicitly, or this machine has
  // fewer than two CPUs to measure with (measured == false keeps the
  // deterministic default).
  if (cfg_.calibrate == "on" && !acfg.remote_penalty_explicit) {
    const calibration::RemoteCost& rc = calibration::remote_cost();
    if (rc.measured) {
      acfg.remote_free_penalty_ns = rc.one_way_ns;
      penalty_measured_ = true;
    }
  }
  effective_penalty_ns_ = acfg.remote_free_penalty_ns;
  allocator_ = alloc::make_allocator(cfg_.allocator, acfg);
  // Pin layout for the trial's threads: workers take slots [0, nthreads),
  // the reclaimer daemon the one after (empty = run unpinned).
  pin_map_ = affinity::pin_map(affinity::pin_mode_from_name(cfg_.pin),
                               std::max(cfg_.nthreads, 1) + 1);

  smr::SmrContext ctx;
  ctx.allocator = allocator_.get();
  ctx.timeline = &timeline_;
  ctx.garbage = &garbage_;
  bundle_ = smr::make_reclaimer(cfg_.reclaimer, ctx, scfg);

  if (dlevel != smr::DaemonLevel::kOff) {
    // Armed here, single-threaded, before any structure or worker
    // touches the bundle: from this point the per-lane daemon locks are
    // real (and with the daemon off they are never armed, keeping the
    // op path instruction-identical to the pre-daemon harness).
    bundle_.reclaimer->executor().set_daemon_hooked(true);
    daemon_ = std::make_unique<smr::ReclaimerDaemon>(
        *bundle_.reclaimer, dlevel, cfg_.daemon_period_ms);
    if (!pin_map_.empty()) daemon_->set_pin_cpu(pin_map_.back());
  }

  if (cfg_.workload == "pipeline") {
    ds::QueueConfig qcfg;
    qcfg.capacity = cfg_.queue_cap;
    qcfg.num_threads = std::max(cfg_.nthreads, 1);
    queue_ = ds::make_queue(cfg_.ds, qcfg, bundle_.reclaimer.get());
  } else {
    ds::SetConfig dcfg;
    dcfg.keyrange = cfg_.keyrange;
    dcfg.num_threads = std::max(cfg_.nthreads, 1);
    // One structure per tenant, all sharing this bundle: the tenants are
    // separate reclamation *domains* only in the accounting sense — the
    // executor ledgers attribute retire/backlog per tenant.
    const int ntenants = std::max(cfg_.tenants, 1);
    sets_.reserve(static_cast<std::size_t>(ntenants));
    for (int t = 0; t < ntenants; ++t) {
      sets_.push_back(ds::make_set(cfg_.ds, dcfg, bundle_.reclaimer.get()));
    }
  }
}

Trial::~Trial() = default;

TrialResult Trial::run() {
  if (ran_) throw std::logic_error("Trial::run called twice");
  ran_ = true;

  const int nthreads = std::max(cfg_.nthreads, 1);
  const int lanes = static_cast<int>(bundle_.reclaimer->slot_capacity());
  const bool service = cfg_.arrival != "closed";
  const bool pipeline = cfg_.workload == "pipeline";
  // Pipeline trials have no tenant structures (sets_ is empty) but keep
  // the tenant arrays at their single-domain size so the shared
  // accounting below never indexes an empty table.
  const int ntenants = std::max<int>(static_cast<int>(sets_.size()), 1);
  const bool multi = ntenants > 1;

  // Instruments stay disarmed through the prefill. Timeline lanes cover
  // the whole registration-slot table: under churn an event can land on
  // any slot, not just the first nthreads.
  timeline_.reset(lanes, 0, cfg_.timeline_min_duration_ns, false);
  garbage_.reset(false);
  // The latency recorder arms before the workers spawn (its lane table
  // is allocated off the hot path); workers only record once `go` opens
  // the measured window. A latency-feedback schedule forces it on —
  // the controller is open-loop without the signal. Channels split the
  // service tail by op kind (insert/erase/lookup).
  const bool want_feedback = bundle_.schedule->wants_latency_feedback();
  const bool record_lat = cfg_.enable_latency || want_feedback;
  latency_.reset(lanes, Op::kNumKinds, record_lat);
  // Queueing delay (service start minus scheduled arrival) only exists
  // against an arrival schedule; the per-tenant service recorder keys
  // its "lanes" by tenant.
  queue_latency_.reset(lanes, service);
  tenant_latency_.reset(ntenants, record_lat && multi);
  for (std::size_t t = 0; t < sets_.size(); ++t) {
    prefill(*sets_[t], *bundle_.reclaimer, cfg_, static_cast<int>(t));
  }
  if (pipeline) {
    // Queue prefill on a transient registration, so consumers find work
    // from the first tick instead of spinning on empty until the
    // producers ramp: half the capacity when bounded, one modest batch
    // per worker when unbounded.
    const std::uint64_t want =
        cfg_.queue_cap != 0 ? cfg_.queue_cap / 2
                            : static_cast<std::uint64_t>(nthreads) * 64;
    smr::ThreadHandle h = bundle_.reclaimer->register_thread();
    for (std::uint64_t i = 0; i < want; ++i) {
      if (!queue_->enqueue(h, i)) break;
    }
  }

  // Open-loop traffic: ONE global schedule generated up front — a pure
  // function of the config, never of the run — and worker w serves the
  // events whose index is congruent to w mod nthreads. The schedule
  // (hence the offered load) is byte-identical at every worker count;
  // only the serving capacity changes.
  std::vector<Arrival> schedule;
  if (service) {
    ArrivalConfig acfg;
    acfg.process = cfg_.arrival == "burst" ? ArrivalConfig::Process::kBurst
                                           : ArrivalConfig::Process::kPoisson;
    acfg.rate_ops = cfg_.rate_ops;
    acfg.duration_ns =
        static_cast<std::uint64_t>(cfg_.measure_ms) * 1'000'000u;
    acfg.seed = cfg_.seed;
    acfg.insert_frac = cfg_.insert_frac;
    acfg.erase_frac = cfg_.erase_frac;
    acfg.keyrange = cfg_.keyrange;
    acfg.zipf_s = cfg_.zipf_s;
    acfg.phases = cfg_.phases;
    acfg.tenants = ntenants;
    acfg.tenant_weights = cfg_.tenant_weights;
    schedule = generate_arrivals(acfg);
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  // Service mode: per-worker-index schedule cursors. A churned-out
  // incarnation parks its cursor at the next unserved event, and the
  // replacement thread resumes exactly there — the schedule is served
  // once regardless of churn.
  std::unique_ptr<std::atomic<std::uint64_t>[]> cursors;
  if (service) {
    cursors.reset(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
        nthreads)]);
    for (int i = 0; i < nthreads; ++i) {
      cursors[static_cast<std::size_t>(i)].store(
          static_cast<std::uint64_t>(i), std::memory_order_relaxed);
    }
  }
  // Completed-op counts per tenant (only reported multi-tenant, but the
  // single slot is cheap enough to keep unconditionally).
  std::unique_ptr<std::atomic<std::uint64_t>[]> tenant_done(
      new std::atomic<std::uint64_t>[static_cast<std::size_t>(ntenants)]);
  for (int t = 0; t < ntenants; ++t) {
    tenant_done[static_cast<std::size_t>(t)].store(
        0, std::memory_order_relaxed);
  }
  // The measured window's opening instant, published before `go` so
  // service workers can place scheduled arrivals on the wall clock.
  std::atomic<std::uint64_t> epoch_ns{0};
  // Per-worker-lane state: churn replaces the thread behind a lane, so
  // the op count accumulates atomically and the retire flag singles out
  // one incarnation without stopping the trial.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts(
      new std::atomic<std::uint64_t>[static_cast<std::size_t>(nthreads)]);
  std::unique_ptr<std::atomic<bool>[]> retire_worker(
      new std::atomic<bool>[static_cast<std::size_t>(nthreads)]);
  for (int i = 0; i < nthreads; ++i) {
    counts[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    retire_worker[static_cast<std::size_t>(i)].store(
        false, std::memory_order_relaxed);
  }
  // Pipeline per-role accumulators: successful ops and refused polls by
  // role, folded in by each worker incarnation as it exits.
  std::atomic<std::uint64_t> enq_ok{0};
  std::atomic<std::uint64_t> enq_failed{0};
  std::atomic<std::uint64_t> deq_ok{0};
  std::atomic<std::uint64_t> deq_failed{0};

  // One worker incarnation: registers its own ThreadHandle (released on
  // exit, so a churned-out thread's backlog is adopted or drained, never
  // leaked), then either drives its deterministic op stream (closed
  // loop) or serves its residue class of the arrival schedule (service
  // mode) until the trial stops or the churn controller retires this
  // incarnation. `incarnation` seeds closed-loop replacements onto
  // fresh streams; service replacements resume the shared cursor.
  auto worker_fn = [&](int widx, std::uint64_t incarnation) {
    // Pin before registering: every instruction of the measured window
    // (and a churn replacement's whole life) runs on the layout's CPU.
    if (!pin_map_.empty()) {
      int layout_slot = widx;
      // Pipeline role split: producers keep the layout's front slots
      // and consumers count theirs from the back, so the two roles sit
      // on opposite ends of the EMR_PIN layout — allocation (producer)
      // and retire/free (consumer) land on the most distant cores the
      // mask offers, and the remote-free penalty is actually charged.
      if (pipeline && cfg_.producers > 0 && widx >= cfg_.producers) {
        layout_slot = nthreads - 1 - (widx - cfg_.producers);
      }
      affinity::pin_current_thread(
          pin_map_[static_cast<std::size_t>(layout_slot)]);
    }
    smr::ThreadHandle handle = bundle_.reclaimer->register_thread();
    smr::FreeExecutor& ex = bundle_.reclaimer->executor();
    std::atomic<bool>& retire = retire_worker[static_cast<std::size_t>(widx)];
    // Hoisted: the recorder's armed state is fixed for the whole trial,
    // so the disabled path costs one register-held branch per op.
    const bool record_latency = latency_.enabled();
    const int lane = handle.slot();
    std::vector<std::uint64_t> done_by_tenant(
        static_cast<std::size_t>(ntenants), 0);
    std::uint64_t done = 0;
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    if (pipeline) {
      ds::ConcurrentQueue& q = *queue_;
      // Role: the first `producers` worker indices enqueue only, the
      // rest dequeue only; producers == 0 alternates both kinds on
      // every worker — the symmetric layout, where a freed node
      // restocks the freeing worker's own thread cache and the next
      // enqueue re-allocates (and re-owns) it locally.
      const bool split = cfg_.producers > 0;
      const bool is_producer = split && widx < cfg_.producers;
      std::uint64_t seq = 0;
      std::uint64_t eok = 0, efail = 0, dok = 0, dfail = 0;
      while (!stop.load(std::memory_order_relaxed) &&
             !retire.load(std::memory_order_relaxed)) {
        const bool do_enq = split ? is_producer : (seq & 1) == 0;
        const std::uint64_t op_t0 = record_latency ? now_ns() : 0;
        bool ok;
        if (do_enq) {
          // Tagged value (worker id | sequence): deterministic and
          // unique, so a post-mortem dump reads back to its producer.
          ok = q.enqueue(handle,
                         (static_cast<std::uint64_t>(widx) << 40) |
                             (seq & 0xFF'FFFF'FFFFull));
          if (ok) {
            ++eok;
          } else {
            ++efail;
          }
        } else {
          std::uint64_t value = 0;
          ok = q.dequeue(handle, &value);
          if (ok) {
            ++dok;
          } else {
            ++dfail;
          }
        }
        if (record_latency) {
          latency_.record(lane, do_enq ? Op::kEnqueue : Op::kDequeue,
                          now_ns() - op_t0);
        }
        ++seq;
        if (ok) {
          ++done;
        } else {
          // Backpressure: a full (producer) or empty (consumer) queue
          // costs a yield, not a busy retry storm.
          std::this_thread::yield();
        }
      }
      enq_ok.fetch_add(eok, std::memory_order_relaxed);
      enq_failed.fetch_add(efail, std::memory_order_relaxed);
      deq_ok.fetch_add(dok, std::memory_order_relaxed);
      deq_failed.fetch_add(dfail, std::memory_order_relaxed);
    } else if (!service) {
      OpStream ops(cfg_, static_cast<int>(incarnation) * nthreads + widx);
      while (!stop.load(std::memory_order_relaxed) &&
             !retire.load(std::memory_order_relaxed)) {
        const Op op = ops.next();
        ds::ConcurrentSet& set = *sets_[op.tenant];
        if (multi) ex.set_lane_tenant(lane, static_cast<int>(op.tenant));
        const std::uint64_t op_t0 = record_latency ? now_ns() : 0;
        // Each ds operation opens its own smr::Guard (begin_op/end_op).
        switch (op.kind) {
          case Op::kInsert:
            set.insert(handle, op.key);
            break;
          case Op::kErase:
            set.erase(handle, op.key);
            break;
          case Op::kLookup:
            set.contains(handle, op.key);
            break;
        }
        if (record_latency) {
          const std::uint64_t d = now_ns() - op_t0;
          latency_.record(lane, op.kind, d);
          tenant_latency_.record(static_cast<int>(op.tenant), d);
        }
        ++done_by_tenant[op.tenant];
        ++done;
      }
    } else {
      const std::uint64_t win_t0 = epoch_ns.load(std::memory_order_relaxed);
      const std::uint64_t n = schedule.size();
      std::atomic<std::uint64_t>& cursor =
          cursors[static_cast<std::size_t>(widx)];
      while (!stop.load(std::memory_order_relaxed) &&
             !retire.load(std::memory_order_relaxed)) {
        const std::uint64_t idx = cursor.load(std::memory_order_relaxed);
        if (idx >= n) break;  // this residue class is fully served
        const Arrival a = schedule[static_cast<std::size_t>(idx)];
        const std::uint64_t due = win_t0 + a.t_ns;
        // Open loop: hold the op until its scheduled instant — coarse
        // sleep while far out, yield-spin near — without ever blocking
        // past stop or churn retirement.
        std::uint64_t now = now_ns();
        bool bailed = false;
        while (now < due) {
          if (stop.load(std::memory_order_relaxed) ||
              retire.load(std::memory_order_relaxed)) {
            bailed = true;
            break;
          }
          const std::uint64_t wait_ns = due - now;
          if (wait_ns > 500'000) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(wait_ns - 250'000));
          } else {
            std::this_thread::yield();
          }
          now = now_ns();
        }
        if (bailed) break;  // the unserved event stays at the cursor
        // Per-widx cursor: only this incarnation (or its churn
        // replacement, after a join) advances it, so a plain store is
        // enough.
        cursor.store(idx + static_cast<std::uint64_t>(nthreads),
                     std::memory_order_relaxed);
        // Queueing delay is measured against the *scheduled* instant:
        // past saturation `now` falls ever further behind `due` and the
        // tail explodes while completed throughput plateaus.
        queue_latency_.record(lane, now > due ? now - due : 0);
        if (multi) ex.set_lane_tenant(lane, a.tenant);
        ds::ConcurrentSet& set = *sets_[a.tenant];
        const std::uint64_t op_t0 = record_latency ? now_ns() : 0;
        switch (static_cast<Op::Kind>(a.kind)) {
          case Op::kInsert:
            set.insert(handle, a.key);
            break;
          case Op::kErase:
            set.erase(handle, a.key);
            break;
          case Op::kLookup:
            set.contains(handle, a.key);
            break;
        }
        if (record_latency) {
          const std::uint64_t d = now_ns() - op_t0;
          latency_.record(lane, a.kind, d);
          tenant_latency_.record(a.tenant, d);
        }
        ++done_by_tenant[a.tenant];
        ++done;
      }
    }
    counts[static_cast<std::size_t>(widx)].fetch_add(
        done, std::memory_order_relaxed);
    for (int t = 0; t < ntenants; ++t) {
      tenant_done[static_cast<std::size_t>(t)].fetch_add(
          done_by_tenant[static_cast<std::size_t>(t)],
          std::memory_order_relaxed);
    }
  };

  // The daemon spans the whole measured window (and the brief worker
  // spawn ramp): start() registers its handle and begins ticking now.
  if (daemon_) daemon_->start();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nthreads));
  for (int widx = 0; widx < nthreads; ++widx) {
    workers.emplace_back(worker_fn, widx, std::uint64_t{0});
  }

  const alloc::AllocStats alloc_before = allocator_->stats();
  const smr::SmrStats smr_before = bundle_.reclaimer->stats();
  const std::uint64_t t0 = now_ns();
  // Published before the `go` release below, so every service worker
  // reads the window's opening instant exactly once.
  epoch_ns.store(t0, std::memory_order_relaxed);
  timeline_.reset(lanes, t0, cfg_.timeline_min_duration_ns,
                  cfg_.enable_timeline);
  garbage_.reset(cfg_.enable_garbage);

  // Free-schedule sampler: a backlog / drain-quantum / population
  // timeline across the measured window, doubling as the tail-latency
  // feedback pump for latency-steered schedules. Lane counters are
  // atomics and drain_quota is a read-only policy query, so sampling
  // races nothing; the latency recorder's counters are relaxed atomics,
  // so a mid-trial merge is stale-but-never-torn.
  std::vector<ScheduleSample> schedule_trace;
  std::thread sampler;
  if (cfg_.enable_schedule_trace || want_feedback) {
    const int sample_ms = cfg_.schedule_sample_ms;  // validated >= 1
    sampler = std::thread([&, sample_ms] {
      smr::FreeExecutor& ex = bundle_.reclaimer->executor();
      smr::FreeSchedule& sched = *bundle_.schedule;
      while (!stop.load(std::memory_order_relaxed)) {
        if (want_feedback) {
          // The window-cumulative p99.9: deliberately conservative —
          // once a drain burst has polluted the tail the controller
          // stays backed off, instead of oscillating on a noisy
          // per-beat estimate (docs/LATENCY.md).
          const LatencyHistogram h = latency_.merged();
          if (h.count > 0) {
            sched.on_tail_latency(
                static_cast<std::uint64_t>(latency_percentile(h, 0.999)));
          }
        }
        if (cfg_.enable_schedule_trace) {
          std::uint64_t total = 0;
          smr::LaneStats busiest;
          for (std::size_t i = 0; i < ex.lane_count(); ++i) {
            const smr::LaneStats ls = ex.lane_stats(static_cast<int>(i));
            total += ls.backlog;
            if (ls.backlog >= busiest.backlog) busiest = ls;
          }
          ScheduleSample s;
          s.t_ms = (now_ns() - t0) / 1'000'000;
          s.backlog = total;
          s.drain_quota = sched.drain_quota(busiest);
          s.population = bundle_.reclaimer->active_slots();
          schedule_trace.push_back(s);
          if (cfg_.enable_garbage) {
            // The schemes only report to the census while ops run; in an
            // open-loop quiet phase the executor-held backlog *is* the
            // garbage story, so the sampler feeds it in under the
            // current epoch (record keeps the per-epoch max).
            garbage_.record(bundle_.reclaimer->stats().epochs_advanced,
                            total);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(sample_ms));
      }
    });
  }

  go.store(true, std::memory_order_release);

  std::uint64_t churned = 0;
  if (cfg_.churn_interval_ms <= 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.measure_ms));
  } else {
    // Churn controller: round-robin over the workers, joining one and
    // spawning a registered replacement every interval. The join/spawn
    // gap is measured work — that is the churn cost the paper's fixed
    // populations cannot show.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(cfg_.measure_ms);
    int victim = 0;
    std::uint64_t incarnation = 1;
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      const auto nap =
          std::min<std::chrono::steady_clock::duration>(
              std::chrono::milliseconds(cfg_.churn_interval_ms),
              deadline - now);
      std::this_thread::sleep_for(nap);
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::atomic<bool>& retire =
          retire_worker[static_cast<std::size_t>(victim)];
      retire.store(true, std::memory_order_relaxed);
      workers[static_cast<std::size_t>(victim)].join();
      retire.store(false, std::memory_order_relaxed);
      workers[static_cast<std::size_t>(victim)] =
          std::thread(worker_fn, victim, incarnation++);
      ++churned;
      victim = (victim + 1) % nthreads;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  const std::uint64_t t1 = now_ns();
  for (std::thread& w : workers) w.join();
  if (sampler.joinable()) sampler.join();
  // The daemon's window ends with the workers': joined before the
  // after-snapshots so its drains land inside the window or not at all,
  // and well before flush_all / teardown touch the executors.
  if (daemon_) daemon_->stop();

  const alloc::AllocStats alloc_after = allocator_->stats();
  const smr::SmrStats smr_after = bundle_.reclaimer->stats();
  // Per-tenant ledgers snapshot *before* the teardown flush below wipes
  // the end-of-window backlog.
  std::vector<smr::TenantStats> tenant_after;
  if (multi) {
    smr::FreeExecutor& ex = bundle_.reclaimer->executor();
    tenant_after.reserve(static_cast<std::size_t>(ntenants));
    for (int t = 0; t < ntenants; ++t) {
      tenant_after.push_back(ex.tenant_stats(t));
    }
  }

  // Teardown frees are not part of the story the instruments tell.
  timeline_.disarm();
  garbage_.disarm();
  bundle_.reclaimer->flush_all();
  allocator_->flush_thread_caches();

  TrialResult r;
  for (int i = 0; i < nthreads; ++i) {
    r.ops += counts[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  r.threads_churned = churned;
  // Read after flush_all so this is the post-teardown ledger: with
  // routing on, stashed == flushed and stash_backlog_end == 0, or
  // blocks were stranded (a routing bug the ledger exists to catch).
  {
    smr::FreeExecutor& ex = bundle_.reclaimer->executor();
    r.stashed = ex.total_stashed();
    r.flushed = ex.total_flushed();
    r.stash_backlog_end = ex.total_stash_backlog();
  }
  for (const ScheduleSample& s : schedule_trace) {
    r.peak_backlog = std::max(r.peak_backlog, s.backlog);
    r.max_drain_quota = std::max(r.max_drain_quota, s.drain_quota);
  }
  r.schedule_trace = std::move(schedule_trace);
  // Degenerate-window guard: the wall clock is floored at 1 ns so mops
  // (and the per-thread-time percentages below) can never divide by
  // zero into inf/NaN — which emit_json would then write as invalid
  // JSON (report.cpp quotes non-finite cells as a second line of
  // defense).
  r.wall_ns = std::max<std::uint64_t>(t1 - t0, 1);
  r.mops = static_cast<double>(r.ops) * 1e3 / static_cast<double>(r.wall_ns);
  const LatencyHistogram lat = latency_.merged();
  r.lat_ops = lat.count;
  r.lat_p50_ns = latency_percentile(lat, 0.50);
  r.lat_p99_ns = latency_percentile(lat, 0.99);
  r.lat_p999_ns = latency_percentile(lat, 0.999);
  r.lat_max_ns = lat.max_ns;
  for (int k = 0; k < Op::kNumKinds; ++k) {
    const LatencyHistogram h = latency_.merged_channel(k);
    TrialResult::OpKindLatency& kl = r.kind_lat[k];
    kl.ops = h.count;
    kl.p50_ns = latency_percentile(h, 0.50);
    kl.p99_ns = latency_percentile(h, 0.99);
    kl.p999_ns = latency_percentile(h, 0.999);
    kl.max_ns = h.max_ns;
  }
  if (pipeline) {
    const bool split = cfg_.producers > 0;
    r.producer.workers = split ? cfg_.producers : nthreads;
    r.consumer.workers = split ? nthreads - cfg_.producers : nthreads;
    r.producer.ops = enq_ok.load(std::memory_order_relaxed);
    r.producer.failed = enq_failed.load(std::memory_order_relaxed);
    r.consumer.ops = deq_ok.load(std::memory_order_relaxed);
    r.consumer.failed = deq_failed.load(std::memory_order_relaxed);
  }
  if (service) {
    r.arrivals_offered = schedule.size();
    r.arrivals_completed = r.ops;
    const LatencyHistogram q = queue_latency_.merged();
    r.q_ops = q.count;
    r.q_p50_ns = latency_percentile(q, 0.50);
    r.q_p99_ns = latency_percentile(q, 0.99);
    r.q_p999_ns = latency_percentile(q, 0.999);
    r.q_max_ns = q.max_ns;
  }
  if (multi) {
    r.tenant.resize(static_cast<std::size_t>(ntenants));
    for (int t = 0; t < ntenants; ++t) {
      TrialResult::TenantResult& tr = r.tenant[static_cast<std::size_t>(t)];
      const smr::TenantStats& ts = tenant_after[static_cast<std::size_t>(t)];
      tr.retired = ts.retired;
      tr.enqueued = ts.enqueued;
      tr.drained = ts.drained;
      tr.backlog_end = ts.backlog;
      tr.completed = tenant_done[static_cast<std::size_t>(t)].load(
          std::memory_order_relaxed);
      tr.lat_p999_ns =
          latency_percentile(tenant_latency_.lane_histogram(t), 0.999);
    }
  }
  if (daemon_) {
    const smr::ReclaimerDaemon::Stats ds = daemon_->stats();
    r.daemon_ticks = ds.ticks;
    r.daemon_quiet_ticks = ds.quiet_ticks;
    r.daemon_pressure_ticks = ds.pressure_ticks;
    r.daemon_drained = ds.drained;
  }
  r.remote_penalty_ns = effective_penalty_ns_;
  r.penalty_measured = penalty_measured_;
  r.clock_source = timing::clock_name();
  r.tsc_ghz = timing::tsc_ghz();
  r.pin_mode = cfg_.pin;
  r.pin_cpus = pin_map_;
  r.peak_bytes_mapped = alloc_after.peak_bytes_mapped;
  r.smr_stats = smr_after;
  r.epochs_in_window =
      smr_after.epochs_advanced - smr_before.epochs_advanced;
  r.freed_in_window = smr_after.freed - smr_before.freed;

  r.alloc_diff.totals.n_alloc =
      alloc_after.totals.n_alloc - alloc_before.totals.n_alloc;
  r.alloc_diff.totals.n_free =
      alloc_after.totals.n_free - alloc_before.totals.n_free;
  r.alloc_diff.totals.n_remote_free =
      alloc_after.totals.n_remote_free - alloc_before.totals.n_remote_free;
  r.alloc_diff.totals.n_flush =
      alloc_after.totals.n_flush - alloc_before.totals.n_flush;
  r.alloc_diff.totals.ns_in_free =
      alloc_after.totals.ns_in_free - alloc_before.totals.ns_in_free;
  r.alloc_diff.totals.ns_in_flush =
      alloc_after.totals.ns_in_flush - alloc_before.totals.ns_in_flush;
  r.alloc_diff.totals.ns_in_lock =
      alloc_after.totals.ns_in_lock - alloc_before.totals.ns_in_lock;
  r.alloc_diff.bytes_mapped =
      alloc_after.bytes_mapped - alloc_before.bytes_mapped;
  r.alloc_diff.peak_bytes_mapped = alloc_after.peak_bytes_mapped;

  const double thread_ns =
      static_cast<double>(nthreads) * static_cast<double>(r.wall_ns);
  r.pct_free =
      100.0 * static_cast<double>(r.alloc_diff.totals.ns_in_free) / thread_ns;
  r.pct_flush = 100.0 *
                static_cast<double>(r.alloc_diff.totals.ns_in_flush) /
                thread_ns;
  r.pct_lock =
      100.0 * static_cast<double>(r.alloc_diff.totals.ns_in_lock) / thread_ns;
  return r;
}

AggregateResult run_trials(const TrialConfig& cfg) {
  AggregateResult agg;
  const int trials = std::max(cfg.trials, 1);
  double peak_sum = 0;
  for (int i = 0; i < trials; ++i) {
    TrialConfig one = cfg;
    one.seed = cfg.seed + static_cast<std::uint64_t>(i);
    Trial trial(one);
    const TrialResult r = trial.run();
    if (i == 0) {
      agg.min_mops = r.mops;
      agg.max_mops = r.mops;
    }
    agg.avg_mops += r.mops;
    agg.min_mops = std::min(agg.min_mops, r.mops);
    agg.max_mops = std::max(agg.max_mops, r.mops);
    peak_sum += static_cast<double>(r.peak_bytes_mapped);
  }
  agg.avg_mops /= trials;
  agg.avg_peak_mib = peak_sum / trials / (1024.0 * 1024.0);
  agg.trials = trials;
  return agg;
}

}  // namespace emr::harness
