// Trial harness: configuration, the mixed insert/delete/lookup key-range
// workload the paper runs (50% inserts / 50% deletes over a fixed key
// range, prefilled to half), per-trial measurement, multi-trial
// aggregation, and the thread-churn mode (workers deregister and fresh
// threads register mid-trial) the ThreadHandle API unlocks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "core/arrival.hpp"
#include "core/garbage.hpp"
#include "core/latency.hpp"
#include "core/rng.hpp"
#include "core/timeline.hpp"
#include "smr/reclaimer.hpp"
#include "smr/reclaimer_daemon.hpp"

namespace emr::ds {
class ConcurrentSet;
class ConcurrentQueue;
}

namespace emr::harness {

struct TrialConfig {
  std::string ds = "abtree";      // abtree | occtree | dgt | shardedset
  std::string reclaimer = "debra";
  std::string allocator = "je";
  int nthreads = 4;
  std::uint64_t keyrange = 1 << 14;
  int measure_ms = 200;
  int trials = 1;
  std::uint64_t seed = 42;
  /// Operation mix; lookups take the remaining fraction.
  double insert_frac = 0.5;
  double erase_frac = 0.5;
  /// Thread-churn mode: every churn_interval_ms of the measured window
  /// one worker deregisters its ThreadHandle and exits, and a fresh
  /// thread registers and takes over its lane (round-robin over the
  /// workers). 0 disables churn; churn requires nthreads >= 2.
  /// EMR_CHURN_MS.
  int churn_interval_ms = 0;
  bool enable_timeline = false;
  bool enable_garbage = false;
  /// Sample the free-schedule controller during the measured window: a
  /// background sampler records executor backlog, the current drain
  /// quantum of the most-loaded lane, and the registered population
  /// every schedule_sample_ms, into TrialResult::schedule_trace.
  bool enable_schedule_trace = false;
  int schedule_sample_ms = 2;
  /// Per-op latency measurement: workers clock every operation into a
  /// per-lane log2 histogram (core/latency.hpp) and TrialResult carries
  /// the merged p50/p99/p99.9/max. Forced on when the free schedule
  /// wants tail-latency feedback (*_latency names), whose controller
  /// the sampler thread then pumps every schedule_sample_ms.
  bool enable_latency = false;
  std::uint64_t timeline_min_duration_ns = 10'000;
  // ---- service mode (docs/SERVICE_MODE.md) ----
  /// "closed" runs the classic closed loop (workers issue back to back);
  /// "poisson" | "burst" switch to open-loop traffic: a seeded arrival
  /// schedule (core/arrival.hpp) is generated up front and workers serve
  /// it on time, recording queueing delay separately from service
  /// latency. EMR_ARRIVAL.
  std::string arrival = "closed";
  /// Open-loop mean offered load, ops/s across all workers. EMR_RATE_OPS.
  double rate_ops = 100'000;
  /// Zipfian key skew (0 = uniform). Applies to open-loop schedules and
  /// to the closed-loop OpStream alike. EMR_ZIPF_S.
  double zipf_s = 0.0;
  /// Rate multipliers over equal slices of the window, e.g. "2,0.05" =
  /// busy half then near-idle tail. EMR_PHASES.
  std::vector<double> phases = {1.0};
  /// Multi-tenant reclamation domains: N independent ds/ instances
  /// sharing one reclaimer bundle, with per-tenant retire/backlog
  /// accounting in the executor. 1 compiles the tenant paths out.
  /// EMR_TENANTS.
  int tenants = 1;
  /// Per-event tenant draw weights; empty = uniform. EMR_TENANT_WEIGHTS.
  std::vector<double> tenant_weights;
  /// Background reclaimer daemon level: "off" | "optimistic" |
  /// "aggressive" (smr/reclaimer_daemon.hpp). "off" leaves the bundle
  /// instruction-identical to the pre-daemon harness.
  /// EMR_RECLAIMER_DAEMON.
  std::string reclaimer_daemon = "off";
  /// Daemon tick period. EMR_DAEMON_MS.
  int daemon_period_ms = 1;
  // ---- hardware realism (docs/ALLOCATORS.md) ----
  /// CPU affinity layout: "off" | "compact" | "scatter"
  /// (core/affinity.hpp). Workers pin themselves before the measured
  /// window opens, and the reclaimer daemon takes the slot after the
  /// workers'. EMR_PIN.
  std::string pin = "off";
  /// "on" | "off": whether the startup cache-line ping-pong's measured
  /// transfer cost replaces the configured remote-free penalty. Only
  /// applies when the penalty was not set explicitly (the
  /// EMR_REMOTE_PENALTY_NS knob always wins), and only when the machine
  /// could measure (>= 2 allowed CPUs) — otherwise configured defaults
  /// run untouched. EMR_CALIBRATE.
  std::string calibrate = "on";
  // ---- pipeline workload (ds/queue.hpp) ----
  /// "set" runs the classic mixed insert/erase/lookup workload over a
  /// ConcurrentSet; "pipeline" drives a ConcurrentQueue (ds must name
  /// one of ds::queue_names()) with enqueue/dequeue workers instead —
  /// the canonical high-retire-rate SMR client, since every dequeue
  /// retires a node. Pipeline trials are closed-loop single-tenant.
  /// EMR_WORKLOAD.
  std::string workload = "set";
  /// Pipeline role split: the first `producers` worker indices enqueue
  /// only and the rest dequeue only, with the consumers pinned from the
  /// far end of the EMR_PIN layout — allocation and retire/free land on
  /// distant cores, the adversarial case for remote frees. 0 (the
  /// default) runs every worker symmetric (alternating enqueue and
  /// dequeue), where a freed node restocks the freeing worker's own
  /// thread cache. EMR_PRODUCERS.
  int producers = 0;
  /// Queue soft capacity: enqueue refuses (and the producer yields)
  /// once the queue holds this many values; 0 = unbounded.
  /// EMR_QUEUE_CAP.
  std::uint64_t queue_cap = 0;
  smr::SmrConfig smr;
  alloc::AllocConfig alloc;
};

/// Overwrites only the fields whose EMR_* variable is present, so
/// caller-set defaults always win when the environment is silent.
void apply_env_overrides(TrialConfig& cfg);

/// Fails fast on an inconsistent config: op fractions outside [0, 1] or
/// summing past 1, a non-positive measure_ms / trials /
/// schedule_sample_ms, a negative churn_interval_ms or churn on a
/// single thread, and unknown ds / reclaimer / allocator names each
/// throw std::invalid_argument naming the valid ranges/choices instead
/// of silently defaulting. The service knobs are policed the same way:
/// an unknown arrival process or daemon level, a non-positive /
/// non-finite rate_ops, a negative zipf_s, an empty (or non-finite /
/// non-positive) phase list, tenants < 1, a weight list whose length
/// disagrees with tenants, a daemon_period_ms < 1, and an open-loop
/// schedule whose expected event count exceeds core/arrival.hpp's
/// kMaxArrivals all throw naming the valid range, as do a pin layout
/// outside off|compact|scatter (EMR_PIN) and a calibrate switch outside
/// on|off (EMR_CALIBRATE). The pipeline knobs are policed the same way:
/// a workload outside set|pipeline (EMR_WORKLOAD), producers or a queue
/// capacity set on the set workload, a pipeline ds that is not a queue
/// name, producers outside [0, nthreads), and a pipeline trial that is
/// not closed-loop single-tenant all throw naming the valid
/// choices/ranges. Trial's constructor runs this on every config.
void validate_config(const TrialConfig& cfg);

/// A TrialConfig built from defaults + every EMR_* override.
TrialConfig config_from_env();

/// EMR_THREADS ("1 2 4" or "6,12,24"), or `def` when unset or empty.
/// A malformed token ("garbage", "4x", "0", "-3") never shrinks the
/// sweep silently: the whole variable is rejected with a warning to
/// stderr naming the bad token, and `def` runs instead.
std::vector<int> thread_sweep_from_env(std::vector<int> def);

/// Node size in bytes per data structure, derived from sizeof the real
/// node types in ds/ (abtree leaves are the paper's fat ~240 B nodes;
/// occtree's are compact; dgt sits between). Throws on unknown names.
std::size_t node_size_for_ds(const std::string& ds);

struct Op {
  /// The first three kinds are the set workload's; the queue kinds are
  /// the pipeline workload's. Kind doubles as the latency recorder's
  /// channel index, so the per-kind tails in TrialResult::kind_lat are
  /// indexed the same way.
  enum Kind : std::uint8_t {
    kInsert = 0,
    kErase = 1,
    kLookup = 2,
    kEnqueue = 3,
    kDequeue = 4
  };
  static constexpr int kNumKinds = 5;
  Kind kind;
  std::uint64_t key;
  /// Which tenant's structure the op targets (always 0 single-tenant).
  std::uint32_t tenant = 0;
};

/// Deterministic per-thread operation stream: the same (config seed, tid)
/// always replays the same ops, so reclaimers are compared on identical
/// work. The 5-arg constructor is the legacy uniform single-tenant
/// stream; the TrialConfig constructor additionally honours zipf_s key
/// skew and multi-tenant draws — but with zipf_s == 0 and tenants <= 1
/// it consumes exactly the same random draws, so legacy streams stay
/// bit-identical.
class OpStream {
 public:
  OpStream(std::uint64_t seed, int tid, double insert_frac,
           double erase_frac, std::uint64_t keyrange);
  OpStream(const TrialConfig& cfg, int tid);

  Op next();

 private:
  Rng rng_;
  double insert_frac_;
  double erase_frac_;
  std::uint64_t keyrange_;
  std::unique_ptr<Zipf> zipf_;  // null = uniform keys (legacy draw)
  int tenants_ = 1;
  std::vector<double> tenant_cdf_;  // empty = uniform tenant draw
};

/// One point of the free-schedule timeline (enable_schedule_trace).
struct ScheduleSample {
  std::uint64_t t_ms = 0;        // since the measured window opened
  std::uint64_t backlog = 0;     // executor-held nodes across all lanes
  std::uint64_t drain_quota = 0; // current quantum of the busiest lane
  std::uint64_t population = 0;  // registered ThreadHandles
};

struct TrialResult {
  std::uint64_t ops = 0;
  std::uint64_t wall_ns = 0;
  double mops = 0;  // million completed operations per second
  std::uint64_t peak_bytes_mapped = 0;
  smr::SmrStats smr_stats;            // at end of the measured window
  std::uint64_t epochs_in_window = 0;
  std::uint64_t freed_in_window = 0;
  /// Allocator counter deltas over the measured window.
  alloc::AllocStats alloc_diff;
  /// Percent of total thread-time spent in free / tcache flush / waiting
  /// on central-bin locks (the paper's Table 1 columns).
  double pct_free = 0;
  double pct_flush = 0;
  double pct_lock = 0;
  /// Churn mode: how many workers deregistered and were replaced by a
  /// freshly registered thread inside the measured window.
  std::uint64_t threads_churned = 0;
  /// Free-schedule timeline (empty unless enable_schedule_trace), plus
  /// its peaks for table rows.
  std::vector<ScheduleSample> schedule_trace;
  std::uint64_t peak_backlog = 0;
  std::uint64_t max_drain_quota = 0;
  /// Home-flush routing ledger, read after the teardown flush: blocks a
  /// FreeExecutor rerouted onto an owner's remote-free stash, blocks
  /// that have left a stash (owner flush, daemon drain, departure
  /// adoption, quiesce), and blocks still parked at teardown. With
  /// routing on, stashed == flushed and stash_backlog_end == 0 — every
  /// rerouted block reached its free. All three read zero when routing
  /// is off.
  std::uint64_t stashed = 0;
  std::uint64_t flushed = 0;
  std::uint64_t stash_backlog_end = 0;
  /// Per-op latency over the measured window (zeros unless
  /// enable_latency or a latency-feedback schedule armed the recorder).
  /// Percentiles are log2-bucket interpolations clamped to the exact
  /// max; see docs/LATENCY.md for the error model.
  std::uint64_t lat_ops = 0;  // recorded samples
  double lat_p50_ns = 0;
  double lat_p99_ns = 0;
  double lat_p999_ns = 0;
  std::uint64_t lat_max_ns = 0;
  /// Per-op-kind service latency split (insert/erase/lookup for the set
  /// workload, enqueue/dequeue for the pipeline), from the recorder's
  /// channels; indexed by Op::Kind. Zeros when the recorder is disarmed
  /// or a kind never ran.
  struct OpKindLatency {
    std::uint64_t ops = 0;
    double p50_ns = 0;
    double p99_ns = 0;
    double p999_ns = 0;
    std::uint64_t max_ns = 0;
  };
  OpKindLatency kind_lat[Op::kNumKinds];
  /// Pipeline mode per-role split (zeros when workload == "set"). `ops`
  /// counts successful enqueues/dequeues (what TrialResult::ops sums);
  /// `failed` the refused ones — full-queue enqueues on the producer
  /// side, empty polls on the consumer side — each of which costs a
  /// yield, not an op. In the symmetric layout (producers == 0) every
  /// worker plays both roles, so both `workers` fields report nthreads.
  struct RoleResult {
    int workers = 0;
    std::uint64_t ops = 0;
    std::uint64_t failed = 0;
  };
  RoleResult producer;
  RoleResult consumer;
  /// Service mode: how many arrivals the schedule offered inside the
  /// window vs how many the workers completed (equal unless the trial
  /// was stopped saturated), and the queueing-delay distribution —
  /// service start minus scheduled arrival, the open-loop signal that
  /// explodes past saturation while closed-loop mops stays flat.
  /// Zeros in closed-loop trials.
  std::uint64_t arrivals_offered = 0;
  std::uint64_t arrivals_completed = 0;
  std::uint64_t q_ops = 0;
  double q_p50_ns = 0;
  double q_p99_ns = 0;
  double q_p999_ns = 0;
  std::uint64_t q_max_ns = 0;
  /// Per-tenant accounting (empty unless tenants > 1). Retired counts
  /// are per-retire exact; enqueued/drained attribute whole adopted bags
  /// to the retiring lane's tenant, and backlog_end = enqueued - drained
  /// at the window close. completed/p999 come from the per-tenant
  /// service-latency recorder.
  struct TenantResult {
    std::uint64_t retired = 0;
    std::uint64_t enqueued = 0;
    std::uint64_t drained = 0;
    std::uint64_t backlog_end = 0;
    std::uint64_t completed = 0;
    double lat_p999_ns = 0;
  };
  std::vector<TenantResult> tenant;
  /// Daemon activity over the trial (zeros when reclaimer_daemon "off").
  std::uint64_t daemon_ticks = 0;
  std::uint64_t daemon_quiet_ticks = 0;
  std::uint64_t daemon_pressure_ticks = 0;
  std::uint64_t daemon_drained = 0;
  /// Hardware-calibration and affinity metadata (docs/ALLOCATORS.md):
  /// the remote-free penalty the trial actually charged, whether it came
  /// from the startup ping-pong (vs a knob/default), the clock source
  /// behind every timestamp ("tsc" | "steady") with the calibrated TSC
  /// frequency (0 on the fallback), the pin layout, and the worker ->
  /// CPU map (empty when unpinned; the last entry is the daemon's slot).
  std::uint64_t remote_penalty_ns = 0;
  bool penalty_measured = false;
  std::string clock_source = "steady";
  double tsc_ghz = 0;
  std::string pin_mode = "off";
  std::vector<int> pin_cpus;
};

struct AggregateResult {
  double avg_mops = 0;
  double min_mops = 0;
  double max_mops = 0;
  double avg_peak_mib = 0;
  int trials = 0;
};

/// One configured run: builds allocator + reclaimer + ds/ structure,
/// prefills to keyrange/2, runs the op mix on nthreads worker threads
/// (each registering its own smr::ThreadHandle) for measure_ms — churning
/// workers at churn_interval_ms when churn is on — and leaves instruments
/// readable until destruction.
class Trial {
 public:
  explicit Trial(const TrialConfig& cfg);
  ~Trial();

  Trial(const Trial&) = delete;
  Trial& operator=(const Trial&) = delete;

  /// Runs the trial once. Call at most once per Trial.
  TrialResult run();

  Timeline& timeline() { return timeline_; }
  GarbageCensus& garbage() { return garbage_; }
  LatencyRecorder& latency() { return latency_; }
  LatencyRecorder& queue_latency() { return queue_latency_; }
  smr::Reclaimer& reclaimer() { return *bundle_.reclaimer; }
  smr::FreeSchedule& schedule() { return *bundle_.schedule; }
  alloc::Allocator& allocator() { return *allocator_; }
  /// Tenant 0's structure (the only one single-tenant). Only valid for
  /// the set workload — pipeline trials build a queue instead.
  ds::ConcurrentSet& set() { return *sets_[0]; }
  ds::ConcurrentSet& set(int tenant) {
    return *sets_[static_cast<std::size_t>(tenant)];
  }
  /// The pipeline workload's queue; null for the set workload.
  ds::ConcurrentQueue& queue() { return *queue_; }
  int tenant_count() const { return static_cast<int>(sets_.size()); }
  /// Null when reclaimer_daemon == "off".
  smr::ReclaimerDaemon* daemon() { return daemon_.get(); }
  const TrialConfig& config() const { return cfg_; }

 private:
  TrialConfig cfg_;
  Timeline timeline_;
  GarbageCensus garbage_;
  LatencyRecorder latency_;
  /// Open-loop queueing delay, one channel; disarmed in closed loops.
  LatencyRecorder queue_latency_;
  /// Per-tenant service latency: one "lane" per tenant; armed only for
  /// multi-tenant trials with the main recorder on.
  LatencyRecorder tenant_latency_;
  std::unique_ptr<alloc::Allocator> allocator_;
  smr::ReclaimerBundle bundle_;
  // Declared after the bundle: the structures' destructors return their
  // reachable nodes through the reclaimer, so they must be destroyed
  // first. One set per tenant; sets_[0] is the classic single domain.
  // Pipeline trials leave sets_ empty and build queue_ instead.
  std::vector<std::unique_ptr<ds::ConcurrentSet>> sets_;
  std::unique_ptr<ds::ConcurrentQueue> queue_;
  // Declared last: the daemon joins (and stops touching the bundle)
  // before anything it reads is torn down.
  std::unique_ptr<smr::ReclaimerDaemon> daemon_;
  // Resolved at construction: worker i pins to pin_map_[i] (empty when
  // EMR_PIN=off or no CPUs are visible; the extra last entry is the
  // daemon's), and the penalty the allocator was actually built with.
  std::vector<int> pin_map_;
  std::uint64_t effective_penalty_ns_ = 0;
  bool penalty_measured_ = false;
  bool ran_ = false;
};

/// Runs cfg.trials independent trials and aggregates.
AggregateResult run_trials(const TrialConfig& cfg);

}  // namespace emr::harness
