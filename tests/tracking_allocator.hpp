// Test-only allocator wrapper shared by the SMR and ds suites: asserts
// no pointer is freed twice or freed without having been allocated, and
// exposes the live set so tests can check that a specific node survived
// (or didn't survive) a reclamation pass. Bookkeeping is mutex-guarded
// so multi-threaded guarded-traversal tests can run over it.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "alloc/factory.hpp"

namespace emr::test {

class TrackingAllocator final : public alloc::Allocator {
 public:
  TrackingAllocator() {
    alloc::AllocConfig cfg;
    cfg.max_threads = 32;  // covers every suite's slot capacity
    inner_ = alloc::make_allocator("system", cfg);
  }

  void* allocate(int tid, std::size_t size) override {
    void* p = inner_->allocate(tid, size);
    {
      const std::lock_guard<std::mutex> guard(mu_);
      live_.insert(p);
      ++allocs_;
    }
    return p;
  }

  void deallocate(int tid, void* p) override {
    {
      const std::lock_guard<std::mutex> guard(mu_);
      ASSERT_EQ(live_.count(p), 1u) << "freed a pointer that is not live "
                                       "(double free or foreign pointer)";
      live_.erase(p);
      ++frees_;
      ++freed_counts_[p];
    }
    inner_->deallocate(tid, p);
  }

  int home_lane(void* p) const override { return inner_->home_lane(p); }

  /// The hint path is a free path: it must obey the same
  /// no-double-free / no-foreign-pointer contract as deallocate, so the
  /// home-flush ledger tests can count flushed blocks exactly.
  void free_local_hint(int tid, void* p) override {
    {
      const std::lock_guard<std::mutex> guard(mu_);
      ASSERT_EQ(live_.count(p), 1u) << "hint-freed a pointer that is not "
                                       "live (double free or foreign "
                                       "pointer)";
      live_.erase(p);
      ++frees_;
      ++freed_counts_[p];
    }
    inner_->free_local_hint(tid, p);
  }

  alloc::AllocStats stats() const override { return inner_->stats(); }
  const char* name() const override { return "tracking"; }

  std::uint64_t allocs() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return allocs_;
  }
  std::uint64_t frees() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return frees_;
  }
  std::size_t live() const {
    const std::lock_guard<std::mutex> guard(mu_);
    return live_.size();
  }
  bool is_live(const void* p) const {
    const std::lock_guard<std::mutex> guard(mu_);
    return live_.count(const_cast<void*>(p)) != 0;
  }

  /// How many times this exact address has been freed. Immune to the
  /// address-reuse ambiguity of is_live(): an address the allocator
  /// recycled still reports its earlier frees.
  std::uint64_t freed_count(const void* p) const {
    const std::lock_guard<std::mutex> guard(mu_);
    const auto it = freed_counts_.find(const_cast<void*>(p));
    return it == freed_counts_.end() ? 0 : it->second;
  }

 private:
  std::unique_ptr<alloc::Allocator> inner_;
  mutable std::mutex mu_;
  std::set<void*> live_;
  std::map<void*, std::uint64_t> freed_counts_;
  std::uint64_t allocs_ = 0;
  std::uint64_t frees_ = 0;
};

}  // namespace emr::test
