// EMR_* environment parsing and override precedence: unset variables
// must never clobber caller-set defaults (the regression the seed's
// bench_common.hpp shipped with).
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/env.hpp"
#include "harness/workload.hpp"

namespace {

using namespace emr;

/// Scoped setenv/unsetenv so tests cannot leak state into each other.
class EnvGuard {
 public:
  ~EnvGuard() {
    for (const std::string& name : touched_) ::unsetenv(name.c_str());
  }
  void set(const char* name, const char* value) {
    touched_.push_back(name);
    ::setenv(name, value, 1);
  }
  void unset(const char* name) {
    touched_.push_back(name);
    ::unsetenv(name);
  }

 private:
  std::vector<std::string> touched_;
};

TEST(Env, I64ParsesAndFallsBack) {
  EnvGuard env;
  env.unset("EMR_TEST_I64");
  EXPECT_EQ(env_i64("EMR_TEST_I64", 7), 7);
  EXPECT_FALSE(env_has("EMR_TEST_I64"));

  env.set("EMR_TEST_I64", "123");
  EXPECT_EQ(env_i64("EMR_TEST_I64", 7), 123);
  EXPECT_TRUE(env_has("EMR_TEST_I64"));

  env.set("EMR_TEST_I64", "-5");
  EXPECT_EQ(env_i64("EMR_TEST_I64", 7), -5);

  env.set("EMR_TEST_I64", "notanumber");
  EXPECT_EQ(env_i64("EMR_TEST_I64", 7), 7);
}

TEST(Env, ThreadListParsing) {
  EnvGuard env;
  env.set("EMR_THREADS", "1 2 4");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({8}),
            (std::vector<int>{1, 2, 4}));

  env.set("EMR_THREADS", "6,12,24");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({8}),
            (std::vector<int>{6, 12, 24}));

  env.unset("EMR_THREADS");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({8, 16}),
            (std::vector<int>{8, 16}));

  env.set("EMR_THREADS", "garbage");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({3}),
            (std::vector<int>{3}));
}

TEST(Env, ThreadListRejectsMalformedTokensWholesale) {
  // Regression: a typo'd EMR_THREADS used to silently drop the bad
  // tokens and run a shrunken sweep. Any malformed token now rejects
  // the whole variable (warning to stderr) and the default sweep runs.
  EnvGuard env;

  env.set("EMR_THREADS", "4 garbage 8");  // good tokens must not survive
  EXPECT_EQ(emr::harness::thread_sweep_from_env({1, 2}),
            (std::vector<int>{1, 2}));

  env.set("EMR_THREADS", "4x");  // trailing junk on a number
  EXPECT_EQ(emr::harness::thread_sweep_from_env({5}),
            (std::vector<int>{5}));

  env.set("EMR_THREADS", "0");  // zero threads is not a sweep column
  EXPECT_EQ(emr::harness::thread_sweep_from_env({5}),
            (std::vector<int>{5}));

  env.set("EMR_THREADS", "-3,8");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({5}),
            (std::vector<int>{5}));

  env.set("EMR_THREADS", "");  // present but empty: treated as unset
  EXPECT_EQ(emr::harness::thread_sweep_from_env({7}),
            (std::vector<int>{7}));

  // Both separators still parse, mixed and with stray whitespace.
  env.set("EMR_THREADS", " 2,  4 8,");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({5}),
            (std::vector<int>{2, 4, 8}));
}

TEST(Env, IntListStrictReportsTheBadToken) {
  EnvGuard env;
  std::vector<int> out;
  std::string bad;

  env.unset("EMR_TEST_LIST");
  EXPECT_TRUE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_TRUE(out.empty());

  env.set("EMR_TEST_LIST", "6,12,24");
  EXPECT_TRUE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_EQ(out, (std::vector<int>{6, 12, 24}));

  env.set("EMR_TEST_LIST", "6 nope 24");
  EXPECT_FALSE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_EQ(bad, "nope");

  env.set("EMR_TEST_LIST", "6 -12 24");
  EXPECT_FALSE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_EQ(bad, "-12");

  env.set("EMR_TEST_LIST", "6 12x 24");
  EXPECT_FALSE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_EQ(bad, "12x");
}

TEST(Env, LatencyTargetOverrideValidates) {
  EnvGuard env;
  env.unset("EMR_LATENCY_TARGET_US");
  harness::TrialConfig cfg;
  cfg.smr.latency_target_us = 250;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.latency_target_us, 250u);  // silent env leaves it

  env.set("EMR_LATENCY_TARGET_US", "50");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.latency_target_us, 50u);

  env.set("EMR_LATENCY_TARGET_US", "0");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_LATENCY_TARGET_US", "-9");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_LATENCY_TARGET_US", "junk");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
}

TEST(Env, OverridePrecedenceBatchAndPenalty) {
  EnvGuard env;
  env.unset("EMR_BATCH");
  env.unset("EMR_REMOTE_PENALTY_NS");

  harness::TrialConfig cfg;
  cfg.smr.batch_size = 2048;
  cfg.alloc.remote_free_penalty_ns = 150;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.batch_size, 2048u);
  EXPECT_EQ(cfg.alloc.remote_free_penalty_ns, 150u);

  env.set("EMR_BATCH", "32768");
  env.set("EMR_REMOTE_PENALTY_NS", "0");  // explicit zero must win too
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.batch_size, 32768u);
  EXPECT_EQ(cfg.alloc.remote_free_penalty_ns, 0u);
}

TEST(Env, DefaultsWinWhenUnset) {
  // Regression for the seed bug: config_from_env()'s values used to
  // overwrite caller defaults even with no EMR_* variable present.
  EnvGuard env;
  env.unset("EMR_DS");
  env.unset("EMR_RECLAIMER");
  env.unset("EMR_ALLOC");

  harness::TrialConfig cfg;
  cfg.ds = "occtree";
  cfg.reclaimer = "token_af";
  cfg.allocator = "mi";
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.ds, "occtree");
  EXPECT_EQ(cfg.reclaimer, "token_af");
  EXPECT_EQ(cfg.allocator, "mi");

  env.set("EMR_RECLAIMER", "hp");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.reclaimer, "hp");
  EXPECT_EQ(cfg.ds, "occtree");  // untouched fields stay put
}

TEST(Env, ConfigFromEnvUsesEnv) {
  EnvGuard env;
  env.set("EMR_MS", "77");
  env.set("EMR_TRIALS", "3");
  env.set("EMR_KEYRANGE", "100000");
  env.set("EMR_SEED", "9");
  const harness::TrialConfig cfg = harness::config_from_env();
  EXPECT_EQ(cfg.measure_ms, 77);
  EXPECT_EQ(cfg.trials, 3);
  EXPECT_EQ(cfg.keyrange, 100000u);
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(Env, ScheduleKnobsOverrideAndValidate) {
  EnvGuard env;
  env.unset("EMR_SCHEDULE");
  env.unset("EMR_DRAIN_MIN");
  env.unset("EMR_DRAIN_MAX");
  env.unset("EMR_POOL_CAP");
  env.unset("EMR_EXTRA_SLOTS");

  harness::TrialConfig cfg;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.schedule, "");  // silent env leaves defaults alone
  EXPECT_EQ(cfg.smr.drain_min, 1u);
  EXPECT_EQ(cfg.smr.drain_max, 64u);
  EXPECT_EQ(cfg.smr.pool_cap, 0u);
  EXPECT_EQ(cfg.smr.extra_slots, 2u);

  env.set("EMR_SCHEDULE", "adaptive");
  env.set("EMR_DRAIN_MIN", "2");
  env.set("EMR_DRAIN_MAX", "128");
  env.set("EMR_POOL_CAP", "4096");
  env.set("EMR_EXTRA_SLOTS", "5");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.schedule, "adaptive");
  EXPECT_EQ(cfg.smr.drain_min, 2u);
  EXPECT_EQ(cfg.smr.drain_max, 128u);
  EXPECT_EQ(cfg.smr.pool_cap, 4096u);
  EXPECT_EQ(cfg.smr.extra_slots, 5u);

  // Nonsensical values fail fast instead of being silently repaired.
  env.set("EMR_POOL_CAP", "0");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_POOL_CAP", "-3");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_POOL_CAP", "512");
  env.set("EMR_EXTRA_SLOTS", "0");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_EXTRA_SLOTS", "2");
  env.set("EMR_DRAIN_MIN", "0");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_DRAIN_MIN", "2");
  env.set("EMR_DRAIN_MAX", "-1");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
}

TEST(Env, F64AndStr) {
  EnvGuard env;
  env.set("EMR_TEST_F", "0.75");
  EXPECT_DOUBLE_EQ(env_f64("EMR_TEST_F", 0.5), 0.75);
  env.unset("EMR_TEST_F");
  EXPECT_DOUBLE_EQ(env_f64("EMR_TEST_F", 0.5), 0.5);

  env.set("EMR_TEST_S", "hello");
  EXPECT_EQ(env_str("EMR_TEST_S", "d"), "hello");
  env.unset("EMR_TEST_S");
  EXPECT_EQ(env_str("EMR_TEST_S", "d"), "d");
}

}  // namespace
