// EMR_* environment parsing and override precedence: unset variables
// must never clobber caller-set defaults (the regression the seed's
// bench_common.hpp shipped with).
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/env.hpp"
#include "harness/workload.hpp"

namespace {

using namespace emr;

/// Scoped setenv/unsetenv so tests cannot leak state into each other.
class EnvGuard {
 public:
  ~EnvGuard() {
    for (const std::string& name : touched_) ::unsetenv(name.c_str());
  }
  void set(const char* name, const char* value) {
    touched_.push_back(name);
    ::setenv(name, value, 1);
  }
  void unset(const char* name) {
    touched_.push_back(name);
    ::unsetenv(name);
  }

 private:
  std::vector<std::string> touched_;
};

TEST(Env, I64ParsesAndFallsBack) {
  EnvGuard env;
  env.unset("EMR_TEST_I64");
  EXPECT_EQ(env_i64("EMR_TEST_I64", 7), 7);
  EXPECT_FALSE(env_has("EMR_TEST_I64"));

  env.set("EMR_TEST_I64", "123");
  EXPECT_EQ(env_i64("EMR_TEST_I64", 7), 123);
  EXPECT_TRUE(env_has("EMR_TEST_I64"));

  env.set("EMR_TEST_I64", "-5");
  EXPECT_EQ(env_i64("EMR_TEST_I64", 7), -5);

  env.set("EMR_TEST_I64", "notanumber");
  EXPECT_EQ(env_i64("EMR_TEST_I64", 7), 7);
}

TEST(Env, ThreadListParsing) {
  EnvGuard env;
  env.set("EMR_THREADS", "1 2 4");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({8}),
            (std::vector<int>{1, 2, 4}));

  env.set("EMR_THREADS", "6,12,24");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({8}),
            (std::vector<int>{6, 12, 24}));

  env.unset("EMR_THREADS");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({8, 16}),
            (std::vector<int>{8, 16}));

  env.set("EMR_THREADS", "garbage");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({3}),
            (std::vector<int>{3}));
}

TEST(Env, ThreadListRejectsMalformedTokensWholesale) {
  // Regression: a typo'd EMR_THREADS used to silently drop the bad
  // tokens and run a shrunken sweep. Any malformed token now rejects
  // the whole variable (warning to stderr) and the default sweep runs.
  EnvGuard env;

  env.set("EMR_THREADS", "4 garbage 8");  // good tokens must not survive
  EXPECT_EQ(emr::harness::thread_sweep_from_env({1, 2}),
            (std::vector<int>{1, 2}));

  env.set("EMR_THREADS", "4x");  // trailing junk on a number
  EXPECT_EQ(emr::harness::thread_sweep_from_env({5}),
            (std::vector<int>{5}));

  env.set("EMR_THREADS", "0");  // zero threads is not a sweep column
  EXPECT_EQ(emr::harness::thread_sweep_from_env({5}),
            (std::vector<int>{5}));

  env.set("EMR_THREADS", "-3,8");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({5}),
            (std::vector<int>{5}));

  env.set("EMR_THREADS", "");  // present but empty: treated as unset
  EXPECT_EQ(emr::harness::thread_sweep_from_env({7}),
            (std::vector<int>{7}));

  // Both separators still parse, mixed and with stray whitespace.
  env.set("EMR_THREADS", " 2,  4 8,");
  EXPECT_EQ(emr::harness::thread_sweep_from_env({5}),
            (std::vector<int>{2, 4, 8}));
}

TEST(Env, IntListStrictReportsTheBadToken) {
  EnvGuard env;
  std::vector<int> out;
  std::string bad;

  env.unset("EMR_TEST_LIST");
  EXPECT_TRUE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_TRUE(out.empty());

  env.set("EMR_TEST_LIST", "6,12,24");
  EXPECT_TRUE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_EQ(out, (std::vector<int>{6, 12, 24}));

  env.set("EMR_TEST_LIST", "6 nope 24");
  EXPECT_FALSE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_EQ(bad, "nope");

  env.set("EMR_TEST_LIST", "6 -12 24");
  EXPECT_FALSE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_EQ(bad, "-12");

  env.set("EMR_TEST_LIST", "6 12x 24");
  EXPECT_FALSE(emr::env_int_list_strict("EMR_TEST_LIST", &out, &bad));
  EXPECT_EQ(bad, "12x");
}

TEST(Env, LatencyTargetOverrideValidates) {
  EnvGuard env;
  env.unset("EMR_LATENCY_TARGET_US");
  harness::TrialConfig cfg;
  cfg.smr.latency_target_us = 250;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.latency_target_us, 250u);  // silent env leaves it

  env.set("EMR_LATENCY_TARGET_US", "50");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.latency_target_us, 50u);

  env.set("EMR_LATENCY_TARGET_US", "0");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_LATENCY_TARGET_US", "-9");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_LATENCY_TARGET_US", "junk");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
}

TEST(Env, OverridePrecedenceBatchAndPenalty) {
  EnvGuard env;
  env.unset("EMR_BATCH");
  env.unset("EMR_REMOTE_PENALTY_NS");

  harness::TrialConfig cfg;
  cfg.smr.batch_size = 2048;
  cfg.alloc.remote_free_penalty_ns = 150;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.batch_size, 2048u);
  EXPECT_EQ(cfg.alloc.remote_free_penalty_ns, 150u);

  env.set("EMR_BATCH", "32768");
  env.set("EMR_REMOTE_PENALTY_NS", "0");  // explicit zero must win too
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.batch_size, 32768u);
  EXPECT_EQ(cfg.alloc.remote_free_penalty_ns, 0u);
}

TEST(Env, DefaultsWinWhenUnset) {
  // Regression for the seed bug: config_from_env()'s values used to
  // overwrite caller defaults even with no EMR_* variable present.
  EnvGuard env;
  env.unset("EMR_DS");
  env.unset("EMR_RECLAIMER");
  env.unset("EMR_ALLOC");

  harness::TrialConfig cfg;
  cfg.ds = "occtree";
  cfg.reclaimer = "token_af";
  cfg.allocator = "mi";
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.ds, "occtree");
  EXPECT_EQ(cfg.reclaimer, "token_af");
  EXPECT_EQ(cfg.allocator, "mi");

  env.set("EMR_RECLAIMER", "hp");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.reclaimer, "hp");
  EXPECT_EQ(cfg.ds, "occtree");  // untouched fields stay put
}

TEST(Env, ConfigFromEnvUsesEnv) {
  EnvGuard env;
  env.set("EMR_MS", "77");
  env.set("EMR_TRIALS", "3");
  env.set("EMR_KEYRANGE", "100000");
  env.set("EMR_SEED", "9");
  const harness::TrialConfig cfg = harness::config_from_env();
  EXPECT_EQ(cfg.measure_ms, 77);
  EXPECT_EQ(cfg.trials, 3);
  EXPECT_EQ(cfg.keyrange, 100000u);
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(Env, ScheduleKnobsOverrideAndValidate) {
  EnvGuard env;
  env.unset("EMR_SCHEDULE");
  env.unset("EMR_DRAIN_MIN");
  env.unset("EMR_DRAIN_MAX");
  env.unset("EMR_POOL_CAP");
  env.unset("EMR_EXTRA_SLOTS");

  harness::TrialConfig cfg;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.schedule, "");  // silent env leaves defaults alone
  EXPECT_EQ(cfg.smr.drain_min, 1u);
  EXPECT_EQ(cfg.smr.drain_max, 64u);
  EXPECT_EQ(cfg.smr.pool_cap, 0u);
  EXPECT_EQ(cfg.smr.extra_slots, 2u);

  env.set("EMR_SCHEDULE", "adaptive");
  env.set("EMR_DRAIN_MIN", "2");
  env.set("EMR_DRAIN_MAX", "128");
  env.set("EMR_POOL_CAP", "4096");
  env.set("EMR_EXTRA_SLOTS", "5");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.smr.schedule, "adaptive");
  EXPECT_EQ(cfg.smr.drain_min, 2u);
  EXPECT_EQ(cfg.smr.drain_max, 128u);
  EXPECT_EQ(cfg.smr.pool_cap, 4096u);
  EXPECT_EQ(cfg.smr.extra_slots, 5u);

  // Nonsensical values fail fast instead of being silently repaired.
  env.set("EMR_POOL_CAP", "0");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_POOL_CAP", "-3");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_POOL_CAP", "512");
  env.set("EMR_EXTRA_SLOTS", "0");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_EXTRA_SLOTS", "2");
  env.set("EMR_DRAIN_MIN", "0");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
  env.set("EMR_DRAIN_MIN", "2");
  env.set("EMR_DRAIN_MAX", "-1");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
}

TEST(Env, ServiceKnobsOverrideOnlyWhenPresent) {
  EnvGuard env;
  env.unset("EMR_ARRIVAL");
  env.unset("EMR_RATE_OPS");
  env.unset("EMR_ZIPF_S");
  env.unset("EMR_PHASES");
  env.unset("EMR_TENANTS");
  env.unset("EMR_TENANT_WEIGHTS");
  env.unset("EMR_RECLAIMER_DAEMON");
  env.unset("EMR_DAEMON_MS");

  harness::TrialConfig cfg;
  cfg.rate_ops = 12'345;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.arrival, "closed");  // silent env leaves defaults alone
  EXPECT_DOUBLE_EQ(cfg.rate_ops, 12'345);
  EXPECT_DOUBLE_EQ(cfg.zipf_s, 0.0);
  EXPECT_EQ(cfg.phases, (std::vector<double>{1.0}));
  EXPECT_EQ(cfg.tenants, 1);
  EXPECT_TRUE(cfg.tenant_weights.empty());
  EXPECT_EQ(cfg.reclaimer_daemon, "off");
  EXPECT_EQ(cfg.daemon_period_ms, 1);

  env.set("EMR_ARRIVAL", "poisson");
  env.set("EMR_RATE_OPS", "250000");
  env.set("EMR_ZIPF_S", "0.99");
  env.set("EMR_PHASES", "2,0.05");
  env.set("EMR_TENANTS", "2");
  env.set("EMR_TENANT_WEIGHTS", "10 1");
  env.set("EMR_RECLAIMER_DAEMON", "aggressive");
  env.set("EMR_DAEMON_MS", "5");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.arrival, "poisson");
  EXPECT_DOUBLE_EQ(cfg.rate_ops, 250000.0);
  EXPECT_DOUBLE_EQ(cfg.zipf_s, 0.99);
  EXPECT_EQ(cfg.phases, (std::vector<double>{2.0, 0.05}));
  EXPECT_EQ(cfg.tenants, 2);
  EXPECT_EQ(cfg.tenant_weights, (std::vector<double>{10.0, 1.0}));
  EXPECT_EQ(cfg.reclaimer_daemon, "aggressive");
  EXPECT_EQ(cfg.daemon_period_ms, 5);
  harness::validate_config(cfg);  // the combination is coherent
}

TEST(Env, ServiceListKnobsRejectBadTokensNamingThem) {
  EnvGuard env;
  harness::TrialConfig cfg;

  env.set("EMR_PHASES", "2 nope 0.05");
  try {
    harness::apply_env_overrides(cfg);
    FAIL() << "bad EMR_PHASES token must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("EMR_PHASES"), std::string::npos) << what;
    EXPECT_NE(what.find("nope"), std::string::npos) << what;
  }
  env.unset("EMR_PHASES");

  env.set("EMR_TENANT_WEIGHTS", "10,1x");
  try {
    harness::apply_env_overrides(cfg);
    FAIL() << "bad EMR_TENANT_WEIGHTS token must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("EMR_TENANT_WEIGHTS"), std::string::npos) << what;
    EXPECT_NE(what.find("1x"), std::string::npos) << what;
  }
}

TEST(Env, ServiceKnobValidationNamesTheRange) {
  // validate_config owns the range checks the overrides deliberately
  // leave unclamped; every rejection names the field and its valid
  // range instead of silently repairing the value.
  auto expect_naming = [](harness::TrialConfig cfg, const char* needle) {
    try {
      harness::validate_config(cfg);
      FAIL() << "expected std::invalid_argument naming " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  harness::TrialConfig cfg;
  cfg.arrival = "open";
  expect_naming(cfg, "closed poisson burst");

  cfg = harness::TrialConfig();
  cfg.rate_ops = -1;
  expect_naming(cfg, "rate_ops");
  cfg.rate_ops = 0;
  expect_naming(cfg, "> 0 ops/sec");

  cfg = harness::TrialConfig();
  cfg.zipf_s = -0.5;
  expect_naming(cfg, "zipf_s");

  cfg = harness::TrialConfig();
  cfg.phases = {};
  expect_naming(cfg, "phases");
  cfg.phases = {1.0, -2.0};
  expect_naming(cfg, "phase multiplier");

  cfg = harness::TrialConfig();
  cfg.tenants = 0;
  expect_naming(cfg, "tenants");

  cfg = harness::TrialConfig();
  cfg.tenants = 3;
  cfg.tenant_weights = {1.0, 2.0};
  expect_naming(cfg, "tenant_weights");
  cfg.tenant_weights = {1.0, 2.0, -1.0};
  expect_naming(cfg, "tenant weight");

  cfg = harness::TrialConfig();
  cfg.reclaimer_daemon = "turbo";
  expect_naming(cfg, "off optimistic aggressive");

  cfg = harness::TrialConfig();
  cfg.daemon_period_ms = 0;
  expect_naming(cfg, "daemon_period_ms");

  // Open-loop schedules past the generation cap are rejected up front,
  // before a multi-gigabyte schedule is materialized.
  cfg = harness::TrialConfig();
  cfg.arrival = "poisson";
  cfg.rate_ops = 1e12;
  expect_naming(cfg, "lower rate_ops or measure_ms");

  // The same config in closed-loop mode is fine: the cap only guards
  // schedule generation.
  cfg.arrival = "closed";
  harness::validate_config(cfg);
}

TEST(Env, PipelineKnobsOverrideOnlyWhenPresent) {
  EnvGuard env;
  env.unset("EMR_WORKLOAD");
  env.unset("EMR_PRODUCERS");
  env.unset("EMR_QUEUE_CAP");

  harness::TrialConfig cfg;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.workload, "set");  // silent env leaves defaults alone
  EXPECT_EQ(cfg.producers, 0);
  EXPECT_EQ(cfg.queue_cap, 0u);

  env.set("EMR_WORKLOAD", "pipeline");
  env.set("EMR_PRODUCERS", "2");
  env.set("EMR_QUEUE_CAP", "8192");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.workload, "pipeline");
  EXPECT_EQ(cfg.producers, 2);
  EXPECT_EQ(cfg.queue_cap, 8192u);
  cfg.ds = "msqueue";
  harness::validate_config(cfg);  // the combination is coherent

  // A negative capacity is nonsense at the env layer already (0 means
  // unbounded, there is no smaller queue).
  env.set("EMR_QUEUE_CAP", "-1");
  EXPECT_THROW(harness::apply_env_overrides(cfg), std::invalid_argument);
}

TEST(Env, PipelineKnobValidationNamesTheRange) {
  auto expect_naming = [](harness::TrialConfig cfg, const char* needle) {
    try {
      harness::validate_config(cfg);
      FAIL() << "expected std::invalid_argument naming " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  // Unknown workload names fail fast, naming the valid choices.
  harness::TrialConfig cfg;
  cfg.workload = "queue";
  expect_naming(cfg, "set pipeline");

  // Pipeline knobs are meaningless on the set workload: reject rather
  // than silently ignore them.
  cfg = harness::TrialConfig();
  cfg.producers = 2;
  expect_naming(cfg, "pipeline");
  cfg = harness::TrialConfig();
  cfg.queue_cap = 1024;
  expect_naming(cfg, "pipeline");

  // The pipeline workload drives a queue, not a set.
  cfg = harness::TrialConfig();
  cfg.workload = "pipeline";
  cfg.ds = "abtree";
  expect_naming(cfg, "msqueue lockedqueue");

  // A role split needs at least one consumer; producers == nthreads
  // would leave the queue growing unboundedly with nobody dequeueing.
  cfg = harness::TrialConfig();
  cfg.workload = "pipeline";
  cfg.ds = "msqueue";
  cfg.nthreads = 4;
  cfg.producers = 4;
  expect_naming(cfg, "producers < nthreads");
  cfg.producers = -1;
  expect_naming(cfg, "producers");
  cfg.producers = 3;
  harness::validate_config(cfg);  // 3+1 split is fine

  // Pipeline mode is closed-loop and single-tenant (for now): the
  // open-loop arrival schedule and tenant domains assume set tenants.
  cfg = harness::TrialConfig();
  cfg.workload = "pipeline";
  cfg.ds = "msqueue";
  cfg.arrival = "poisson";
  cfg.rate_ops = 1000;
  expect_naming(cfg, "closed-loop");
  cfg = harness::TrialConfig();
  cfg.workload = "pipeline";
  cfg.ds = "msqueue";
  cfg.tenants = 2;
  expect_naming(cfg, "tenants");
}

TEST(Env, PinAndCalibrateKnobsOverrideAndValidate) {
  EnvGuard env;
  env.unset("EMR_PIN");
  env.unset("EMR_CALIBRATE");

  harness::TrialConfig cfg;
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.pin, "off");       // silent env leaves defaults alone
  EXPECT_EQ(cfg.calibrate, "on");

  env.set("EMR_PIN", "compact");
  env.set("EMR_CALIBRATE", "off");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.pin, "compact");
  EXPECT_EQ(cfg.calibrate, "off");
  harness::validate_config(cfg);

  cfg.pin = "scatter";
  harness::validate_config(cfg);

  // Malformed values fail fast in validate_config, naming the choices.
  auto expect_naming = [](harness::TrialConfig bad, const char* needle) {
    try {
      harness::validate_config(bad);
      FAIL() << "expected std::invalid_argument naming " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  harness::TrialConfig bad;
  bad.pin = "numa";
  expect_naming(bad, "off compact scatter");
  bad = harness::TrialConfig();
  bad.calibrate = "auto";
  expect_naming(bad, "on off");
}

TEST(Env, RemotePenaltyKnobMarksThePenaltyExplicit) {
  // The knob must not just set the value: it flags the config so the
  // harness's startup calibration never substitutes the measured
  // cache-line cost for a penalty the user (or an ablation sweep)
  // chose deliberately.
  EnvGuard env;
  env.unset("EMR_REMOTE_PENALTY_NS");

  harness::TrialConfig cfg;
  harness::apply_env_overrides(cfg);
  EXPECT_FALSE(cfg.alloc.remote_penalty_explicit);

  env.set("EMR_REMOTE_PENALTY_NS", "275");
  harness::apply_env_overrides(cfg);
  EXPECT_EQ(cfg.alloc.remote_free_penalty_ns, 275u);
  EXPECT_TRUE(cfg.alloc.remote_penalty_explicit);
}

TEST(Env, F64AndStr) {
  EnvGuard env;
  env.set("EMR_TEST_F", "0.75");
  EXPECT_DOUBLE_EQ(env_f64("EMR_TEST_F", 0.5), 0.75);
  env.unset("EMR_TEST_F");
  EXPECT_DOUBLE_EQ(env_f64("EMR_TEST_F", 0.5), 0.5);

  env.set("EMR_TEST_S", "hello");
  EXPECT_EQ(env_str("EMR_TEST_S", "d"), "hello");
  env.unset("EMR_TEST_S");
  EXPECT_EQ(env_str("EMR_TEST_S", "d"), "d");
}

}  // namespace
