// The per-op latency recorder (core/latency.hpp): log2 bucket
// boundaries at exact powers of two, per-lane recording and merging,
// interpolated percentile semantics (monotone in q, clamped to the
// exact max, within one bucket of the truth), and the adversarial
// shape the merge must not wash out — one lane holding all the tail
// mass.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/latency.hpp"

namespace {

using emr::kLatencyBuckets;
using emr::latency_bucket;
using emr::latency_bucket_floor;
using emr::latency_percentile;
using emr::LatencyHistogram;
using emr::LatencyRecorder;

TEST(LatencyBucket, BoundariesAtPowersOfTwo) {
  EXPECT_EQ(latency_bucket(0), 0);
  EXPECT_EQ(latency_bucket(1), 1);
  EXPECT_EQ(latency_bucket(2), 2);
  EXPECT_EQ(latency_bucket(3), 2);
  EXPECT_EQ(latency_bucket(4), 3);
  // Every power of two opens a new bucket; its predecessor closes one.
  for (int k = 1; k < 62; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    EXPECT_EQ(latency_bucket(p), k + 1) << "2^" << k;
    EXPECT_EQ(latency_bucket(p - 1), k) << "2^" << k << " - 1";
  }
  // The top bucket absorbs everything from 2^62 up, including max.
  EXPECT_EQ(latency_bucket(std::uint64_t{1} << 62), kLatencyBuckets - 1);
  EXPECT_EQ(latency_bucket(~std::uint64_t{0}), kLatencyBuckets - 1);
}

TEST(LatencyBucket, FloorRoundTrips) {
  EXPECT_EQ(latency_bucket_floor(0), 0u);
  for (int b = 1; b < kLatencyBuckets; ++b) {
    const std::uint64_t lo = latency_bucket_floor(b);
    EXPECT_EQ(latency_bucket(lo), b) << "floor of bucket " << b;
    if (b > 1) {
      EXPECT_EQ(latency_bucket(lo - 1), b - 1);
    }
  }
}

TEST(LatencyRecorder, RecordsAndMergesPerLane) {
  LatencyRecorder rec;
  rec.reset(4, /*enabled=*/true);
  ASSERT_TRUE(rec.enabled());
  ASSERT_EQ(rec.lane_count(), 4);

  rec.record(0, 100);  // bucket 7: [64, 128)
  rec.record(0, 100);
  rec.record(1, 100);
  rec.record(2, 5000);  // bucket 13: [4096, 8192)
  rec.record(3, 0);     // bucket 0

  const LatencyHistogram lane0 = rec.lane_histogram(0);
  EXPECT_EQ(lane0.count, 2u);
  EXPECT_EQ(lane0.buckets[latency_bucket(100)], 2u);
  EXPECT_EQ(lane0.max_ns, 100u);

  const LatencyHistogram all = rec.merged();
  EXPECT_EQ(all.count, 5u);
  EXPECT_EQ(all.buckets[latency_bucket(100)], 3u);
  EXPECT_EQ(all.buckets[latency_bucket(5000)], 1u);
  EXPECT_EQ(all.buckets[0], 1u);
  EXPECT_EQ(all.max_ns, 5000u);

  // Out-of-range lanes fold onto lane 0 instead of dropping samples.
  rec.record(99, 7);
  rec.record(-1, 7);
  EXPECT_EQ(rec.merged().count, 7u);
  EXPECT_EQ(rec.lane_histogram(0).count, 4u);
}

TEST(LatencyRecorder, DisabledRecorderDropsEverything) {
  LatencyRecorder rec;
  rec.reset(2, /*enabled=*/false);
  EXPECT_FALSE(rec.enabled());
  rec.record(0, 123);
  rec.record(1, 456);
  EXPECT_EQ(rec.merged().count, 0u);
}

TEST(LatencyRecorder, ResetClearsPriorSamples) {
  LatencyRecorder rec;
  rec.reset(2, true);
  rec.record(0, 64);
  ASSERT_EQ(rec.merged().count, 1u);
  rec.reset(2, true);
  EXPECT_EQ(rec.merged().count, 0u);
  EXPECT_EQ(rec.merged().max_ns, 0u);
}

TEST(LatencyPercentile, EmptyHistogramIsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(latency_percentile(h, 0.5), 0.0);
  EXPECT_EQ(latency_percentile(h, 0.999), 0.0);
}

TEST(LatencyPercentile, InterpolatesWithinTheBucket) {
  // 1000 identical samples of 100 ns live in bucket [64, 128), tightened
  // by the exact max to [64, 100]. Every quantile must stay inside that
  // bucket (the log2 resolution bound), be monotone in q, and the
  // extreme quantile must reach the exact max.
  LatencyRecorder rec;
  rec.reset(1, true);
  for (int i = 0; i < 1000; ++i) rec.record(0, 100);
  const LatencyHistogram h = rec.merged();

  const double p50 = latency_percentile(h, 0.50);
  const double p99 = latency_percentile(h, 0.99);
  const double p100 = latency_percentile(h, 1.0);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p100);
  EXPECT_DOUBLE_EQ(p100, 100.0);  // clamped to the exact max
}

TEST(LatencyPercentile, SplitsMassAcrossBuckets) {
  // Half the mass at ~10 ns, half at ~1000 ns: low quantiles must read
  // from the low bucket, high quantiles from the high one.
  LatencyRecorder rec;
  rec.reset(1, true);
  for (int i = 0; i < 500; ++i) rec.record(0, 10);    // bucket [8, 16)
  for (int i = 0; i < 500; ++i) rec.record(0, 1000);  // bucket [512, 1024)
  const LatencyHistogram h = rec.merged();

  const double p25 = latency_percentile(h, 0.25);
  const double p75 = latency_percentile(h, 0.75);
  EXPECT_GE(p25, 8.0);
  EXPECT_LE(p25, 16.0);
  EXPECT_GE(p75, 512.0);
  EXPECT_LE(p75, 1000.0);
  EXPECT_EQ(h.max_ns, 1000u);
}

TEST(LatencyPercentile, MonotoneInQ) {
  LatencyRecorder rec;
  rec.reset(1, true);
  std::uint64_t v = 1;
  for (int i = 0; i < 2000; ++i) {
    rec.record(0, v);
    v = v * 1664525 + 1013904223;  // LCG: samples across many buckets
    v &= (std::uint64_t{1} << 30) - 1;
  }
  const LatencyHistogram h = rec.merged();
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double p = latency_percentile(h, q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
  EXPECT_LE(prev, static_cast<double>(h.max_ns));
}

TEST(LatencyPercentile, OneLaneHoldsAllTheTailMass) {
  // Seven lanes run fast ops; the eighth eats every slow drain (the
  // shape a whole-bag free produces: one unlucky lane pays). The merged
  // p99.9 must surface the slow lane's bucket even though 98% of the
  // mass is fast, and the fast-only quantiles must not move.
  LatencyRecorder rec;
  rec.reset(8, true);
  for (int lane = 0; lane < 7; ++lane) {
    for (int i = 0; i < 1400; ++i) rec.record(lane, 1000);  // 1 us
  }
  for (int i = 0; i < 200; ++i) rec.record(7, 10'000'000);  // 10 ms
  const LatencyHistogram h = rec.merged();
  ASSERT_EQ(h.count, 9800u + 200u);

  const double p50 = latency_percentile(h, 0.50);
  EXPECT_GE(p50, 512.0);  // fast bucket [512, 1024]
  EXPECT_LE(p50, 1024.0);

  // Tail mass is 2%, so p99.9 must land in the slow bucket:
  // [2^23, 10ms] after the max clamp.
  const double p999 = latency_percentile(h, 0.999);
  EXPECT_GE(p999, static_cast<double>(latency_bucket_floor(
                      latency_bucket(10'000'000))));
  EXPECT_LE(p999, 10'000'000.0);
  EXPECT_EQ(h.max_ns, 10'000'000u);

  // A fast-lane-only histogram never sees the tail.
  LatencyHistogram fast;
  for (int lane = 0; lane < 7; ++lane) fast.add(rec.lane_histogram(lane));
  EXPECT_LE(latency_percentile(fast, 0.999), 1024.0);
}

TEST(LatencyRecorder, ChannelsSplitALaneWithoutLeaking) {
  // The harness keys a lane's channels by op kind: insert/erase/lookup
  // tails must stay separable while merged() still spans everything.
  LatencyRecorder rec;
  rec.reset(2, 3, /*enabled=*/true);
  ASSERT_EQ(rec.lane_count(), 2);
  ASSERT_EQ(rec.channel_count(), 3);

  rec.record(0, 0, 100);        // lane 0, "insert"
  rec.record(0, 0, 100);
  rec.record(1, 0, 100);
  rec.record(0, 1, 5000);       // "erase" carries the tail
  rec.record(1, 1, 10'000'000);
  rec.record(0, 2, 10);         // "lookup" is fast
  rec.record(1, 2, 10);

  const LatencyHistogram ins = rec.merged_channel(0);
  const LatencyHistogram ers = rec.merged_channel(1);
  const LatencyHistogram lkp = rec.merged_channel(2);
  EXPECT_EQ(ins.count, 3u);
  EXPECT_EQ(ins.max_ns, 100u);
  EXPECT_EQ(ers.count, 2u);
  EXPECT_EQ(ers.max_ns, 10'000'000u);
  EXPECT_EQ(lkp.count, 2u);
  EXPECT_EQ(lkp.max_ns, 10u);
  // A channel's tail never leaks into its neighbours...
  EXPECT_LE(latency_percentile(lkp, 1.0), 10.0);
  EXPECT_LE(latency_percentile(ins, 1.0), 100.0);
  // ...but the all-channel merge still sees it.
  const LatencyHistogram all = rec.merged();
  EXPECT_EQ(all.count, 7u);
  EXPECT_EQ(all.max_ns, 10'000'000u);

  // A lane's snapshot spans its channels.
  const LatencyHistogram lane0 = rec.lane_histogram(0);
  EXPECT_EQ(lane0.count, 4u);
  EXPECT_EQ(lane0.max_ns, 5000u);

  // Out-of-range channels fold onto 0 rather than dropping samples.
  rec.record(0, 9, 7);
  rec.record(0, -1, 7);
  EXPECT_EQ(rec.merged_channel(0).count, 5u);
  EXPECT_EQ(rec.merged().count, 9u);
}

TEST(LatencyRecorder, SingleChannelResetKeepsLegacyShape) {
  // reset(lanes, enabled) must stay exactly the one-channel recorder
  // the pre-channel callers built against.
  LatencyRecorder rec;
  rec.reset(3, true);
  EXPECT_EQ(rec.channel_count(), 1);
  rec.record(2, 42);
  EXPECT_EQ(rec.merged().count, 1u);
  EXPECT_EQ(rec.merged_channel(0).count, 1u);
  // Querying a channel that was never armed is empty, not a crash.
  EXPECT_EQ(rec.merged_channel(1).count, 0u);
}

TEST(LatencyHistogram, AddAccumulates) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.buckets[3] = 5;
  a.count = 5;
  a.max_ns = 7;
  b.buckets[3] = 2;
  b.buckets[10] = 1;
  b.count = 3;
  b.max_ns = 900;
  a.add(b);
  EXPECT_EQ(a.buckets[3], 7u);
  EXPECT_EQ(a.buckets[10], 1u);
  EXPECT_EQ(a.count, 8u);
  EXPECT_EQ(a.max_ns, 900u);
}

}  // namespace
