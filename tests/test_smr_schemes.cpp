// Scheme-faithfulness suite, parameterized over every factory name the
// benches can ask for: a node that a reader currently protects is never
// handed to the free schedule (not freed, not pool-recycled), every
// retired node is freed at teardown, and the pointer-protecting names
// resolve to their own families rather than aliasing the epoch
// machinery. Scheme-specific behaviours (HP scan partitioning, era
// grace, NBR neutralization) get their own cases at the bottom.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "smr/factory.hpp"
#include "tests/tracking_allocator.hpp"

namespace {

using namespace emr;
using test::TrackingAllocator;

void* load_ptr(const void* s) {
  return static_cast<const std::atomic<void*>*>(s)->load(
      std::memory_order_acquire);
}

struct SchemeWorld {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;
  std::vector<smr::ThreadHandle> handles;

  explicit SchemeWorld(const std::string& name, std::size_t batch = 8,
                       int threads = 2) {
    ctx.allocator = &allocator;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    cfg.af_drain_per_op = 4;
    cfg.epoch_freq = 16;  // advance the era clock within small tests
    bundle = smr::make_reclaimer(name, ctx, cfg);
    for (int t = 0; t < threads; ++t) {
      handles.push_back(r().register_thread());
    }
  }

  smr::Reclaimer& r() { return *bundle.reclaimer; }
  smr::ThreadHandle& h(int t) {
    return handles[static_cast<std::size_t>(t)];
  }
};

class SmrSchemeTest : public ::testing::TestWithParam<std::string> {};

// smr::all_factory_names() is the factory's own single source of truth
// for every constructible name (bases x the suffix grammar), so new
// names are covered here automatically.
INSTANTIATE_TEST_SUITE_P(
    AllFactoryNames, SmrSchemeTest,
    ::testing::ValuesIn(smr::all_factory_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// The core protection invariant: thread 0 protects a node mid-op;
// thread 1 unlinks and retires that node, then churns hard enough to
// drive scans, epoch advances, token passes and executor drains. The
// protected node must survive all of it — and must not be served back
// out of the pool either — until the protector's operation ends. After
// teardown every retired node must have been freed exactly once.
TEST_P(SmrSchemeTest, NoFreeWhileProtectedAndAllFreedAtTeardown) {
  const std::string name = GetParam();
  SchemeWorld w(name);

  void* x = w.r().alloc_node(w.h(0), 64);
  std::atomic<void*> src{x};
  w.r().begin_op(w.h(0));
  ASSERT_EQ(w.r().protect(w.h(0), 0, load_ptr, &src), x) << name;

  // Lane 1 "unlinks" x and retires it, then churns.
  w.r().begin_op(w.h(1));
  w.r().retire(w.h(1), x);
  w.r().end_op(w.h(1));
  for (int i = 0; i < 400; ++i) {
    w.r().begin_op(w.h(1));
    void* p = w.r().alloc_node(w.h(1), 64);
    EXPECT_NE(p, x) << name << ": protected node served out of the pool";
    w.r().retire(w.h(1), p);
    w.r().end_op(w.h(1));
  }

  EXPECT_EQ(w.allocator.freed_count(x), 0u)
      << name << ": node freed while a reader still protects it";

  w.r().end_op(w.h(0));
  w.r().flush_all();
  const smr::SmrStats st = w.r().stats();
  EXPECT_EQ(st.retired, 401u) << name;
  EXPECT_EQ(st.pending, 0u) << name;
  EXPECT_EQ(w.allocator.live(), 0u) << name;
}

// Protection slots are per-(tid, idx): releasing one thread's op leaves
// other retires reclaimable, and repeated protect calls on many slots
// never confuse the accounting.
TEST_P(SmrSchemeTest, MultiSlotTraversalAccountsExactly) {
  const std::string name = GetParam();
  SchemeWorld w(name);

  for (int round = 0; round < 8; ++round) {
    w.r().begin_op(w.h(0));
    std::vector<void*> nodes;
    for (int i = 0; i < 12; ++i) {
      void* p = w.r().alloc_node(w.h(0), 64);
      std::atomic<void*> src{p};
      EXPECT_EQ(w.r().protect(w.h(0), i, load_ptr, &src), p) << name;
      nodes.push_back(p);
    }
    w.r().end_op(w.h(0));
    w.r().begin_op(w.h(1));
    for (void* p : nodes) w.r().retire(w.h(1), p);
    w.r().end_op(w.h(1));
  }
  w.r().flush_all();
  const smr::SmrStats st = w.r().stats();
  EXPECT_EQ(st.retired, 96u) << name;
  EXPECT_EQ(st.pending, 0u) << name;
  EXPECT_EQ(w.allocator.live(), 0u) << name;
}

// The anti-aliasing check the CI smoke also enforces: every pointer-
// protecting name must resolve to its own implementation family.
TEST(SmrFamilies, PointerSchemesAreNotEbrAliases) {
  const struct {
    const char* name;
    const char* family;
  } kExpected[] = {
      {"none", "ebr"},     {"qsbr", "ebr"},     {"rcu", "ebr"},
      {"debra", "ebr"},    {"token", "token"},  {"token_naive", "token"},
      {"token_passfirst", "token"},             {"hp", "hp"},
      {"he", "era"},       {"ibr", "era"},      {"wfe", "era"},
      {"nbr", "nbr"},      {"nbrplus", "nbr"},
  };
  for (const auto& e : kExpected) {
    SchemeWorld w(e.name);
    EXPECT_STREQ(w.r().family(), e.family) << e.name;
    EXPECT_STREQ(w.r().name(), e.name);
  }
  for (const char* name : {"hp", "he", "ibr", "wfe", "nbr", "nbrplus"}) {
    SchemeWorld w(name);
    EXPECT_STRNE(w.r().family(), "ebr")
        << name << " fell back to EBR aliasing";
  }
}

// Suffixed forms of the fixed token variants are outside the name
// grammar (and outside all_factory_names()' coverage), so the factory
// must refuse them instead of constructing untested combinations.
TEST(SmrFamilies, FixedTokenVariantsTakeNoSuffix) {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  smr::SmrConfig cfg;
  for (const char* name :
       {"token_naive_af", "token_naive_pool", "token_naive_adaptive",
        "token_passfirst_af", "token_passfirst_pool",
        "token_passfirst_adaptive"}) {
    EXPECT_THROW(smr::make_reclaimer(name, ctx, cfg),
                 std::invalid_argument)
        << name;
  }
}

// HP partitions a full retire list in one scan: everything except the
// hazarded node reaches the allocator immediately, with no epoch grace.
TEST(SmrHp, ScanFreesUnprotectedImmediately) {
  SchemeWorld w("hp", /*batch=*/8);
  void* x = w.r().alloc_node(w.h(0), 64);
  std::atomic<void*> src{x};
  w.r().begin_op(w.h(0));
  w.r().protect(w.h(0), 0, load_ptr, &src);

  w.r().begin_op(w.h(1));
  w.r().retire(w.h(1), x);
  // Push past the scan threshold (batch floored at N*K+1 hazards).
  for (int i = 0; i < 96; ++i) {
    w.r().retire(w.h(1), w.r().alloc_node(w.h(1), 64));
  }
  w.r().end_op(w.h(1));

  const smr::SmrStats st = w.r().stats();
  EXPECT_GT(st.freed, 0u) << "scan should free unprotected retires";
  EXPECT_EQ(w.allocator.freed_count(x), 0u);
  EXPECT_GE(st.epochs_advanced, 1u);  // counts scans for hp

  w.r().end_op(w.h(0));
  w.r().flush_all();
  EXPECT_EQ(w.allocator.live(), 0u);
}

// Era schemes only reclaim nodes whose [birth, retire] interval no
// reservation intersects; with no readers at all, a full bag drains on
// the next scan.
TEST(SmrEra, UnreservedIntervalsReclaimWithoutReaders) {
  for (const char* name : {"he", "ibr", "wfe"}) {
    SchemeWorld w(name, /*batch=*/16);
    for (int i = 0; i < 96; ++i) {
      w.r().begin_op(w.h(0));
      w.r().retire(w.h(0), w.r().alloc_node(w.h(0), 64));
      w.r().end_op(w.h(0));
    }
    EXPECT_GT(w.r().stats().freed, 0u) << name;
    w.r().flush_all();
    EXPECT_EQ(w.r().stats().pending, 0u) << name;
    EXPECT_EQ(w.allocator.live(), 0u) << name;
  }
}

// NBR's defining move: a neutralized reader that polls validate()
// learns its read block is dead, restarts at the current era and
// thereby abandons its claim on earlier retires — which then become
// freeable — while a reader that never polls keeps blocking them.
// (protect() itself never restarts: it must not invalidate the pointer
// it is about to return.)
TEST(SmrNbr, NeutralizedReaderRestartsAndUnblocksReclamation) {
  for (const char* name : {"nbr", "nbrplus"}) {
    SchemeWorld w(name, /*batch=*/8);
    void* x = w.r().alloc_node(w.h(0), 64);
    std::atomic<void*> src{x};

    w.r().begin_op(w.h(0));
    w.r().protect(w.h(0), 0, load_ptr, &src);

    // Churn: retires + era advances set lane 0's neutralize flag, but
    // until the reader polls validate() the old announcement stands.
    w.r().begin_op(w.h(1));
    w.r().retire(w.h(1), x);
    w.r().end_op(w.h(1));
    auto churn = [&w](int ops) {
      for (int i = 0; i < ops; ++i) {
        w.r().begin_op(w.h(1));
        w.r().retire(w.h(1), w.r().alloc_node(w.h(1), 64));
        w.r().end_op(w.h(1));
      }
    };
    churn(200);
    EXPECT_EQ(w.allocator.freed_count(x), 0u)
        << name << ": unacknowledged neutralization must not unprotect";

    // The reader polls: validate() reports the neutralization, restarts
    // the read block, and x's retire era falls out of every active
    // announcement on the next churn round.
    EXPECT_FALSE(w.r().validate(w.h(0)))
        << name << ": churn should have neutralized the reader";
    EXPECT_TRUE(w.r().validate(w.h(0)))
        << name << ": a restarted block validates cleanly again";
    churn(200);
    // freed_count, not is_live: the allocator may have recycled x's
    // address for a later churn node by the time we look.
    EXPECT_GE(w.allocator.freed_count(x), 1u)
        << name << ": restarted reader should unblock reclamation";

    w.r().end_op(w.h(0));
    w.r().flush_all();
    EXPECT_EQ(w.r().stats().pending, 0u) << name;
    EXPECT_EQ(w.allocator.live(), 0u) << name;
  }
}

}  // namespace
