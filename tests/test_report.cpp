// JSON emitter round-trip: harness::emit_json / Table::write_json output
// is fed through a small strict JSON parser and checked for shape (one
// object per row, keys = headers in order), escaping (quotes, newlines,
// control characters survive a parse), and numeric typing (cells that
// look like JSON numbers are emitted unquoted and parse back to the
// same value; number-ish strings like "007" stay strings).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "harness/report.hpp"

namespace {

using emr::harness::Table;

// ------------------------------------------------------ minimal parser
//
// Strict by design: exactly the grammar emit_json claims to produce —
// an array of flat objects whose values are strings or numbers. Any
// deviation (trailing comma, unquoted key, bad escape) fails the test.

struct JsonValue {
  enum Kind { kString, kNumber } kind = kString;
  std::string str;   // kString: decoded value
  double num = 0;    // kNumber: parsed value
  std::string raw;   // kNumber: the literal as emitted
};

using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(std::vector<JsonObject>* out) {
    skip_ws();
    if (!eat('[')) return false;
    skip_ws();
    if (peek() == ']') return ++pos_, finish();
    for (;;) {
      JsonObject obj;
      if (!parse_object(&obj)) return false;
      out->push_back(std::move(obj));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      break;
    }
    if (!eat(']')) return false;
    return finish();
  }

 private:
  bool finish() {
    skip_ws();
    return pos_ == s_.size();
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_object(JsonObject* obj) {
    skip_ws();
    if (!eat('{')) return false;
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue v;
      if (peek() == '"') {
        v.kind = JsonValue::kString;
        if (!parse_string(&v.str)) return false;
      } else {
        v.kind = JsonValue::kNumber;
        if (!parse_number(&v)) return false;
      }
      obj->emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      break;
    }
    return eat('}');
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw ctrl
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= 10u + (h - 'a');
            else if (h >= 'A' && h <= 'F') code |= 10u + (h - 'A');
            else return false;
          }
          if (code > 0x7f) return false;  // emitter only escapes ASCII ctrl
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return eat('"');
  }

  bool parse_number(JsonValue* v) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    const bool leading_zero = peek() == '0';
    ++pos_;
    if (leading_zero && std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;  // 007 is not a JSON number
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    v->raw = s_.substr(start, pos_ - start);
    v->num = std::stod(v->raw);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::vector<JsonObject> parse_or_die(const std::string& text) {
  std::vector<JsonObject> rows;
  Parser p(text);
  EXPECT_TRUE(p.parse(&rows)) << "emit_json produced invalid JSON:\n"
                              << text;
  return rows;
}

// ----------------------------------------------------------------- tests

TEST(Report, JsonRoundTripShapeAndTypes) {
  Table t({"threads", "reclaimer", "Mops/s", "note"});
  t.add_row({"4", "debra_af", "12.50", "plain"});
  t.add_row({"-8", "token", "1e3", "0.5"});
  t.add_row({"007", "he", "3.25", "-0"});  // 007: string; -0: number

  std::ostringstream os;
  emr::harness::emit_json(os, t);
  const std::vector<JsonObject> rows = parse_or_die(os.str());

  ASSERT_EQ(rows.size(), 3u);
  for (const JsonObject& row : rows) {
    ASSERT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0].first, "threads");
    EXPECT_EQ(row[1].first, "reclaimer");
    EXPECT_EQ(row[2].first, "Mops/s");
    EXPECT_EQ(row[3].first, "note");
  }

  EXPECT_EQ(rows[0][0].second.kind, JsonValue::kNumber);
  EXPECT_DOUBLE_EQ(rows[0][0].second.num, 4);
  EXPECT_EQ(rows[0][1].second.kind, JsonValue::kString);
  EXPECT_EQ(rows[0][1].second.str, "debra_af");
  EXPECT_DOUBLE_EQ(rows[0][2].second.num, 12.5);

  EXPECT_DOUBLE_EQ(rows[1][0].second.num, -8);
  EXPECT_EQ(rows[1][2].second.kind, JsonValue::kNumber);
  EXPECT_DOUBLE_EQ(rows[1][2].second.num, 1000);
  EXPECT_EQ(rows[1][3].second.kind, JsonValue::kNumber);
  EXPECT_DOUBLE_EQ(rows[1][3].second.num, 0.5);

  // Number-lookalikes outside the JSON grammar must stay strings,
  // while edge cases inside it (-0) stay typed.
  EXPECT_EQ(rows[2][0].second.kind, JsonValue::kString);
  EXPECT_EQ(rows[2][0].second.str, "007");
  EXPECT_EQ(rows[2][3].second.kind, JsonValue::kNumber);
  EXPECT_DOUBLE_EQ(rows[2][3].second.num, 0);
}

TEST(Report, JsonEscapesHostileCells) {
  Table t({"name \"quoted\"", "payload"});
  t.add_row({"back\\slash", "line\nbreak\tand\ttabs"});
  t.add_row({"ctrl\x01char", "comma, \"quote\""});

  std::ostringstream os;
  emr::harness::emit_json(os, t);
  const std::vector<JsonObject> rows = parse_or_die(os.str());

  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].first, "name \"quoted\"");
  EXPECT_EQ(rows[0][0].second.str, "back\\slash");
  EXPECT_EQ(rows[0][1].second.str, "line\nbreak\tand\ttabs");
  EXPECT_EQ(rows[1][0].second.str, std::string("ctrl\x01char"));
  EXPECT_EQ(rows[1][1].second.str, "comma, \"quote\"");
}

TEST(Report, JsonShortRowsArePaddedToHeaders) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});  // add_row pads with empty cells
  std::ostringstream os;
  emr::harness::emit_json(os, t);
  const std::vector<JsonObject> rows = parse_or_die(os.str());
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0][0].second.num, 1);
  EXPECT_EQ(rows[0][1].second.kind, JsonValue::kString);
  EXPECT_EQ(rows[0][1].second.str, "");
  EXPECT_EQ(rows[0][2].second.str, "");
}

TEST(Report, JsonEmptyTableIsAnEmptyArray) {
  Table t({"x"});
  std::ostringstream os;
  emr::harness::emit_json(os, t);
  const std::vector<JsonObject> rows = parse_or_die(os.str());
  EXPECT_TRUE(rows.empty());
}

TEST(Report, WriteJsonFileMatchesEmitJson) {
  Table t({"k", "v"});
  t.add_row({"threads", "16"});
  const std::string path = ::testing::TempDir() + "emr_test_report.json";
  ASSERT_TRUE(t.write_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream file_text;
  file_text << in.rdbuf();

  std::ostringstream os;
  emr::harness::emit_json(os, t);
  EXPECT_EQ(file_text.str(), os.str());
  std::remove(path.c_str());
}

TEST(Report, WriteJsonFailsCleanlyOnBadPath) {
  Table t({"x"});
  t.add_row({"1"});
  EXPECT_FALSE(t.write_json("/nonexistent-dir-emr/out.json"));
}

// A degenerate measurement window used to print "inf"/"nan" straight
// into the numeric column and break the artifact. fixed() now maps
// non-finite values to the words, which fall outside the JSON number
// grammar and therefore get quoted — the file stays parseable.
TEST(Report, NonFiniteCellsStayParseableStrings) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(emr::harness::fixed(inf, 2), "inf");
  EXPECT_EQ(emr::harness::fixed(-inf, 3), "-inf");
  EXPECT_EQ(emr::harness::fixed(nan, 1), "nan");

  Table t({"mops", "p999_us"});
  t.add_row({emr::harness::fixed(inf, 2), emr::harness::fixed(nan, 2)});
  t.add_row({emr::harness::fixed(1.5, 2), emr::harness::fixed(-inf, 2)});

  std::ostringstream os;
  emr::harness::emit_json(os, t);
  const std::vector<JsonObject> rows = parse_or_die(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].second.kind, JsonValue::kString);
  EXPECT_EQ(rows[0][0].second.str, "inf");
  EXPECT_EQ(rows[0][1].second.kind, JsonValue::kString);
  EXPECT_EQ(rows[0][1].second.str, "nan");
  EXPECT_EQ(rows[1][0].second.kind, JsonValue::kNumber);
  EXPECT_DOUBLE_EQ(rows[1][0].second.num, 1.5);
  EXPECT_EQ(rows[1][1].second.str, "-inf");
}

// The committed snapshot at the repo root must parse with this same
// strict grammar and carry the columns the latency figure promises,
// numerically typed. EMR_SOURCE_DIR comes from CMake.
TEST(Report, CommittedLatencySnapshotParses) {
  const std::string path =
      std::string(EMR_SOURCE_DIR) + "/BENCH_fig_latency.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed snapshot: " << path;
  std::stringstream text;
  text << in.rdbuf();
  const std::vector<JsonObject> rows = parse_or_die(text.str());
  ASSERT_GE(rows.size(), 4u) << "one row per schedule at minimum";

  const char* const kNumeric[] = {
      "threads",     "mops",        "p50_us",      "p99_us",
      "p999_us",     "max_us",      "ins_p999_us", "ers_p999_us",
      "lkp_p999_us", "ops",         "target_us",   "penalty_ns"};
  const char* const kString[] = {"reclaimer", "schedule", "clock", "pin"};
  for (const JsonObject& row : rows) {
    auto find = [&](const std::string& key) -> const JsonValue* {
      for (const auto& [k, v] : row) {
        if (k == key) return &v;
      }
      return nullptr;
    };
    for (const char* key : kNumeric) {
      const JsonValue* v = find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::kNumber) << key << " = " << v->str;
    }
    for (const char* key : kString) {
      const JsonValue* v = find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::kString) << key;
      EXPECT_FALSE(v->str.empty()) << key;
    }
  }
}

TEST(Report, CommittedQueueSnapshotParses) {
  const std::string path =
      std::string(EMR_SOURCE_DIR) + "/BENCH_fig_queue.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed snapshot: " << path;
  std::stringstream text;
  text << in.rdbuf();
  const std::vector<JsonObject> rows = parse_or_die(text.str());
  // One row per layout x schedule: {sym, asym} x {batch, _af, _adaptive,
  // _latency}.
  ASSERT_GE(rows.size(), 8u);

  const char* const kNumeric[] = {
      "producers", "threads",      "mops",    "enq_p999_us",
      "deq_p999_us", "remote_share", "enq_ops", "deq_ops",
      "penalty_ns"};
  const char* const kString[] = {"layout", "ds",    "reclaimer",
                                 "schedule", "clock", "pin"};
  bool saw_sym = false;
  bool saw_asym = false;
  for (const JsonObject& row : rows) {
    auto find = [&](const std::string& key) -> const JsonValue* {
      for (const auto& [k, v] : row) {
        if (k == key) return &v;
      }
      return nullptr;
    };
    for (const char* key : kNumeric) {
      const JsonValue* v = find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::kNumber) << key << " = " << v->str;
    }
    for (const char* key : kString) {
      const JsonValue* v = find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::kString) << key;
      EXPECT_FALSE(v->str.empty()) << key;
    }
    // The share is a ratio, and the layout tags must match the producer
    // split that defines them.
    const double share = find("remote_share")->num;
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
    const std::string& layout = find("layout")->str;
    if (layout == "sym") {
      saw_sym = true;
      EXPECT_DOUBLE_EQ(find("producers")->num, 0) << "sym means no split";
    } else {
      saw_asym = true;
      EXPECT_EQ(layout, "asym");
      EXPECT_GT(find("producers")->num, 0);
    }
  }
  EXPECT_TRUE(saw_sym) << "snapshot must contain symmetric-layout rows";
  EXPECT_TRUE(saw_asym) << "snapshot must contain asymmetric-layout rows";
}

TEST(Report, CommittedHomeflushSnapshotParses) {
  const std::string path =
      std::string(EMR_SOURCE_DIR) + "/BENCH_fig_homeflush.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed snapshot: " << path;
  std::stringstream text;
  text << in.rdbuf();
  const std::vector<JsonObject> rows = parse_or_die(text.str());
  // The control, three _hf schedule forms, and the two flush-batch
  // sweep points.
  ASSERT_GE(rows.size(), 6u);

  const char* const kNumeric[] = {
      "flush_batch", "producers",    "threads",
      "mops",        "enq_p999_us",  "deq_p999_us",
      "remote_share", "stashed",     "flushed",
      "stash_backlog_end", "peak_garbage", "penalty_ns"};
  const char* const kString[] = {"reclaimer", "schedule", "ds", "clock",
                                 "pin"};
  bool saw_hf = false;
  bool saw_plain = false;
  for (const JsonObject& row : rows) {
    auto find = [&](const std::string& key) -> const JsonValue* {
      for (const auto& [k, v] : row) {
        if (k == key) return &v;
      }
      return nullptr;
    };
    for (const char* key : kNumeric) {
      const JsonValue* v = find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::kNumber) << key << " = " << v->str;
    }
    for (const char* key : kString) {
      const JsonValue* v = find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::kString) << key;
      EXPECT_FALSE(v->str.empty()) << key;
    }
    const double share = find("remote_share")->num;
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
    // The stash ledger a committed snapshot must witness: routed rows
    // stashed and flushed every rerouted block (nothing stranded at
    // teardown), control rows never touched the routing layer.
    const std::string& reclaimer = find("reclaimer")->str;
    const bool hf = reclaimer.size() > 3 &&
                    reclaimer.compare(reclaimer.size() - 3, 3, "_hf") == 0;
    EXPECT_DOUBLE_EQ(find("stash_backlog_end")->num, 0) << reclaimer;
    EXPECT_DOUBLE_EQ(find("stashed")->num, find("flushed")->num)
        << reclaimer;
    if (hf) {
      saw_hf = true;
      EXPECT_GT(find("stashed")->num, 0) << reclaimer;
    } else {
      saw_plain = true;
      EXPECT_DOUBLE_EQ(find("stashed")->num, 0) << reclaimer;
    }
  }
  EXPECT_TRUE(saw_hf) << "snapshot must contain _hf rows";
  EXPECT_TRUE(saw_plain) << "snapshot must contain a non-hf control row";
}

TEST(Report, CommittedServiceSnapshotParses) {
  const std::string path =
      std::string(EMR_SOURCE_DIR) + "/BENCH_fig_service.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed snapshot: " << path;
  std::stringstream text;
  text << in.rdbuf();
  const std::vector<JsonObject> rows = parse_or_die(text.str());
  // closed-cal + light/over x two seeds + determinism repeats + the two
  // tenant cells.
  ASSERT_GE(rows.size(), 7u);

  const char* const kNumeric[] = {
      "threads",      "rate_ops",     "offered",        "completed",
      "mops",         "q_p50_us",     "q_p999_us",      "svc_p999_us",
      "peak_backlog", "mean_backlog", "daemon_drained", "penalty_ns"};
  const char* const kString[] = {"scenario", "arrival", "reclaimer",
                                 "daemon", "sched_hash", "clock", "pin"};
  bool saw_open_loop = false;
  for (const JsonObject& row : rows) {
    auto find = [&](const std::string& key) -> const JsonValue* {
      for (const auto& [k, v] : row) {
        if (k == key) return &v;
      }
      return nullptr;
    };
    for (const char* key : kNumeric) {
      const JsonValue* v = find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::kNumber) << key << " = " << v->str;
    }
    for (const char* key : kString) {
      const JsonValue* v = find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_EQ(v->kind, JsonValue::kString) << key;
      EXPECT_FALSE(v->str.empty()) << key;
    }
    // Open-loop rows stamp the schedule hash as "0x..." — the prefix
    // keeps the cell a JSON string even when the hex digits happen to
    // all be decimal.
    const JsonValue* hash = find("sched_hash");
    if (hash->str != "-") {
      saw_open_loop = true;
      EXPECT_EQ(hash->str.compare(0, 2, "0x"), 0) << hash->str;
      EXPECT_EQ(hash->str.size(), 18u) << hash->str;
    }
  }
  EXPECT_TRUE(saw_open_loop)
      << "the snapshot must contain open-loop service rows";
}

}  // namespace
