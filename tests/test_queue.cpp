// The queue subsystem's correctness suite: single-threaded model checks
// against std::deque, capacity/backpressure behavior, a multi-threaded
// producer/consumer stress over the guarded per-hop traversal (the TSAN
// target in ci/check.sh, checking FIFO-per-producer with no loss and no
// duplication), and a teardown sweep across every queue x reclaimer
// pair proving nothing leaks — including the MS queue's dummy node.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "ds/queue.hpp"
#include "smr/factory.hpp"
#include "tests/tracking_allocator.hpp"

namespace {

using namespace emr;
using test::TrackingAllocator;

struct QueueWorld {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;
  std::unique_ptr<ds::ConcurrentQueue> queue;
  // Declared after `queue`: handles release before the structure's
  // destructor registers its own teardown handle.
  std::vector<smr::ThreadHandle> handles;

  QueueWorld(const std::string& queue_name, const std::string& reclaimer,
             std::uint64_t capacity = 0, int threads = 4,
             std::size_t batch = 16) {
    ctx.allocator = &allocator;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    cfg.epoch_freq = 16;
    bundle = smr::make_reclaimer(reclaimer, ctx, cfg);
    ds::QueueConfig qcfg;
    qcfg.capacity = capacity;
    qcfg.num_threads = threads;
    queue = ds::make_queue(queue_name, qcfg, bundle.reclaimer.get());
    for (int t = 0; t < threads; ++t) {
      handles.push_back(bundle.reclaimer->register_thread());
    }
  }

  smr::ThreadHandle& h(int t) {
    return handles[static_cast<std::size_t>(t)];
  }

  void teardown() {
    handles.clear();
    queue.reset();
    bundle.reclaimer->flush_all();
  }
};

// Producer-tagged values: the producer id rides the high bits, a
// per-producer sequence number the low bits, so a consumer can check
// FIFO order per producer and global no-loss/no-duplication.
constexpr std::uint64_t tag(std::uint64_t pid, std::uint64_t seq) {
  return (pid << 32) | seq;
}
constexpr std::uint64_t tag_pid(std::uint64_t v) { return v >> 32; }
constexpr std::uint64_t tag_seq(std::uint64_t v) {
  return v & 0xFFFF'FFFFull;
}

// ------------------------------------------------------ model checking

class QueueModelTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllQueues, QueueModelTest,
                         ::testing::ValuesIn(ds::queue_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// Every queue flavor must agree with std::deque on a long random op
// stream: same success/failure on every op, same value out of every
// successful dequeue, in the same order.
TEST_P(QueueModelTest, MatchesStdDequeSingleThreaded) {
  for (const char* reclaimer : {"debra", "hp"}) {
    QueueWorld w(GetParam(), reclaimer);
    std::deque<std::uint64_t> model;
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
      if (rng.next_range(2) == 0) {
        const std::uint64_t v = rng.next_range(1u << 20);
        ASSERT_TRUE(w.queue->enqueue(w.h(0), v)) << reclaimer << " op " << i;
        model.push_back(v);
      } else {
        std::uint64_t got = 0;
        const bool ok = w.queue->dequeue(w.h(0), &got);
        ASSERT_EQ(ok, !model.empty()) << reclaimer << " op " << i;
        if (ok) {
          ASSERT_EQ(got, model.front()) << reclaimer << " op " << i;
          model.pop_front();
        }
      }
    }
    // Drain: the remaining contents must come out in model order.
    while (!model.empty()) {
      std::uint64_t got = 0;
      ASSERT_TRUE(w.queue->dequeue(w.h(0), &got)) << reclaimer;
      ASSERT_EQ(got, model.front()) << reclaimer;
      model.pop_front();
    }
    std::uint64_t got = 0;
    EXPECT_FALSE(w.queue->dequeue(w.h(0), &got)) << reclaimer;
    w.teardown();
    EXPECT_EQ(w.allocator.live(), 0u) << reclaimer;
  }
}

// Bounded queues refuse enqueues at capacity (and only at capacity):
// the pipeline workload's backpressure contract.
TEST_P(QueueModelTest, CapacityBoundsEnqueue) {
  QueueWorld w(GetParam(), "debra", /*capacity=*/4);
  std::uint64_t got = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(w.queue->enqueue(w.h(0), i)) << i;
  }
  EXPECT_FALSE(w.queue->enqueue(w.h(0), 99)) << "enqueue past capacity";
  ASSERT_TRUE(w.queue->dequeue(w.h(0), &got));
  EXPECT_EQ(got, 0u);
  EXPECT_TRUE(w.queue->enqueue(w.h(0), 4))
      << "a dequeue must reopen one slot";
  EXPECT_FALSE(w.queue->enqueue(w.h(0), 99));
  for (std::uint64_t want = 1; want <= 4; ++want) {
    ASSERT_TRUE(w.queue->dequeue(w.h(0), &got));
    EXPECT_EQ(got, want);
  }
  EXPECT_FALSE(w.queue->dequeue(w.h(0), &got));
  w.teardown();
  EXPECT_EQ(w.allocator.live(), 0u);
}

// ------------------------------------------- multi-threaded pipelines

class QueueConcurrentTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllQueues, QueueConcurrentTest,
                         ::testing::ValuesIn(ds::queue_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// Two producers and two consumers churn while retirement runs
// underneath the guarded hops. Afterwards: every enqueued value came
// out exactly once (no loss, no duplication), and each consumer saw
// every producer's values in increasing sequence order (FIFO per
// producer — the linearizable-queue guarantee observable without a
// global dequeue log). The tracking allocator asserts on any double or
// foreign free; under the TSAN build in ci/check.sh this is also the
// data-race check for the queue's traversal protocol.
TEST_P(QueueConcurrentTest, ConcurrentPipelineKeepsFifoPerProducer) {
  for (const char* reclaimer : {"debra", "hp", "ibr", "nbr", "debra_pool"}) {
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    constexpr std::uint64_t kPerProducer = 4000;
    QueueWorld w(GetParam(), reclaimer, /*capacity=*/256,
                 /*threads=*/kProducers + kConsumers, /*batch=*/8);

    std::atomic<int> live_producers{kProducers};
    std::vector<std::vector<std::uint64_t>> consumed(kConsumers);
    std::vector<std::thread> threads;
    for (int pid = 0; pid < kProducers; ++pid) {
      threads.emplace_back([&, pid] {
        smr::ThreadHandle& h = w.h(pid);
        for (std::uint64_t seq = 0; seq < kPerProducer; ++seq) {
          while (!w.queue->enqueue(
              h, tag(static_cast<std::uint64_t>(pid), seq))) {
            std::this_thread::yield();  // full: wait for a consumer
          }
        }
        live_producers.fetch_sub(1, std::memory_order_release);
      });
    }
    for (int cid = 0; cid < kConsumers; ++cid) {
      threads.emplace_back([&, cid] {
        smr::ThreadHandle& h = w.h(kProducers + cid);
        std::vector<std::uint64_t>& out =
            consumed[static_cast<std::size_t>(cid)];
        std::uint64_t v = 0;
        while (true) {
          if (w.queue->dequeue(h, &v)) {
            out.push_back(v);
          } else if (live_producers.load(std::memory_order_acquire) == 0) {
            // Empty with no producer left: one final poll below (the
            // last enqueue may still be racing the emptiness check).
            if (!w.queue->dequeue(h, &v)) break;
            out.push_back(v);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    // FIFO per producer within each consumer's local order.
    std::map<std::uint64_t, std::uint64_t> seen_count;
    for (int cid = 0; cid < kConsumers; ++cid) {
      std::uint64_t last_seq[kProducers];
      bool any[kProducers] = {};
      for (std::uint64_t v : consumed[static_cast<std::size_t>(cid)]) {
        const std::uint64_t pid = tag_pid(v);
        ASSERT_LT(pid, static_cast<std::uint64_t>(kProducers)) << reclaimer;
        if (any[pid]) {
          ASSERT_GT(tag_seq(v), last_seq[pid])
              << reclaimer << ": consumer " << cid
              << " saw producer " << pid << " out of order";
        }
        any[pid] = true;
        last_seq[pid] = tag_seq(v);
        ++seen_count[v];
      }
    }
    // No loss, no duplication, globally.
    ASSERT_EQ(seen_count.size(), kProducers * kPerProducer) << reclaimer;
    for (const auto& [v, n] : seen_count) {
      ASSERT_EQ(n, 1u) << reclaimer << ": value " << v << " dequeued "
                       << n << " times";
    }
    w.teardown();
    EXPECT_EQ(w.allocator.live(), 0u) << GetParam() << " x " << reclaimer;
    EXPECT_EQ(w.allocator.allocs(), w.allocator.frees())
        << GetParam() << " x " << reclaimer;
  }
}

// ------------------------------------------------------ teardown sweep

// Every queue x reclaimer-name pair (all bases x batch/_af/_pool) must
// free every node it ever allocated — including the MS queue's dummy —
// once the queue is destroyed and the reclaimer flushed.
TEST(QueueTeardown, EveryPairFreesEverything) {
  for (const std::string& queue_name : ds::queue_names()) {
    for (const std::string& reclaimer : smr::all_factory_names()) {
      QueueWorld w(queue_name, reclaimer, /*capacity=*/0, /*threads=*/2);
      Rng rng(3);
      std::uint64_t got = 0;
      for (int i = 0; i < 400; ++i) {
        smr::ThreadHandle& h = w.h(i & 1);
        if (rng.next_range(2) == 0) {
          w.queue->enqueue(h, rng.next_range(1u << 16));
        } else {
          w.queue->dequeue(h, &got);
        }
      }
      w.teardown();
      EXPECT_EQ(w.allocator.live(), 0u)
          << queue_name << " x " << reclaimer;
      EXPECT_EQ(w.allocator.allocs(), w.allocator.frees())
          << queue_name << " x " << reclaimer;
      EXPECT_EQ(w.bundle.reclaimer->stats().pending, 0u)
          << queue_name << " x " << reclaimer;
    }
  }
}

// -------------------------------------------------------- factory misc

TEST(QueueFactory, UnknownNamesFailFastWithValidList) {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle = smr::make_reclaimer("debra", ctx, cfg);
  try {
    ds::make_queue("ringbuffer9000", {}, bundle.reclaimer.get());
    FAIL() << "unknown queue name must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("msqueue"), std::string::npos)
        << "error must list the valid names, got: " << e.what();
  }
  EXPECT_THROW(ds::node_size_for_queue("nope"), std::invalid_argument);
  EXPECT_THROW(ds::make_queue("msqueue", {}, nullptr),
               std::invalid_argument);
}

TEST(QueueFactory, NodeSizesComeFromRealNodeTypes) {
  EXPECT_EQ(ds::node_size_for_queue("msqueue"), 64u);
  EXPECT_EQ(ds::node_size_for_queue("lockedqueue"), 32u);
  for (const std::string& name : ds::queue_names()) {
    TrackingAllocator allocator;
    smr::SmrContext ctx;
    ctx.allocator = &allocator;
    smr::SmrConfig cfg;
    smr::ReclaimerBundle bundle = smr::make_reclaimer("debra", ctx, cfg);
    auto q = ds::make_queue(name, {}, bundle.reclaimer.get());
    EXPECT_EQ(q->node_size(), ds::node_size_for_queue(name)) << name;
    EXPECT_EQ(q->name(), name);
  }
}

}  // namespace
