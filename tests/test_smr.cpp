// Reclaimer invariants: retire->flush accounting (exactly-once frees),
// batch-size deferral, bounded asynchronous-free lag, pooling recycling,
// and factory coverage across every name the benches use.
#include <gtest/gtest.h>

#include <vector>

#include "smr/factory.hpp"
#include "smr/pooling_executor.hpp"
#include "tests/tracking_allocator.hpp"

namespace {

using namespace emr;
using test::TrackingAllocator;

struct World {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;
  // One registered handle per logical lane; the single-threaded tests
  // multiplex them (legal: one thread at a time per handle).
  std::vector<smr::ThreadHandle> handles;

  explicit World(const std::string& name, std::size_t batch = 8,
                 std::size_t drain = 1, int threads = 2) {
    ctx.allocator = &allocator;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    cfg.af_drain_per_op = drain;
    bundle = smr::make_reclaimer(name, ctx, cfg);
    for (int t = 0; t < threads; ++t) {
      handles.push_back(r().register_thread());
    }
  }

  smr::Reclaimer& r() { return *bundle.reclaimer; }
  smr::ThreadHandle& h(int t) {
    return handles[static_cast<std::size_t>(t)];
  }

  /// One no-op operation on each handle: lets epochs advance and the AF
  /// executor drain.
  void tick() {
    for (int t = 0; t < cfg.num_threads; ++t) {
      r().begin_op(h(t));
      r().end_op(h(t));
    }
  }

  void retire_nodes(int tid, int n, std::size_t size = 64) {
    for (int i = 0; i < n; ++i) {
      r().begin_op(h(tid));
      r().retire(h(tid), r().alloc_node(h(tid), size));
      r().end_op(h(tid));
    }
  }
};

TEST(SmrAccounting, RetireFlushFreesExactlyOnce) {
  for (const char* name : {"debra", "qsbr", "token", "hp", "none"}) {
    World w(name);
    w.retire_nodes(0, 100);
    w.r().flush_all();
    const smr::SmrStats st = w.r().stats();
    EXPECT_EQ(st.retired, 100u) << name;
    EXPECT_EQ(st.freed, 100u) << name;
    EXPECT_EQ(st.pending, 0u) << name;
    EXPECT_EQ(w.allocator.live(), 0u) << name;  // exactly-once, no leaks
  }
}

TEST(SmrAccounting, AfVariantsFlushEverything) {
  for (const std::string& base : smr::experiment2_reclaimers()) {
    World w(base + "_af");
    w.retire_nodes(0, 50);
    w.r().flush_all();
    const smr::SmrStats st = w.r().stats();
    EXPECT_EQ(st.retired, 50u) << base;
    EXPECT_EQ(st.freed, 50u) << base;
    EXPECT_EQ(w.allocator.live(), 0u) << base;
  }
}

TEST(SmrBatching, BatchThresholdDefersFrees) {
  // With batch_size=64, nothing may reach the allocator until a bag fills
  // (and epochs pass), no matter how many quiescent rounds go by.
  World w("debra", /*batch=*/64);
  w.retire_nodes(0, 63);
  for (int i = 0; i < 32; ++i) w.tick();
  EXPECT_EQ(w.r().stats().freed, 0u);
  EXPECT_EQ(w.r().stats().pending, 63u);

  // Crossing the threshold seals the bag; two epoch advances later the
  // whole bag is freed at once.
  w.retire_nodes(0, 1);
  for (int i = 0; i < 64; ++i) w.tick();
  EXPECT_EQ(w.r().stats().freed, 64u);
  EXPECT_EQ(w.r().stats().pending, 0u);
}

TEST(SmrBatching, LeakingReclaimerNeverFreesUntilFlush) {
  World w("none", /*batch=*/8);
  w.retire_nodes(0, 200);
  for (int i = 0; i < 100; ++i) w.tick();
  EXPECT_EQ(w.r().stats().freed, 0u);
  EXPECT_EQ(w.r().stats().pending, 200u);
  w.r().flush_all();
  EXPECT_EQ(w.r().stats().pending, 0u);
}

TEST(SmrAmortized, DrainRateBoundsFreesPerOp) {
  // Fill one bag, let it become reclaimable, then count frees per op.
  const std::size_t kBatch = 32;
  const std::size_t kDrain = 4;
  World w("debra_af", kBatch, kDrain);
  w.retire_nodes(0, static_cast<int>(kBatch));
  for (int i = 0; i < 64; ++i) w.tick();  // bag reaches the freeable list

  const std::uint64_t before = w.r().stats().freed;
  w.r().begin_op(w.h(0));
  w.r().end_op(w.h(0));
  const std::uint64_t after = w.r().stats().freed;
  EXPECT_LE(after - before, kDrain);
}

TEST(SmrAmortized, BacklogDrainsWithBoundedLag) {
  // Once a bag is freeable, at most ceil(batch/drain) further ops may
  // pass before the backlog is empty.
  const std::size_t kBatch = 32;
  const std::size_t kDrain = 4;
  World w("debra_af", kBatch, kDrain);
  w.retire_nodes(0, static_cast<int>(kBatch));
  // Epoch grace: a few collective rounds seal + age the bag.
  for (int i = 0; i < 16; ++i) w.tick();
  // Lag bound: batch/drain ops on the owning thread drain everything.
  for (std::size_t i = 0; i < kBatch / kDrain + 1; ++i) {
    w.r().begin_op(w.h(0));
    w.r().end_op(w.h(0));
  }
  EXPECT_EQ(w.r().stats().freed, kBatch);
  EXPECT_EQ(w.r().executor().backlog(), 0u);
}

TEST(SmrPooling, PoolRecyclesRetiredNodes) {
  World w("debra_pool", /*batch=*/8);
  w.retire_nodes(0, 64);
  for (int i = 0; i < 64; ++i) w.tick();

  auto* pool =
      dynamic_cast<smr::PoolingFreeExecutor*>(&w.r().executor());
  ASSERT_NE(pool, nullptr);
  const std::uint64_t allocs_before = w.allocator.allocs();
  for (int i = 0; i < 16; ++i) {
    w.r().begin_op(w.h(0));
    void* p = w.r().alloc_node(w.h(0), 64);
    w.r().retire(w.h(0), p);
    w.r().end_op(w.h(0));
  }
  EXPECT_GT(pool->total_pooled_allocs(), 0u);
  EXPECT_LT(w.allocator.allocs() - allocs_before, 16u);
  w.r().flush_all();
  EXPECT_EQ(w.allocator.live(), 0u);
}

TEST(SmrTokens, TokenVariantsAccountExactly) {
  for (const char* name :
       {"token_naive", "token_passfirst", "token", "token_af"}) {
    World w(name, /*batch=*/8);
    w.retire_nodes(0, 40);
    w.retire_nodes(1, 40);
    for (int i = 0; i < 32; ++i) w.tick();
    w.r().flush_all();
    const smr::SmrStats st = w.r().stats();
    EXPECT_EQ(st.retired, 80u) << name;
    EXPECT_EQ(st.freed, 80u) << name;
    EXPECT_EQ(w.allocator.live(), 0u) << name;
  }
}

TEST(SmrProtect, ProtectReturnsTheLoadedPointer) {
  for (const char* name : {"debra", "hp", "ibr", "token"}) {
    World w(name);
    void* node = w.r().alloc_node(w.h(0), 64);
    std::atomic<void*> src{node};
    w.r().begin_op(w.h(0));
    void* p = w.r().protect(
        w.h(0), 0,
        [](const void* s) {
          return static_cast<const std::atomic<void*>*>(s)->load(
              std::memory_order_acquire);
        },
        &src);
    w.r().end_op(w.h(0));
    EXPECT_EQ(p, node) << name;
    w.r().dealloc_unpublished(w.h(0), node);
    EXPECT_EQ(w.allocator.live(), 0u) << name;
  }
}

TEST(SmrFactory, UnknownNameThrows) {
  World dummy("debra");  // borrow a valid ctx
  smr::SmrContext ctx;
  ctx.allocator = &dummy.allocator;
  smr::SmrConfig cfg;
  EXPECT_THROW(smr::make_reclaimer("bogus", ctx, cfg),
               std::invalid_argument);
  EXPECT_THROW(smr::make_reclaimer("", ctx, cfg), std::invalid_argument);
  smr::SmrContext no_alloc;
  EXPECT_THROW(smr::make_reclaimer("debra", no_alloc, cfg),
               std::invalid_argument);
}

TEST(SmrFactory, EveryBenchNameConstructs) {
  std::vector<std::string> names = {"none", "token_naive",
                                    "token_passfirst"};
  for (const std::string& base : smr::experiment2_reclaimers()) {
    names.push_back(base);
    names.push_back(base + "_af");
  }
  names.push_back("debra_pool");
  names.push_back("token_pool");
  for (const std::string& name : names) {
    World w(name);
    w.retire_nodes(0, 10);
    w.r().flush_all();
    EXPECT_EQ(w.r().stats().pending, 0u) << name;
    EXPECT_EQ(w.allocator.live(), 0u) << name;
  }
}

}  // namespace
