// Allocator accounting across every factory name — model AND real
// backends. The harness's %free / %flush / RBF numbers are only as good
// as these counters, and the real backends (EMR_REAL_ALLOC=ON) keep
// their books in a wrapper header rather than the model's own bins, so
// the invariants are asserted per name: alloc/free exactness, the
// remote-free attribution, and the >4096 B large-allocation bypass
// (large blocks skip the caches, so a cross-thread large free is not a
// remote free — there is no thread cache to miss).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alloc/factory.hpp"

namespace {

using namespace emr;

class AllocStatsTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (alloc::allocator_backend(GetParam()) ==
        alloc::Backend::kUnavailable) {
      GTEST_SKIP() << "real backend '" << GetParam()
                   << "' not linked into this build";
    }
    alloc::AllocConfig cfg;
    cfg.max_threads = 4;
    a_ = alloc::make_allocator(GetParam(), cfg);
  }

  std::unique_ptr<alloc::Allocator> a_;
};

TEST_P(AllocStatsTest, AllocFreeCountersAreExact) {
  constexpr int kRounds = 257;  // deliberately not a power of two
  std::vector<void*> ptrs;
  for (int i = 0; i < kRounds; ++i) {
    void* p = a_->allocate(0, 240);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xAB, 240);  // the block must actually be writable
    ptrs.push_back(p);
  }
  for (void* p : ptrs) a_->deallocate(0, p);

  const alloc::AllocTotals t = a_->stats().totals;
  EXPECT_EQ(t.n_alloc, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(t.n_free, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(t.n_remote_free, 0u);  // same tid throughout
}

TEST_P(AllocStatsTest, RemoteFreeAttributionFollowsTheAllocatingThread) {
  constexpr int kRemote = 100;
  constexpr int kLocal = 50;
  std::vector<void*> ptrs;
  for (int i = 0; i < kRemote; ++i) ptrs.push_back(a_->allocate(0, 240));
  for (void* p : ptrs) a_->deallocate(1, p);  // freed by a foreign tid
  ptrs.clear();
  for (int i = 0; i < kLocal; ++i) ptrs.push_back(a_->allocate(2, 240));
  for (void* p : ptrs) a_->deallocate(2, p);  // home frees

  const alloc::AllocTotals t = a_->stats().totals;
  EXPECT_EQ(t.n_alloc, static_cast<std::uint64_t>(kRemote + kLocal));
  EXPECT_EQ(t.n_free, static_cast<std::uint64_t>(kRemote + kLocal));
  EXPECT_EQ(t.n_remote_free, static_cast<std::uint64_t>(kRemote));
}

TEST_P(AllocStatsTest, LargeAllocationsBypassRemoteAccounting) {
  // > 4096 B (the largest size class) goes straight to the OS path on
  // every backend; freeing it from another thread must not count as a
  // remote free — there is no tcache involved to pay the RBF cost.
  constexpr int kLarge = 16;
  std::vector<void*> ptrs;
  for (int i = 0; i < kLarge; ++i) {
    void* p = a_->allocate(0, 8192);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xCD, 8192);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) a_->deallocate(3, p);  // cross-tid, but large

  const alloc::AllocTotals t = a_->stats().totals;
  EXPECT_EQ(t.n_alloc, static_cast<std::uint64_t>(kLarge));
  EXPECT_EQ(t.n_free, static_cast<std::uint64_t>(kLarge));
  EXPECT_EQ(t.n_remote_free, 0u);

  // The boundary itself: 4096 is still classed, 4097 is large.
  void* classed = a_->allocate(0, 4096);
  a_->deallocate(1, classed);
  void* large = a_->allocate(0, 4097);
  a_->deallocate(1, large);
  const alloc::AllocTotals t2 = a_->stats().totals;
  EXPECT_EQ(t2.n_remote_free, 1u);  // only the classed block counted
}

TEST_P(AllocStatsTest, MappedBytesTrackLiveMemory) {
  const std::uint64_t base_peak = a_->stats().peak_bytes_mapped;
  void* p = a_->allocate(0, 64 * 1024);  // large: mapped on demand
  ASSERT_NE(p, nullptr);
  const alloc::AllocStats mid = a_->stats();
  EXPECT_GE(mid.bytes_mapped, 64u * 1024u);
  EXPECT_GE(mid.peak_bytes_mapped, mid.bytes_mapped);
  a_->deallocate(0, p);
  const alloc::AllocStats after = a_->stats();
  // The large block is returned; current mapped drops back below the
  // peak, and the peak never decreases.
  EXPECT_LT(after.bytes_mapped, mid.bytes_mapped);
  EXPECT_GE(after.peak_bytes_mapped, base_peak);
  EXPECT_GE(after.peak_bytes_mapped, after.bytes_mapped);
}

INSTANTIATE_TEST_SUITE_P(
    AllNames, AllocStatsTest,
    ::testing::ValuesIn(alloc::allocator_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;  // je, tc, mi, system, je_model, ...
    });

}  // namespace
