// Service-mode suite (docs/SERVICE_MODE.md): arrival-schedule
// determinism (same seed -> byte-identical schedule, at every worker
// count), the shape knobs (phases, bursts, zipf skew, tenant weights),
// open-loop trials completing their offered load and separating
// queueing delay from service latency, multi-tenant executor ledgers
// summing exactly, the hot-tenant starvation regression, and the
// reclaimer-daemon levels — including the *DaemonChurn* start/stop vs
// handle-churn stress ci/check.sh race-checks under TSAN.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/arrival.hpp"
#include "harness/workload.hpp"
#include "smr/factory.hpp"
#include "smr/reclaimer_daemon.hpp"
#include "tests/tracking_allocator.hpp"

namespace {

using namespace emr;
using harness::Op;
using harness::OpStream;
using harness::TrialConfig;

ArrivalConfig small_arrivals() {
  ArrivalConfig cfg;
  cfg.rate_ops = 200'000;
  cfg.duration_ns = 50'000'000;  // 50 ms -> ~10k events
  cfg.seed = 7;
  cfg.keyrange = 4096;
  return cfg;
}

// ------------------------------------------------- schedule determinism

TEST(ArrivalTest, SameSeedByteIdenticalSchedule) {
  const ArrivalConfig cfg = small_arrivals();
  const std::vector<Arrival> a = generate_arrivals(cfg);
  const std::vector<Arrival> b = generate_arrivals(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i] == b[i]) << "event " << i << " diverged";
  }
  EXPECT_EQ(arrival_schedule_hash(a), arrival_schedule_hash(b));
}

TEST(ArrivalTest, SeedChangesTheSchedule) {
  ArrivalConfig cfg = small_arrivals();
  const std::uint64_t h1 = arrival_schedule_hash(generate_arrivals(cfg));
  cfg.seed = 8;
  const std::uint64_t h2 = arrival_schedule_hash(generate_arrivals(cfg));
  EXPECT_NE(h1, h2);
}

TEST(ArrivalTest, RateControlsEventVolumeAndOrdering) {
  const ArrivalConfig cfg = small_arrivals();
  const std::vector<Arrival> s = generate_arrivals(cfg);
  const double expected =
      cfg.rate_ops * static_cast<double>(cfg.duration_ns) / 1e9;
  EXPECT_NEAR(static_cast<double>(s.size()), expected, expected * 0.15);
  for (std::size_t i = 1; i < s.size(); ++i) {
    ASSERT_LE(s[i - 1].t_ns, s[i].t_ns);
    ASSERT_LT(s[i].t_ns, cfg.duration_ns);
  }
}

TEST(ArrivalTest, PhasesShapeTheWindow) {
  ArrivalConfig cfg = small_arrivals();
  cfg.phases = {4.0, 0.1};  // busy first half, near-idle tail
  const std::vector<Arrival> s = generate_arrivals(cfg);
  std::size_t first = 0;
  for (const Arrival& a : s) {
    if (a.t_ns < cfg.duration_ns / 2) ++first;
  }
  const std::size_t second = s.size() - first;
  // 40:1 nominal density ratio; require a conservative 4:1.
  EXPECT_GT(first, 4 * std::max<std::size_t>(second, 1));
}

TEST(ArrivalTest, BurstsClusterWithoutChangingTheMean) {
  const ArrivalConfig poisson = small_arrivals();
  ArrivalConfig burst = small_arrivals();
  burst.process = ArrivalConfig::Process::kBurst;
  burst.burst_factor = 3.0;
  burst.burst_duty = 0.25;
  burst.burst_period_ns = 10'000'000;

  const std::vector<Arrival> p = generate_arrivals(poisson);
  const std::vector<Arrival> b = generate_arrivals(burst);
  // Mean-preserving: the square wave reshapes, never adds, load.
  EXPECT_NEAR(static_cast<double>(b.size()), static_cast<double>(p.size()),
              static_cast<double>(p.size()) * 0.2);

  // Event density inside the on-window (first quarter of every period)
  // vs outside: nominal 9x (3.0 on vs 1/3 off), require 2x.
  const double duty_ns =
      burst.burst_duty * static_cast<double>(burst.burst_period_ns);
  std::size_t on = 0;
  for (const Arrival& a : b) {
    if (static_cast<double>(a.t_ns % burst.burst_period_ns) < duty_ns) ++on;
  }
  const std::size_t off = b.size() - on;
  const double on_density =
      static_cast<double>(on) / burst.burst_duty;
  const double off_density =
      static_cast<double>(off) / (1.0 - burst.burst_duty);
  EXPECT_GT(on_density, 2.0 * off_density);
}

TEST(ArrivalTest, ZipfSkewsKeysTowardLowRanks) {
  ArrivalConfig cfg = small_arrivals();
  cfg.zipf_s = 1.1;
  const std::vector<Arrival> s = generate_arrivals(cfg);
  std::size_t hot = 0;  // top 1% of the keyrange by rank
  for (const Arrival& a : s) {
    ASSERT_LT(a.key, cfg.keyrange);
    if (a.key < cfg.keyrange / 100) ++hot;
  }
  // Under s = 1.1 the head carries far more than its uniform 1% share.
  EXPECT_GT(hot, s.size() / 5);

  cfg.zipf_s = 0.0;
  std::size_t hot_uniform = 0;
  for (const Arrival& a : generate_arrivals(cfg)) {
    if (a.key < cfg.keyrange / 100) ++hot_uniform;
  }
  EXPECT_LT(hot_uniform, s.size() / 20);
}

TEST(ArrivalTest, ZipfSamplerIsRankedAndDeterministic) {
  const Zipf z(1000, 0.99);
  EXPECT_FALSE(z.uniform());
  EXPECT_EQ(z.sample(0.0), 0u);  // rank 0 is the hottest
  EXPECT_LT(z.sample(0.999999), 1000u);
  EXPECT_EQ(z.sample(0.5), z.sample(0.5));

  const Zipf u(1000, 0.0);
  EXPECT_TRUE(u.uniform());
  EXPECT_EQ(u.sample(0.0), 0u);
  EXPECT_EQ(u.sample(0.5), 500u);
}

TEST(ArrivalTest, TenantWeightsAndOpMixRespected) {
  ArrivalConfig cfg = small_arrivals();
  cfg.tenants = 2;
  cfg.tenant_weights = {10.0, 1.0};
  cfg.insert_frac = 0.25;
  cfg.erase_frac = 0.25;
  const std::vector<Arrival> s = generate_arrivals(cfg);
  std::size_t per_tenant[2] = {0, 0};
  std::size_t per_kind[3] = {0, 0, 0};
  for (const Arrival& a : s) {
    ASSERT_LT(a.tenant, 2u);
    ASSERT_LT(a.kind, 3u);
    ++per_tenant[a.tenant];
    ++per_kind[a.kind];
  }
  const auto n = static_cast<double>(s.size());
  EXPECT_NEAR(static_cast<double>(per_tenant[0]), n * 10.0 / 11.0, n * 0.05);
  EXPECT_NEAR(static_cast<double>(per_kind[0]), n * 0.25, n * 0.05);
  EXPECT_NEAR(static_cast<double>(per_kind[1]), n * 0.25, n * 0.05);
  EXPECT_NEAR(static_cast<double>(per_kind[2]), n * 0.50, n * 0.05);
}

TEST(ArrivalTest, ValidationNamesFieldAndRange) {
  auto expect_naming = [](ArrivalConfig cfg, const char* needle) {
    try {
      generate_arrivals(cfg);
      FAIL() << "expected std::invalid_argument naming " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  ArrivalConfig cfg = small_arrivals();
  cfg.rate_ops = -5;
  expect_naming(cfg, "rate_ops");

  cfg = small_arrivals();
  cfg.zipf_s = -0.5;
  expect_naming(cfg, "zipf_s");

  cfg = small_arrivals();
  cfg.phases = {};
  expect_naming(cfg, "phases");

  cfg = small_arrivals();
  cfg.phases = {1.0, 0.0};
  expect_naming(cfg, "phases");

  cfg = small_arrivals();
  cfg.tenants = 3;
  cfg.tenant_weights = {1.0, 2.0};  // length disagrees
  expect_naming(cfg, "tenant_weights");

  cfg = small_arrivals();
  cfg.process = ArrivalConfig::Process::kBurst;
  cfg.burst_duty = 1.5;
  expect_naming(cfg, "burst_duty");

  cfg = small_arrivals();
  cfg.rate_ops = 1e12;  // rate x window blows the schedule cap
  expect_naming(cfg, "cap");
}

TEST(DaemonLevelTest, NamesRoundTripAndUnknownThrows) {
  EXPECT_EQ(smr::daemon_level_from_name("off"), smr::DaemonLevel::kOff);
  EXPECT_EQ(smr::daemon_level_from_name("optimistic"),
            smr::DaemonLevel::kOptimistic);
  EXPECT_EQ(smr::daemon_level_from_name("aggressive"),
            smr::DaemonLevel::kAggressive);
  EXPECT_STREQ(smr::daemon_level_name(smr::DaemonLevel::kOptimistic),
               "optimistic");
  try {
    smr::daemon_level_from_name("turbo");
    FAIL() << "unknown level must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("aggressive"), std::string::npos)
        << "error should list the valid levels, got: " << e.what();
  }
}

// ------------------------------------------------------ opstream compat

TEST(OpStreamServiceTest, LegacyStreamBitIdenticalWithServiceKnobsOff) {
  // The TrialConfig constructor must consume exactly the legacy random
  // draws while zipf_s == 0 and tenants <= 1 — pre-service-mode trials
  // replay bit-identically.
  TrialConfig cfg;
  cfg.seed = 99;
  cfg.keyrange = 2048;
  OpStream legacy(cfg.seed, /*tid=*/3, cfg.insert_frac, cfg.erase_frac,
                  cfg.keyrange);
  OpStream service(cfg, /*tid=*/3);
  for (int i = 0; i < 50000; ++i) {
    const Op a = legacy.next();
    const Op b = service.next();
    ASSERT_EQ(a.kind, b.kind) << "op " << i;
    ASSERT_EQ(a.key, b.key) << "op " << i;
    ASSERT_EQ(b.tenant, 0u) << "op " << i;
  }
}

TEST(OpStreamServiceTest, ZipfAndWeightedTenantsApply) {
  TrialConfig cfg;
  cfg.seed = 5;
  cfg.keyrange = 4096;
  cfg.zipf_s = 1.1;
  cfg.tenants = 2;
  cfg.tenant_weights = {10.0, 1.0};
  OpStream s(cfg, 0);
  const int kN = 50000;
  int hot_keys = 0;
  int per_tenant[2] = {0, 0};
  for (int i = 0; i < kN; ++i) {
    const Op op = s.next();
    ASSERT_LT(op.key, cfg.keyrange);
    ASSERT_LT(op.tenant, 2u);
    if (op.key < cfg.keyrange / 100) ++hot_keys;
    ++per_tenant[op.tenant];
  }
  EXPECT_GT(hot_keys, kN / 5);
  EXPECT_NEAR(per_tenant[0], kN * 10.0 / 11.0, kN * 0.05);
}

// ------------------------------------------------------ service trials

TrialConfig tiny_service_config() {
  TrialConfig cfg;
  cfg.nthreads = 2;
  cfg.keyrange = 1024;
  cfg.measure_ms = 50;
  cfg.trials = 1;
  cfg.smr.batch_size = 64;
  cfg.alloc.remote_free_penalty_ns = 0;
  cfg.arrival = "poisson";
  cfg.rate_ops = 20'000;  // far under capacity: every arrival is served
  return cfg;
}

TEST(ServiceTrialTest, OfferedLoadIsServedAtEveryWorkerCount) {
  // ONE global schedule partitioned by residue class: the offered load
  // is a pure function of the seed — identical at every worker count —
  // and under light load (almost) every arrival is served.
  std::uint64_t offered[2] = {0, 0};
  int i = 0;
  for (int nthreads : {1, 4}) {
    TrialConfig cfg = tiny_service_config();
    cfg.nthreads = nthreads;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    ASSERT_GT(r.arrivals_offered, 0u) << nthreads;
    offered[i++] = r.arrivals_offered;
    // The stop flag can cut the last scheduled instants; everything
    // else completes, and every completion recorded its delay.
    EXPECT_GE(r.arrivals_completed, r.arrivals_offered * 98 / 100)
        << nthreads;
    EXPECT_EQ(r.q_ops, r.arrivals_completed) << nthreads;
    EXPECT_EQ(r.ops, r.arrivals_completed) << nthreads;
    EXPECT_EQ(trial.reclaimer().stats().pending, 0u) << nthreads;
  }
  EXPECT_EQ(offered[0], offered[1]);
}

TEST(ServiceTrialTest, OverloadExplodesQueueingDelayNotThroughput) {
  // The open-loop signal closed loops cannot show: past saturation the
  // queueing tail grows without bound while each op's own service time
  // stays ordinary.
  TrialConfig light = tiny_service_config();
  light.nthreads = 1;
  light.measure_ms = 40;
  light.rate_ops = 50'000;
  harness::Trial lt(light);
  const harness::TrialResult lr = lt.run();

  TrialConfig over = light;
  over.rate_ops = 20'000'000;  // far past single-thread capacity
  harness::Trial ot(over);
  const harness::TrialResult orr = ot.run();

  ASSERT_GT(lr.q_ops, 0u);
  ASSERT_GT(orr.q_ops, 0u);
  EXPECT_GT(orr.q_p999_ns, 500'000.0);  // >= 0.5 ms of queueing
  EXPECT_GT(orr.q_p999_ns, 5.0 * lr.q_p999_ns);
  // Saturated: the workers could not serve everything inside the window.
  EXPECT_LT(orr.arrivals_completed, orr.arrivals_offered);
}

TEST(ServiceTrialTest, BurstScheduleRunsAndSeparatesDelay) {
  TrialConfig cfg = tiny_service_config();
  cfg.arrival = "burst";
  cfg.rate_ops = 100'000;
  cfg.phases = {2.0, 0.1};
  cfg.enable_latency = true;
  harness::Trial trial(cfg);
  const harness::TrialResult r = trial.run();
  EXPECT_GT(r.arrivals_completed, 0u);
  EXPECT_GT(r.lat_ops, 0u);
  EXPECT_EQ(r.q_ops, r.arrivals_completed);
  // Queueing delay and service latency are distinct distributions, each
  // internally ordered.
  EXPECT_LE(r.q_p50_ns, r.q_p999_ns);
  EXPECT_LE(r.lat_p50_ns, r.lat_p999_ns);
}

// --------------------------------------------------- tenant accounting

TEST(TenantAccountingTest, ExecutorLedgersSumExactly) {
  test::TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  smr::SmrConfig cfg;
  cfg.num_threads = 2;
  cfg.batch_size = 8;
  cfg.af_drain_per_op = 4;
  cfg.tenants = 2;
  smr::ReclaimerBundle bundle = smr::make_reclaimer("debra_af", ctx, cfg);
  smr::Reclaimer& r = *bundle.reclaimer;
  smr::FreeExecutor& ex = r.executor();
  ASSERT_EQ(ex.tenant_count(), 2);

  constexpr int kOnTenant0 = 60;
  constexpr int kOnTenant1 = 25;
  {
    smr::ThreadHandle h = r.register_thread();
    ex.set_lane_tenant(h.slot(), 0);
    for (int i = 0; i < kOnTenant0; ++i) {
      smr::Guard g(h);
      g.retire(r.alloc_node(h, 64));
    }
    ex.set_lane_tenant(h.slot(), 1);
    for (int i = 0; i < kOnTenant1; ++i) {
      smr::Guard g(h);
      g.retire(r.alloc_node(h, 64));
    }
    // Mid-run invariants: retires are per-retire exact, and whatever
    // the executor holds right now is exactly the per-tenant backlogs'
    // sum.
    const smr::TenantStats t0 = ex.tenant_stats(0);
    const smr::TenantStats t1 = ex.tenant_stats(1);
    EXPECT_EQ(t0.retired, static_cast<std::uint64_t>(kOnTenant0));
    EXPECT_EQ(t1.retired, static_cast<std::uint64_t>(kOnTenant1));
    EXPECT_EQ(t0.backlog + t1.backlog, ex.backlog());
    // The lane snapshot carries the same per-tenant split.
    const smr::LaneStats ls = ex.lane_stats(h.slot());
    ASSERT_EQ(ls.tenant_enqueued.size(), 2u);
    ASSERT_EQ(ls.tenant_drained.size(), 2u);
  }
  r.flush_all();

  const smr::TenantStats t0 = ex.tenant_stats(0);
  const smr::TenantStats t1 = ex.tenant_stats(1);
  EXPECT_EQ(t0.retired + t1.retired,
            static_cast<std::uint64_t>(kOnTenant0 + kOnTenant1));
  // Every retired node reached an executor and was freed; drains are
  // attributed by enqueue-time tags, so the books balance per tenant,
  // not just in total.
  EXPECT_EQ(t0.enqueued + t1.enqueued,
            static_cast<std::uint64_t>(kOnTenant0 + kOnTenant1));
  EXPECT_EQ(t0.enqueued, t0.drained);
  EXPECT_EQ(t1.enqueued, t1.drained);
  EXPECT_EQ(t0.backlog + t1.backlog, 0u);
  EXPECT_EQ(allocator.live(), 0u);
  // Out-of-range queries are zeros, not crashes.
  EXPECT_EQ(ex.tenant_stats(7).retired, 0u);
}

TEST(TenantAccountingTest, SingleTenantBundleKeepsTenantPathsOff) {
  test::TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  smr::SmrConfig cfg;
  cfg.num_threads = 2;
  smr::ReclaimerBundle bundle = smr::make_reclaimer("debra", ctx, cfg);
  smr::FreeExecutor& ex = bundle.reclaimer->executor();
  EXPECT_EQ(ex.tenant_count(), 1);
  smr::ThreadHandle h = bundle.reclaimer->register_thread();
  ex.set_lane_tenant(h.slot(), 5);  // single-tenant: a no-op
  EXPECT_EQ(ex.lane_tenant(h.slot()), 0u);
  EXPECT_TRUE(ex.lane_stats(h.slot()).tenant_enqueued.empty());
  EXPECT_EQ(ex.tenant_stats(0).retired, 0u);
}

TEST(TenantStarvationTest, HotTenantAccountedAndColdTailBounded) {
  // The starvation regression: a hot tenant retiring ~10x the cold
  // tenant's rate must not smear its reclamation debt onto the cold
  // tenant's ledger, and under the latency-target schedule the cold
  // tenant's service tail stays bounded.
  TrialConfig cfg;
  cfg.nthreads = 2;
  cfg.keyrange = 1024;
  cfg.measure_ms = 60;
  cfg.reclaimer = "debra_latency";
  cfg.smr.latency_target_us = 200;
  cfg.enable_latency = true;
  cfg.tenants = 2;
  cfg.tenant_weights = {10.0, 1.0};
  cfg.alloc.remote_free_penalty_ns = 0;
  harness::Trial trial(cfg);
  ASSERT_EQ(trial.tenant_count(), 2);
  const harness::TrialResult r = trial.run();
  ASSERT_EQ(r.tenant.size(), 2u);

  const harness::TrialResult::TenantResult& hot = r.tenant[0];
  const harness::TrialResult::TenantResult& cold = r.tenant[1];
  EXPECT_GT(hot.completed, 3 * cold.completed);
  EXPECT_GT(hot.retired, 3 * cold.retired);
  // The ledgers are exact, not sampled: every Reclaimer::retire up to
  // the end-of-window snapshot appears in exactly one tenant's count...
  EXPECT_EQ(hot.retired + cold.retired, r.smr_stats.retired);
  // ...and per-tenant backlog reconciles with the enqueue/drain ledger.
  EXPECT_EQ(hot.backlog_end, hot.enqueued - hot.drained);
  EXPECT_EQ(cold.backlog_end, cold.enqueued - cold.drained);
  // The cold tenant was served and its tail is sane.
  ASSERT_GT(cold.completed, 0u);
  EXPECT_GT(cold.lat_p999_ns, 0.0);
  EXPECT_LT(cold.lat_p999_ns, 100e6);  // << 100 ms under a 200 us target
}

// ------------------------------------------------------ daemon levels

TEST(DaemonTrialTest, LevelsRunAndAccountExactly) {
  for (const std::string level : {"off", "optimistic", "aggressive"}) {
    TrialConfig cfg = tiny_service_config();
    cfg.reclaimer = "hp_af";
    cfg.rate_ops = 100'000;
    cfg.phases = {2.0, 0.05};  // busy half, then an idle tail the
                               // daemon can reclaim through
    cfg.reclaimer_daemon = level;
    cfg.daemon_period_ms = 1;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    EXPECT_GT(r.arrivals_completed, 0u) << level;
    EXPECT_EQ(trial.reclaimer().stats().pending, 0u) << level;
    EXPECT_EQ(trial.reclaimer().executor().backlog(), 0u) << level;
    EXPECT_EQ(trial.reclaimer().active_slots(), 0u) << level;
    if (level == "off") {
      EXPECT_EQ(trial.daemon(), nullptr);
      EXPECT_EQ(r.daemon_ticks, 0u);
      EXPECT_EQ(r.daemon_drained, 0u);
    } else {
      ASSERT_NE(trial.daemon(), nullptr) << level;
      EXPECT_FALSE(trial.daemon()->running()) << level;
      EXPECT_GT(r.daemon_ticks, 0u) << level;
    }
    if (level == "aggressive") {
      // Every tick acts: the amortized executor leaves backlog between
      // ops and the idle tail leaves it untouched for the daemon.
      EXPECT_GT(r.daemon_drained, 0u);
    }
  }
}

TEST(DaemonTrialTest, StartRequiresTheHookArmed) {
  test::TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  smr::SmrConfig cfg;
  cfg.num_threads = 2;
  smr::ReclaimerBundle bundle = smr::make_reclaimer("debra_af", ctx, cfg);
  smr::ReclaimerDaemon daemon(*bundle.reclaimer,
                              smr::DaemonLevel::kAggressive, 1);
  EXPECT_THROW(daemon.start(), std::logic_error);
  bundle.reclaimer->executor().set_daemon_hooked(true);
  daemon.start();
  EXPECT_TRUE(daemon.running());
  daemon.stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_EQ(bundle.reclaimer->active_slots(), 0u);
}

// The TSAN stress ci/check.sh filters on: daemon start/stop cycles
// racing ThreadHandle register/deregister churn (with live retire
// traffic) across one representative of every reclaimer family and
// every executor flavour (batch, amortized, pooling).
TEST(DaemonChurnTest, StartStopRacesHandleChurn) {
  for (const char* name :
       {"debra", "token_af", "hp", "ibr", "nbr", "debra_pool"}) {
    test::TrackingAllocator allocator;
    smr::SmrContext ctx;
    ctx.allocator = &allocator;
    smr::SmrConfig cfg;
    cfg.num_threads = 4;
    cfg.batch_size = 16;
    cfg.af_drain_per_op = 4;
    cfg.epoch_freq = 8;
    cfg.extra_slots = 2;  // churn overlap + the daemon's own slot
    cfg.tenants = 2;      // exercise the tenant ledgers under race too
    smr::ReclaimerBundle bundle = smr::make_reclaimer(name, ctx, cfg);
    smr::Reclaimer& r = *bundle.reclaimer;
    r.executor().set_daemon_hooked(true);
    smr::ReclaimerDaemon daemon(r, smr::DaemonLevel::kAggressive, 1);

    std::atomic<bool> stop{false};
    std::vector<std::thread> churners;
    for (int w = 0; w < 3; ++w) {
      churners.emplace_back([&r, &stop, w] {
        std::uint64_t rounds = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          smr::ThreadHandle h = r.register_thread();
          r.executor().set_lane_tenant(h.slot(),
                                       static_cast<std::uint32_t>(w % 2));
          for (int i = 0; i < 8; ++i) {
            smr::Guard g(h);
            g.retire(r.alloc_node(h, 64));
          }
          ++rounds;
        }  // handle released: backlog adopted or drained, never leaked
        EXPECT_GT(rounds, 0u);
      });
    }

    for (int cycle = 0; cycle < 25; ++cycle) {
      daemon.start();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      daemon.stop();
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : churners) t.join();

    r.flush_all();
    const smr::SmrStats st = r.stats();
    EXPECT_EQ(st.pending, 0u) << name;
    EXPECT_EQ(allocator.live(), 0u) << name;
    // The tenant ledgers stayed exact through every race.
    const smr::TenantStats t0 = r.executor().tenant_stats(0);
    const smr::TenantStats t1 = r.executor().tenant_stats(1);
    EXPECT_EQ(t0.retired + t1.retired, st.retired) << name;
    EXPECT_EQ(t0.backlog + t1.backlog, 0u) << name;
  }
}

}  // namespace
