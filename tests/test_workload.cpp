// Workload determinism and end-to-end trial behaviour at tiny scale.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "harness/report.hpp"
#include "harness/workload.hpp"

namespace {

using namespace emr;
using harness::Op;
using harness::OpStream;
using harness::TrialConfig;

TrialConfig tiny_config() {
  TrialConfig cfg;
  cfg.nthreads = 2;
  cfg.keyrange = 1024;
  cfg.measure_ms = 25;
  cfg.trials = 1;
  cfg.smr.batch_size = 64;
  cfg.alloc.remote_free_penalty_ns = 0;
  return cfg;
}

TEST(OpStreamTest, SameSeedSameStream) {
  TrialConfig cfg = tiny_config();
  cfg.seed = 1234;
  OpStream a(cfg, /*tid=*/1);
  OpStream b(cfg, /*tid=*/1);
  for (int i = 0; i < 10000; ++i) {
    const Op x = a.next();
    const Op y = b.next();
    ASSERT_EQ(x.kind, y.kind) << "op " << i;
    ASSERT_EQ(x.key, y.key) << "op " << i;
  }
}

TEST(OpStreamTest, DifferentSeedOrTidDiverges) {
  TrialConfig cfg = tiny_config();
  cfg.seed = 1;
  OpStream a(cfg, 0);
  OpStream other_tid(cfg, 1);
  cfg.seed = 2;
  OpStream other_seed(cfg, 0);

  int same_tid = 0;
  int same_seed = 0;
  for (int i = 0; i < 1000; ++i) {
    const Op x = a.next();
    if (x.key == other_tid.next().key) ++same_tid;
    if (x.key == other_seed.next().key) ++same_seed;
  }
  EXPECT_LT(same_tid, 100);
  EXPECT_LT(same_seed, 100);
}

TEST(OpStreamTest, MixFractionsRespected) {
  TrialConfig cfg = tiny_config();
  cfg.insert_frac = 0.25;
  cfg.erase_frac = 0.25;
  OpStream s(cfg, 0);
  int counts[3] = {0, 0, 0};
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[s.next().kind];
  EXPECT_NEAR(counts[Op::kInsert], kN * 0.25, kN * 0.02);
  EXPECT_NEAR(counts[Op::kErase], kN * 0.25, kN * 0.02);
  EXPECT_NEAR(counts[Op::kLookup], kN * 0.50, kN * 0.02);
}

// Bad configs must fail at Trial construction with an error naming the
// valid choices, never silently default.
TEST(TrialTest, InvalidConfigsFailFastWithValidNames) {
  auto expect_throw_listing = [](TrialConfig cfg, const char* some_valid) {
    try {
      harness::Trial trial(cfg);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(some_valid), std::string::npos)
          << "error should name the valid choices, got: " << e.what();
    }
  };

  TrialConfig cfg = tiny_config();
  cfg.insert_frac = 0.7;
  cfg.erase_frac = 0.7;  // sums past 1
  EXPECT_THROW(harness::Trial trial(cfg), std::invalid_argument);

  cfg = tiny_config();
  cfg.erase_frac = -0.1;
  EXPECT_THROW(harness::Trial trial(cfg), std::invalid_argument);

  cfg = tiny_config();
  cfg.ds = "splaytree";
  expect_throw_listing(cfg, "abtree");

  cfg = tiny_config();
  cfg.reclaimer = "ebr9000";
  expect_throw_listing(cfg, "debra");

  cfg = tiny_config();
  cfg.allocator = "hoard";
  expect_throw_listing(cfg, "je");

  // Churn knobs fail fast naming the valid ranges.
  cfg = tiny_config();
  cfg.churn_interval_ms = -5;
  try {
    harness::Trial trial(cfg);
    FAIL() << "negative churn_interval_ms must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(">= 0"), std::string::npos)
        << "error should name the valid range, got: " << e.what();
  }

  cfg = tiny_config();
  cfg.nthreads = 1;
  cfg.churn_interval_ms = 5;
  try {
    harness::Trial trial(cfg);
    FAIL() << "churn with one thread must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nthreads >= 2"),
              std::string::npos)
        << "error should name the valid range, got: " << e.what();
  }

  // Degenerate window/trial knobs used to slide through and produce a
  // zero-length measurement (mops = ops / 0). They fail fast now.
  cfg = tiny_config();
  cfg.measure_ms = 0;
  expect_throw_listing(cfg, ">= 1 millisecond");
  cfg.measure_ms = -10;
  expect_throw_listing(cfg, ">= 1 millisecond");

  cfg = tiny_config();
  cfg.trials = 0;
  expect_throw_listing(cfg, ">= 1");

  cfg = tiny_config();
  cfg.schedule_sample_ms = 0;
  expect_throw_listing(cfg, ">= 1 millisecond");
}

// The churn mode the ThreadHandle API unlocks: workers deregister and
// are replaced mid-trial, and afterwards nothing is leaked or pinned —
// every retired node still reaches the executor at teardown.
TEST(TrialTest, ChurnedTrialReplacesWorkersAndAccountsExactly) {
  for (const char* reclaimer : {"debra", "token_af", "hp", "ibr"}) {
    TrialConfig cfg = tiny_config();
    cfg.reclaimer = reclaimer;
    cfg.nthreads = 3;
    cfg.measure_ms = 60;
    cfg.churn_interval_ms = 10;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    EXPECT_GT(r.ops, 0u) << reclaimer;
    EXPECT_GT(r.threads_churned, 0u) << reclaimer;
    EXPECT_EQ(trial.reclaimer().stats().pending, 0u) << reclaimer;
    EXPECT_EQ(trial.reclaimer().executor().backlog(), 0u) << reclaimer;
    // All worker handles deregistered at trial end.
    EXPECT_EQ(trial.reclaimer().active_slots(), 0u) << reclaimer;
  }
}

TEST(TrialTest, RunsAndAccountsForEveryRetiredNode) {
  for (const char* reclaimer : {"debra", "debra_af", "token_af", "none"}) {
    TrialConfig cfg = tiny_config();
    cfg.reclaimer = reclaimer;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    EXPECT_GT(r.ops, 0u) << reclaimer;
    EXPECT_GT(r.mops, 0.0) << reclaimer;
    EXPECT_GT(r.peak_bytes_mapped, 0u) << reclaimer;
    // flush_all ran at teardown: nothing may stay in limbo.
    EXPECT_EQ(trial.reclaimer().stats().pending, 0u) << reclaimer;
  }
}

TEST(TrialTest, EpochsAdvanceAndGarbageIsObserved) {
  TrialConfig cfg = tiny_config();
  cfg.reclaimer = "debra";
  cfg.measure_ms = 50;
  cfg.smr.batch_size = 32;
  cfg.enable_garbage = true;
  harness::Trial trial(cfg);
  const harness::TrialResult r = trial.run();
  EXPECT_GT(r.epochs_in_window, 0u);
  EXPECT_GT(r.freed_in_window, 0u);
  EXPECT_GT(trial.garbage().aggregate().size(), 0u);
  EXPECT_GT(trial.garbage().peak_garbage(), 0u);
}

TEST(TrialTest, TimelineRecordsBatchFrees) {
  TrialConfig cfg = tiny_config();
  cfg.reclaimer = "debra";
  cfg.measure_ms = 50;
  cfg.smr.batch_size = 32;
  cfg.enable_timeline = true;
  cfg.timeline_min_duration_ns = 0;  // record everything
  harness::Trial trial(cfg);
  (void)trial.run();
  std::size_t events = 0;
  for (int t = 0; t < cfg.nthreads; ++t) {
    events += trial.timeline().event_count(t);
  }
  EXPECT_GT(events, 0u);
  const std::string ascii =
      trial.timeline().render_ascii(EventKind::kBatchFree, 4, 60);
  EXPECT_FALSE(ascii.empty());
}

TEST(TrialTest, LatencyRecorderSurfacesOrderedPercentiles) {
  TrialConfig cfg = tiny_config();
  cfg.reclaimer = "debra_af";
  cfg.measure_ms = 50;
  cfg.enable_latency = true;
  harness::Trial trial(cfg);
  const harness::TrialResult r = trial.run();
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.lat_ops, 0u) << "enable_latency must record every op";
  EXPECT_GT(r.lat_p50_ns, 0.0);
  EXPECT_LE(r.lat_p50_ns, r.lat_p99_ns);
  EXPECT_LE(r.lat_p99_ns, r.lat_p999_ns);
  EXPECT_LE(r.lat_p999_ns, static_cast<double>(r.lat_max_ns));
}

TEST(TrialTest, LatencyScheduleForcesTheRecorderOn) {
  // A *_latency reclaimer must never run open-loop: even without
  // enable_latency the harness turns the recorder on and pumps the
  // observed p99.9 into the schedule.
  TrialConfig cfg = tiny_config();
  cfg.reclaimer = "debra_latency";
  cfg.measure_ms = 50;
  cfg.enable_latency = false;
  harness::Trial trial(cfg);
  const harness::TrialResult r = trial.run();
  EXPECT_GT(r.lat_ops, 0u);
  EXPECT_STREQ(trial.schedule().name(), "latency");
  EXPECT_EQ(trial.reclaimer().stats().pending, 0u);
  EXPECT_EQ(trial.reclaimer().executor().backlog(), 0u);
}

TEST(TrialTest, DeterministicSeedGivesIdenticalRetireCounts) {
  // Throughput varies run to run, but the op streams (and hence the mix
  // of attempted inserts/erases) are a pure function of the seed.
  TrialConfig cfg = tiny_config();
  OpStream a(cfg, 0);
  OpStream b(cfg, 0);
  std::uint64_t erases_a = 0;
  std::uint64_t erases_b = 0;
  for (int i = 0; i < 50000; ++i) {
    if (a.next().kind == Op::kErase) ++erases_a;
    if (b.next().kind == Op::kErase) ++erases_b;
  }
  EXPECT_EQ(erases_a, erases_b);
}

TEST(TrialTest, ResultCarriesHardwareRealismMetadata) {
  TrialConfig cfg = tiny_config();
  cfg.alloc.remote_free_penalty_ns = 150;
  harness::Trial trial(cfg);
  const harness::TrialResult r = trial.run();

  EXPECT_EQ(r.pin_mode, "off");
  EXPECT_TRUE(r.pin_cpus.empty());  // off = run unpinned
  // The clock the recorders ran on, and its rate when it's the TSC.
  EXPECT_TRUE(r.clock_source == "tsc" || r.clock_source == "steady")
      << r.clock_source;
  if (r.clock_source == "tsc") {
    EXPECT_GT(r.tsc_ghz, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(r.tsc_ghz, 0.0);
  }
  // Whatever penalty the allocator actually charged is surfaced; when
  // calibration couldn't measure (one allowed CPU) the configured
  // default must be reported unchanged.
  if (r.penalty_measured) {
    EXPECT_GT(r.remote_penalty_ns, 0u);  // floored at 1 ns by measurement
  } else {
    EXPECT_EQ(r.remote_penalty_ns, 150u);
  }
}

TEST(TrialTest, ExplicitPenaltyAlwaysBeatsCalibration) {
  // EMR_REMOTE_PENALTY_NS (or an ablation sweep) marks the penalty
  // explicit; the measured cache-line cost must never replace it even
  // with calibration on.
  TrialConfig cfg = tiny_config();
  cfg.calibrate = "on";
  cfg.alloc.remote_free_penalty_ns = 777;
  cfg.alloc.remote_penalty_explicit = true;
  harness::Trial trial(cfg);
  const harness::TrialResult r = trial.run();
  EXPECT_EQ(r.remote_penalty_ns, 777u);
  EXPECT_FALSE(r.penalty_measured);
}

TEST(TrialTest, CalibrationOffKeepsTheConfiguredPenalty) {
  TrialConfig cfg = tiny_config();
  cfg.calibrate = "off";
  cfg.alloc.remote_free_penalty_ns = 333;
  harness::Trial trial(cfg);
  const harness::TrialResult r = trial.run();
  EXPECT_EQ(r.remote_penalty_ns, 333u);
  EXPECT_FALSE(r.penalty_measured);
}

TEST(TrialTest, PinnedTrialRunsAndReportsItsLayout) {
  // compact/scatter must work on any box (the map wraps round-robin
  // over however many CPUs the affinity mask allows) and the layout
  // lands in the result: one slot per worker plus the daemon's.
  for (const char* mode : {"compact", "scatter"}) {
    TrialConfig cfg = tiny_config();
    cfg.pin = mode;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    EXPECT_GT(r.ops, 0u) << mode;
    EXPECT_EQ(r.pin_mode, mode);
#if defined(__linux__)
    EXPECT_EQ(r.pin_cpus.size(),
              static_cast<std::size_t>(cfg.nthreads) + 1)
        << mode;
    for (int cpu : r.pin_cpus) EXPECT_GE(cpu, 0) << mode;
#endif
  }
}

TEST(ReportTest, TableAlignsAndWritesCsv) {
  harness::Table table({"a", "b"});
  table.add_row({"1", "hello"});
  table.add_row({"2", "world"});
  EXPECT_EQ(table.rows(), 2u);

  const std::string path = harness::out_dir() + "test_table.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[128];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "a,b\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ReportTest, EmitJsonTypesNumbersAndEscapesStrings) {
  harness::Table table({"threads", "reclaimer", "Mops/s"});
  table.add_row({"4", "debra_af", "3.25"});
  table.add_row({"8", "token \"naive\"", "0.50"});
  std::ostringstream os;
  harness::emit_json(os, table);
  const std::string json = os.str();
  // Numeric cells are unquoted, string cells escaped.
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"Mops/s\": 3.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reclaimer\": \"debra_af\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("token \\\"naive\\\""), std::string::npos) << json;

  const std::string path = harness::out_dir() + "test_table.json";
  ASSERT_TRUE(table.write_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);
  std::remove(path.c_str());
}

TEST(ReportTest, Formatting) {
  EXPECT_EQ(harness::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(harness::human_count(950), "950");
  EXPECT_EQ(harness::human_count(1.5e6), "1.50M");
  EXPECT_EQ(harness::human_count(2.25e9), "2.25G");
  EXPECT_EQ(harness::node_size_for_ds("abtree"), 240u);
  EXPECT_EQ(harness::node_size_for_ds("occtree"), 64u);
  EXPECT_EQ(harness::node_size_for_ds("dgt"), 96u);
}

}  // namespace
