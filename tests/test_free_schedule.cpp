// FreeSchedule layer suite: the fixed policy mirrors the config, the
// adaptive controller tracks backlog/population and clamps its quantum,
// nonsensical knob values fail fast naming the knob, EMR_SCHEDULE-style
// overrides govern any factory name, the pooling cap flows through the
// policy, and the churn-aware departure drain never frees more than the
// quota in one op (the adoption-spike regression). The *Concurrent*
// case races lane-stats readers against live lanes — ci/check.sh runs
// it under TSAN.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "smr/factory.hpp"
#include "smr/free_schedule.hpp"
#include "tests/tracking_allocator.hpp"

namespace {

using namespace emr;
using test::TrackingAllocator;

struct World {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;

  explicit World(const std::string& name, smr::SmrConfig config) {
    ctx.allocator = &allocator;
    cfg = config;
    bundle = smr::make_reclaimer(name, ctx, cfg);
  }

  smr::Reclaimer& r() { return *bundle.reclaimer; }
};

smr::SmrConfig small_config(std::size_t batch = 8, std::size_t drain = 4) {
  smr::SmrConfig cfg;
  cfg.num_threads = 3;
  cfg.batch_size = batch;
  cfg.af_drain_per_op = drain;
  cfg.epoch_freq = 16;
  return cfg;
}

// ------------------------------------------------------------- policies

TEST(FreeSchedule, FixedMirrorsTheConfig) {
  smr::SmrConfig cfg;
  cfg.batch_size = 128;
  cfg.af_drain_per_op = 7;
  auto sched = smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg);
  EXPECT_STREQ(sched->name(), "fixed");
  smr::LaneStats huge;
  huge.backlog = 1 << 20;
  EXPECT_EQ(sched->drain_quota(huge), 7u);       // backlog is ignored
  EXPECT_EQ(sched->scan_threshold(0), 128u);     // population is ignored
  EXPECT_EQ(sched->scan_threshold(999), 128u);
  EXPECT_EQ(sched->pool_cap(), 1024u);  // auto: max(4 * batch, 1024)

  cfg.batch_size = 4096;
  EXPECT_EQ(smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg)
                ->pool_cap(),
            16384u);
  cfg.pool_cap = 77;  // explicit cap wins over the auto formula
  EXPECT_EQ(smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg)
                ->pool_cap(),
            77u);
}

TEST(FreeSchedule, NonsenseFailsFastNamingTheKnob) {
  smr::SmrConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW(smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg),
               std::invalid_argument);
  cfg = {};
  cfg.drain_min = 0;
  EXPECT_THROW(smr::make_free_schedule(smr::ScheduleKind::kAdaptive, cfg),
               std::invalid_argument);
  cfg = {};
  cfg.drain_min = 8;
  cfg.drain_max = 2;
  try {
    smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg);
    FAIL() << "drain_max < drain_min must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("EMR_DRAIN_MAX"),
              std::string::npos);
  }
  cfg = {};
  cfg.schedule = "bogus";
  try {
    smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg);
    FAIL() << "unknown schedule name must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("adaptive"), std::string::npos);
  }
}

TEST(FreeSchedule, AdaptiveQuotaTracksBacklogAndClamps) {
  smr::SmrConfig cfg;
  cfg.num_threads = 4;
  cfg.drain_min = 2;
  cfg.drain_max = 32;
  auto sched = smr::make_free_schedule(smr::ScheduleKind::kAdaptive, cfg);
  EXPECT_STREQ(sched->name(), "adaptive");
  sched->on_population(4);

  smr::LaneStats lane;
  EXPECT_EQ(sched->drain_quota(lane), 2u);  // empty backlog: the floor

  lane.backlog = 1;
  const std::size_t q_small = sched->drain_quota(lane);
  lane.backlog = 100'000;
  const std::size_t q_big = sched->drain_quota(lane);
  EXPECT_GE(q_big, q_small) << "quota must be monotone in backlog";
  EXPECT_EQ(q_big, 32u) << "a huge backlog must hit the clamp";
  lane.backlog = 1 << 30;
  EXPECT_EQ(sched->drain_quota(lane), 32u);

  // More registrants shorten the drain horizon: same backlog, bigger
  // quota.
  lane.backlog = 2048;
  sched->on_population(1);
  const std::size_t q_idle = sched->drain_quota(lane);
  sched->on_population(8);
  const std::size_t q_crowded = sched->drain_quota(lane);
  EXPECT_GE(q_crowded, q_idle);
}

TEST(FreeSchedule, AdaptiveQuotaRespectsDrainCost) {
  smr::SmrConfig cfg;
  cfg.drain_min = 1;
  cfg.drain_max = 1024;
  auto sched = smr::make_free_schedule(smr::ScheduleKind::kAdaptive, cfg);
  sched->on_population(1);
  smr::LaneStats lane;
  lane.backlog = 1 << 20;
  lane.timed_drained = 100;
  // Pool recycles / batch frees are counted here but never clocked;
  // they must not dilute the ns-per-free estimate below.
  lane.drained = 100'000;
  lane.drain_ns = 100 * 1'000'000;  // 1 ms per clocked free: pathological
  // 50 us budget / 1 ms per free -> quota collapses toward the floor
  // instead of stalling the op on a million-node drain.
  EXPECT_LE(sched->drain_quota(lane), 2u);
}

TEST(FreeSchedule, AdaptiveThresholdProratesWithPopulation) {
  smr::SmrConfig cfg;
  cfg.num_threads = 6;
  cfg.extra_slots = 2;  // capacity 8
  cfg.batch_size = 4096;
  auto sched = smr::make_free_schedule(smr::ScheduleKind::kAdaptive, cfg);
  const std::size_t cap = cfg.slot_capacity();
  EXPECT_EQ(sched->scan_threshold(cap), 4096u);  // full table: full batch
  EXPECT_EQ(sched->scan_threshold(cap / 2), 2048u);
  EXPECT_EQ(sched->scan_threshold(1), 4096u / cap);
  EXPECT_EQ(sched->scan_threshold(0), 4096u / cap);  // floored population
  EXPECT_EQ(sched->scan_threshold(cap * 10), 4096u)
      << "population beyond capacity must not exceed the configured batch";
  // Degenerate batch still yields a usable threshold.
  cfg.batch_size = 2;
  auto tiny = smr::make_free_schedule(smr::ScheduleKind::kAdaptive, cfg);
  EXPECT_GE(tiny->scan_threshold(1), 1u);
}

// --------------------------------------------- latency-target policy

TEST(FreeSchedule, LatencyTargetScalesWithObservedTail) {
  smr::SmrConfig cfg;
  cfg.num_threads = 4;
  cfg.drain_min = 1;
  cfg.drain_max = 1024;
  cfg.latency_target_us = 100;  // 100'000 ns
  auto base = smr::make_free_schedule(smr::ScheduleKind::kLatency, cfg);
  EXPECT_STREQ(base->name(), "latency");
  EXPECT_TRUE(base->wants_latency_feedback());
  auto* sched = dynamic_cast<smr::LatencyTargetFreeSchedule*>(base.get());
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->target_ns(), 100'000u);
  EXPECT_EQ(sched->scale(), smr::LatencyTargetFreeSchedule::kScaleUnit);
  EXPECT_EQ(sched->last_p999_ns(), 0u);

  sched->on_population(4);
  smr::LaneStats lane;
  lane.backlog = 100'000;
  const std::size_t q_neutral = sched->drain_quota(lane);
  EXPECT_GT(q_neutral, 1u);

  // Overshoot: each beat halves the scale, quota shrinks monotonically
  // down to the floor — but never to zero.
  sched->on_tail_latency(200'000);  // 2x target
  EXPECT_EQ(sched->last_p999_ns(), 200'000u);
  EXPECT_LT(sched->scale(), smr::LatencyTargetFreeSchedule::kScaleUnit);
  const std::size_t q_backed_off = sched->drain_quota(lane);
  EXPECT_LE(q_backed_off, q_neutral);
  for (int i = 0; i < 32; ++i) sched->on_tail_latency(200'000);
  EXPECT_EQ(sched->scale(), smr::LatencyTargetFreeSchedule::kScaleMin);
  EXPECT_GE(sched->drain_quota(lane), cfg.drain_min)
      << "an unreachable target must not stop reclamation";

  // Comfortably under 3/4 of the target: the scale creeps back up and
  // saturates at its cap.
  for (int i = 0; i < 128; ++i) sched->on_tail_latency(10'000);
  EXPECT_EQ(sched->scale(), smr::LatencyTargetFreeSchedule::kScaleMax);
  EXPECT_GE(sched->drain_quota(lane), q_neutral);

  // The dead band between 3/4 and 1x the target holds the scale still.
  const std::size_t held = sched->scale();
  sched->on_tail_latency(90'000);
  EXPECT_EQ(sched->scale(), held);
}

TEST(FreeSchedule, LatencyTargetQuotaHonoursTheClamp) {
  smr::SmrConfig cfg;
  cfg.drain_min = 3;
  cfg.drain_max = 16;
  cfg.latency_target_us = 1;  // everything overshoots a 1 us target
  auto sched = smr::make_free_schedule(smr::ScheduleKind::kLatency, cfg);
  sched->on_population(1);
  for (int i = 0; i < 32; ++i) sched->on_tail_latency(1'000'000);
  smr::LaneStats lane;
  lane.backlog = 1 << 20;
  EXPECT_GE(sched->drain_quota(lane), 3u);
  EXPECT_LE(sched->drain_quota(lane), 16u);
}

TEST(FreeSchedule, LatencyTargetDaemonQuotaIgnoresTheTailScale) {
  // The tail scale exists to keep drain bursts off the op path; a
  // background-reclaimer tick frees off that path entirely, so its
  // quantum must stay the unscaled adaptive one even while an
  // unreachable target has floored the per-op quota at drain_min.
  smr::SmrConfig cfg;
  cfg.num_threads = 4;
  cfg.drain_min = 1;
  cfg.drain_max = 1024;
  cfg.latency_target_us = 1;  // everything overshoots a 1 us target
  auto base = smr::make_free_schedule(smr::ScheduleKind::kLatency, cfg);
  auto* sched = dynamic_cast<smr::LatencyTargetFreeSchedule*>(base.get());
  ASSERT_NE(sched, nullptr);
  sched->on_population(4);
  for (int i = 0; i < 32; ++i) sched->on_tail_latency(1'000'000);
  ASSERT_EQ(sched->scale(), smr::LatencyTargetFreeSchedule::kScaleMin);
  smr::LaneStats lane;
  lane.backlog = 100'000;
  const std::size_t unscaled = sched->AdaptiveFreeSchedule::drain_quota(lane);
  ASSERT_LT(sched->drain_quota(lane), unscaled)
      << "precondition: the floored scale must throttle the op path";
  // The daemon quantum is the unscaled adaptive one x2 (x8 under
  // pressure) — not a multiple of the throttled op quota.
  EXPECT_EQ(sched->daemon_quota(lane, /*pressure=*/false), 2 * unscaled);
  EXPECT_EQ(sched->daemon_quota(lane, /*pressure=*/true), 8 * unscaled);
  EXPECT_GT(sched->daemon_quota(lane, /*pressure=*/true),
            8 * sched->drain_quota(lane));
}

TEST(FreeSchedule, LatencyTargetZeroFailsFastNamingTheKnob) {
  smr::SmrConfig cfg;
  cfg.latency_target_us = 0;
  try {
    smr::make_free_schedule(smr::ScheduleKind::kLatency, cfg);
    FAIL() << "latency_target_us == 0 must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("EMR_LATENCY_TARGET_US"),
              std::string::npos)
        << e.what();
  }
  // The fixed/adaptive policies never read the knob; zero is fine there.
  EXPECT_NO_THROW(smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg));
  EXPECT_NO_THROW(
      smr::make_free_schedule(smr::ScheduleKind::kAdaptive, cfg));
}

// ------------------------------------------------------ factory wiring

TEST(FreeSchedule, SuffixSelectsThePolicy) {
  World fixed("debra_af", small_config());
  EXPECT_STREQ(fixed.bundle.schedule->name(), "fixed");
  World adaptive("debra_adaptive", small_config());
  EXPECT_STREQ(adaptive.bundle.schedule->name(), "adaptive");
  EXPECT_STREQ(adaptive.r().name(), "debra");
  World token_adaptive("token_adaptive", small_config());
  EXPECT_STREQ(token_adaptive.r().name(), "token_adaptive");
  World latency("debra_latency", small_config());
  EXPECT_STREQ(latency.bundle.schedule->name(), "latency");
  EXPECT_STREQ(latency.r().name(), "debra");
  EXPECT_TRUE(latency.bundle.schedule->wants_latency_feedback());
  World token_latency("token_latency", small_config());
  EXPECT_STREQ(token_latency.r().name(), "token_latency");
}

TEST(FreeSchedule, LatencyNamesInTheFactoryGrammar) {
  EXPECT_EQ(smr::reclaimer_base_name("debra_latency"), "debra");
  EXPECT_EQ(smr::reclaimer_base_name("he_latency"), "he");
  EXPECT_EQ(smr::reclaimer_base_name("token_latency"), "token");
  const std::vector<std::string> names = smr::all_factory_names();
  // 13 bases + 11 suffixable x (4 schedule suffixes + 5 _hf twins).
  EXPECT_EQ(names.size(), 112u);
  auto has = [&](const char* n) {
    for (const std::string& s : names) {
      if (s == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("debra_latency"));
  EXPECT_TRUE(has("token_latency"));
  EXPECT_TRUE(has("nbr_latency"));
  EXPECT_FALSE(has("token_naive_latency"));  // fixed-policy probes only
}

TEST(FreeSchedule, ScheduleOverrideGovernsAnyName) {
  smr::SmrConfig cfg = small_config();
  cfg.schedule = "adaptive";
  World batch_adaptive("debra", cfg);  // batch executor, adaptive policy
  EXPECT_STREQ(batch_adaptive.bundle.schedule->name(), "adaptive");

  cfg.schedule = "fixed";
  World pinned("hp_adaptive", cfg);  // the override beats the suffix
  EXPECT_STREQ(pinned.bundle.schedule->name(), "fixed");

  cfg.schedule = "latency";
  World steered("debra_af", cfg);  // any name can run tail-steered
  EXPECT_STREQ(steered.bundle.schedule->name(), "latency");
  EXPECT_TRUE(steered.bundle.schedule->wants_latency_feedback());

  cfg.schedule = "bogus";
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  EXPECT_THROW(smr::make_reclaimer("debra", ctx, cfg),
               std::invalid_argument);
}

TEST(FreeSchedule, PopulationFollowsRegistration) {
  World w("debra_adaptive", small_config());
  auto* sched =
      dynamic_cast<smr::AdaptiveFreeSchedule*>(w.bundle.schedule.get());
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->population(), 0u);
  {
    smr::ThreadHandle a = w.r().register_thread();
    EXPECT_EQ(sched->population(), 1u);
    smr::ThreadHandle b = w.r().register_thread();
    EXPECT_EQ(sched->population(), 2u);
  }
  EXPECT_EQ(sched->population(), 0u);
}

TEST(FreeSchedule, PoolCapFlowsThroughThePolicy) {
  smr::SmrConfig cfg = small_config(/*batch=*/8, /*drain=*/64);
  cfg.pool_cap = 16;
  World w("debra_pool", cfg);
  smr::ThreadHandle h = w.r().register_thread();
  smr::ThreadHandle other = w.r().register_thread();
  for (int i = 0; i < 256; ++i) {
    smr::Guard g(h);
    g.retire(w.r().alloc_node(h, 64));
  }
  // Quiescent rounds age every bag and trim the pool down to the cap.
  for (int i = 0; i < 256; ++i) {
    { smr::Guard g(h); }
    { smr::Guard g(other); }
  }
  EXPECT_LE(w.r().executor().backlog(), 16u)
      << "pooling must trim its inventory to FreeSchedule::pool_cap()";
  EXPECT_GT(w.r().executor().backlog(), 0u)
      << "pooling must keep inventory up to the cap";
  w.r().flush_all();
  EXPECT_EQ(w.allocator.live(), 0u);
}

TEST(FreeSchedule, RegisterExhaustionNamesTheKnob) {
  World w("debra", small_config());
  std::vector<smr::ThreadHandle> handles;
  for (std::size_t i = 0; i < w.r().slot_capacity(); ++i) {
    handles.push_back(w.r().register_thread());
  }
  try {
    w.r().register_thread();
    FAIL() << "exhausted table must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(w.r().slot_capacity())),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("EMR_EXTRA_SLOTS"), std::string::npos) << msg;
  }
}

// ------------------------------------- churn-aware departure drain

// The adoption-spike regression (satellite of the FreeSchedule issue):
// a departing thread's parked bags must reach the allocator at the
// schedule's quota per op — never as one burst — even under the batch
// executor, where fresh bags are deliberately freed whole.
TEST(FreeSchedule, DepartureBacklogNeverSpikesPastQuota) {
  constexpr std::uint64_t kQuota = 4;
  constexpr int kRetired = 40;
  World w("debra", small_config(/*batch=*/8, /*drain=*/kQuota));
  smr::ThreadHandle a = w.r().register_thread();
  smr::ThreadHandle b = w.r().register_thread();

  std::uint64_t at_release = 0;
  {
    smr::ThreadHandle departing = w.r().register_thread();
    for (int i = 0; i < kRetired; ++i) {
      smr::Guard g(departing);
      g.retire(w.r().alloc_node(departing, 64));
    }
    // Bags that aged while the thread was live may already have been
    // batch-freed — that is the batch executor's designed behaviour.
    // The regression is about what happens from the release on.
    at_release = w.allocator.frees();
  }  // departs: open bag seals, every parked bag is marked adopted
  EXPECT_LE(w.allocator.frees() - at_release, kQuota)
      << "the departure itself must not burst-free the backlog";

  smr::ThreadHandle succ = w.r().register_thread();  // adopts the lane
  std::uint64_t prev = w.allocator.frees();
  for (int i = 0; i < 600 && w.allocator.frees() < kRetired; ++i) {
    { smr::Guard g(succ); }
    std::uint64_t now = w.allocator.frees();
    EXPECT_LE(now - prev, kQuota)
        << "op " << i << " freed a larger-than-quota burst";
    prev = now;
    { smr::Guard g(a); }
    { smr::Guard g(b); }
    now = w.allocator.frees();
    // The other lanes hold no backlog; nothing may drain there.
    EXPECT_LE(now - prev, kQuota) << "op " << i;
    prev = now;
  }
  EXPECT_GE(w.allocator.frees(), static_cast<std::uint64_t>(kRetired))
      << "the adopted backlog must fully drain through the quota";

  w.r().flush_all();
  EXPECT_EQ(w.r().stats().pending, 0u);
  EXPECT_EQ(w.allocator.live(), 0u);
}

// Adaptive end-to-end accounting: the _adaptive variants retire/flush
// exactly like their fixed siblings across every family.
TEST(FreeSchedule, AdaptiveVariantsAccountExactly) {
  for (const std::string& base : smr::experiment2_reclaimers()) {
    World w(base + "_adaptive", small_config());
    smr::ThreadHandle h = w.r().register_thread();
    smr::ThreadHandle other = w.r().register_thread();
    for (int i = 0; i < 100; ++i) {
      {
        smr::Guard g(h);
        g.retire(w.r().alloc_node(h, 64));
      }
      { smr::Guard g(other); }
    }
    w.r().flush_all();
    const smr::SmrStats st = w.r().stats();
    EXPECT_EQ(st.retired, 100u) << base;
    EXPECT_EQ(st.pending, 0u) << base;
    EXPECT_EQ(w.allocator.live(), 0u) << base;
  }
}

// Same exactness for the tail-steered variants — including after the
// controller has been slammed to both ends of its scale range.
TEST(FreeSchedule, LatencyVariantsAccountExactly) {
  for (const std::string& base : smr::experiment2_reclaimers()) {
    World w(base + "_latency", small_config());
    w.bundle.schedule->on_tail_latency(~std::uint64_t{0});  // floor it
    smr::ThreadHandle h = w.r().register_thread();
    smr::ThreadHandle other = w.r().register_thread();
    for (int i = 0; i < 100; ++i) {
      {
        smr::Guard g(h);
        g.retire(w.r().alloc_node(h, 64));
      }
      { smr::Guard g(other); }
      if (i == 50) w.bundle.schedule->on_tail_latency(1);  // max it out
    }
    w.r().flush_all();
    const smr::SmrStats st = w.r().stats();
    EXPECT_EQ(st.retired, 100u) << base;
    EXPECT_EQ(st.pending, 0u) << base;
    EXPECT_EQ(w.allocator.live(), 0u) << base;
  }
}

TEST(FreeSchedule, LaneStatsSurfaceThroughReclaimerStats) {
  World w("debra_af", small_config(/*batch=*/8, /*drain=*/2));
  smr::ThreadHandle h = w.r().register_thread();
  smr::ThreadHandle other = w.r().register_thread();
  for (int i = 0; i < 64; ++i) {
    {
      smr::Guard g(h);
      g.retire(w.r().alloc_node(h, 64));
    }
    { smr::Guard g(other); }
  }
  const smr::SmrStats st = w.r().stats_with_lanes();
  ASSERT_EQ(st.lanes.size(), w.r().slot_capacity());
  std::uint64_t ops = 0, enqueued = 0, drained = 0, backlog = 0;
  for (const smr::LaneStats& l : st.lanes) {
    ops += l.ops;
    enqueued += l.enqueued;
    drained += l.drained;
    backlog += l.backlog;
  }
  EXPECT_EQ(ops, 128u);
  EXPECT_GT(enqueued, 0u) << "sealed bags must be counted into a lane";
  EXPECT_EQ(enqueued - drained, backlog);
  EXPECT_EQ(backlog, w.r().executor().backlog());
  EXPECT_EQ(drained, w.r().executor().total_freed());
  w.r().flush_all();
}

// ----------------------------------------------------- TSAN stress

// Lane-stats counters under fire: workers churn registration and drive
// retires through an adaptive executor while a reader thread samples
// stats_with_lanes() and the schedule's quota. ci/check.sh runs this
// case in the TSAN tree.
TEST(FreeScheduleConcurrent, LaneStatsRaceFreeUnderChurn) {
  constexpr int kWorkers = 4;
  World w("ibr_adaptive", [] {
    smr::SmrConfig cfg = small_config(/*batch=*/16, /*drain=*/4);
    cfg.num_threads = kWorkers;
    return cfg;
  }());

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const smr::SmrStats st = w.r().stats_with_lanes();
      smr::LaneStats busiest;
      for (const smr::LaneStats& l : st.lanes) {
        if (l.backlog >= busiest.backlog) busiest = l;
      }
      (void)w.bundle.schedule->drain_quota(busiest);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        smr::ThreadHandle h = w.r().register_thread();
        for (int i = 0; i < 200; ++i) {
          smr::Guard g(h);
          g.retire(w.r().alloc_node(h, 64));
        }
      }  // deregister mid-flight: departure scans + adoption hand-offs
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  w.r().flush_all();
  EXPECT_EQ(w.r().stats().pending, 0u);
  EXPECT_EQ(w.r().executor().backlog(), 0u);
  EXPECT_EQ(w.allocator.live(), 0u);
}

}  // namespace
