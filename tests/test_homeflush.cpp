// Home-flush routing suite (docs/FREE_SCHEDULES.md): the _hf factory
// grammar and the EMR_HOME_FLUSH override, the flush_quota policies,
// routed frees landing on the owner's stash and flushing locally with
// an exact stashed/flushed ledger on the tracking allocator, departure
// splicing a live stash into the adoption queue, the daemon adopting a
// vacant lane's stash, and teardown stranding nothing across every
// scheme family. The *Concurrent* case races many producers pushing one
// owner's MPSC stash against the owner flushing it — ci/check.sh runs
// it under TSAN.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "smr/factory.hpp"
#include "smr/free_schedule.hpp"
#include "smr/reclaimer_daemon.hpp"
#include "tests/tracking_allocator.hpp"

namespace {

using namespace emr;
using test::TrackingAllocator;

struct World {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;

  explicit World(const std::string& name, smr::SmrConfig config) {
    ctx.allocator = &allocator;
    cfg = config;
    bundle = smr::make_reclaimer(name, ctx, cfg);
  }

  smr::Reclaimer& r() { return *bundle.reclaimer; }
  smr::FreeExecutor& ex() { return bundle.reclaimer->executor(); }
};

smr::SmrConfig small_config(std::size_t batch = 8, std::size_t drain = 4) {
  smr::SmrConfig cfg;
  cfg.num_threads = 3;
  cfg.batch_size = batch;
  cfg.af_drain_per_op = drain;
  cfg.epoch_freq = 16;
  return cfg;
}

// ------------------------------------------------------ factory grammar

TEST(HomeFlush, HfNamesInTheFactoryGrammar) {
  EXPECT_EQ(smr::reclaimer_base_name("hp_hf"), "hp");
  EXPECT_EQ(smr::reclaimer_base_name("hp_af_hf"), "hp");
  EXPECT_EQ(smr::reclaimer_base_name("debra_pool_hf"), "debra");
  EXPECT_EQ(smr::reclaimer_base_name("token_latency_hf"), "token");
  const std::vector<std::string> names = smr::all_factory_names();
  // 2 fixed token variants + 11 suffixable bases x (5 forms x {plain,_hf}).
  EXPECT_EQ(names.size(), 112u);
  auto has = [&](const char* n) {
    for (const std::string& s : names) {
      if (s == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("hp_hf"));
  EXPECT_TRUE(has("hp_af_hf"));
  EXPECT_TRUE(has("debra_adaptive_hf"));
  EXPECT_TRUE(has("token_latency_hf"));
  EXPECT_FALSE(has("token_naive_hf"));  // fixed-policy probes only
  EXPECT_FALSE(has("token_passfirst_hf"));
}

TEST(HomeFlush, HfSuffixArmsRoutingAndOverrideWins) {
  World off("debra_af", small_config());
  EXPECT_FALSE(off.ex().home_flush());
  World on("debra_af_hf", small_config());
  EXPECT_TRUE(on.ex().home_flush());
  EXPECT_STREQ(on.r().name(), "debra");
  EXPECT_STREQ(on.bundle.schedule->name(), "fixed");
  World adaptive("hp_adaptive_hf", small_config());
  EXPECT_TRUE(adaptive.ex().home_flush());
  EXPECT_STREQ(adaptive.bundle.schedule->name(), "adaptive");

  smr::SmrConfig forced_on = small_config();
  forced_on.home_flush = "on";
  World forced("debra_af", forced_on);
  EXPECT_TRUE(forced.ex().home_flush());

  smr::SmrConfig forced_off = small_config();
  forced_off.home_flush = "off";
  World muted("debra_af_hf", forced_off);
  EXPECT_FALSE(muted.ex().home_flush());

  smr::SmrConfig bad = small_config();
  bad.home_flush = "maybe";
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  try {
    smr::make_reclaimer("debra_af", ctx, bad);
    FAIL() << "invalid home_flush value must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("EMR_HOME_FLUSH"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(smr::make_reclaimer("token_naive_hf", ctx, small_config()),
               std::invalid_argument);
}

// --------------------------------------------------- flush_quota policy

TEST(HomeFlush, FlushQuotaPolicies) {
  smr::SmrConfig cfg;
  cfg.flush_batch = 48;
  auto fixed = smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg);
  smr::LaneStats lane;
  EXPECT_EQ(fixed->flush_quota(lane), 48u);
  lane.stash_backlog = 1 << 20;
  EXPECT_EQ(fixed->flush_quota(lane), 48u);  // backlog is ignored

  cfg.num_threads = 4;
  auto adaptive = smr::make_free_schedule(smr::ScheduleKind::kAdaptive, cfg);
  adaptive->on_population(4);
  lane.stash_backlog = 0;
  EXPECT_EQ(adaptive->flush_quota(lane), 1u);  // quiet stash: the floor
  lane.stash_backlog = 1;
  const std::size_t q_small = adaptive->flush_quota(lane);
  lane.stash_backlog = 1 << 20;
  const std::size_t q_big = adaptive->flush_quota(lane);
  EXPECT_GE(q_big, q_small) << "quota must be monotone in stash backlog";
  EXPECT_EQ(q_big, 48u) << "a huge stash must hit the EMR_FLUSH_BATCH cap";

  // The tail-steered policy scales the adaptive quantum but never stops
  // flushing: a floored scale still moves one block per op.
  cfg.latency_target_us = 1;
  auto base = smr::make_free_schedule(smr::ScheduleKind::kLatency, cfg);
  auto* latency =
      dynamic_cast<smr::LatencyTargetFreeSchedule*>(base.get());
  ASSERT_NE(latency, nullptr);
  latency->on_population(4);
  for (int i = 0; i < 32; ++i) latency->on_tail_latency(1'000'000);
  ASSERT_EQ(latency->scale(), smr::LatencyTargetFreeSchedule::kScaleMin);
  EXPECT_GE(latency->flush_quota(lane), 1u);
  EXPECT_LE(latency->flush_quota(lane), 48u);

  cfg = {};
  cfg.flush_batch = 0;
  try {
    smr::make_free_schedule(smr::ScheduleKind::kFixed, cfg);
    FAIL() << "flush_batch == 0 must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("EMR_FLUSH_BATCH"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------- routing + the ledger

// Lane b drains blocks whose allocator home is lane a: with routing on
// they divert onto a's stash and a flushes them locally; the tracking
// allocator proves every block is freed exactly once and the
// stashed/flushed ledger balances to zero backlog.
TEST(HomeFlush, RoutedFreeLandsOnOwnersStashAndFlushesLocally) {
  smr::SmrConfig cfg = small_config(/*batch=*/8, /*drain=*/4);
  cfg.flush_batch = 16;
  World w("debra_af_hf", cfg);
  smr::ThreadHandle a = w.r().register_thread();
  smr::ThreadHandle b = w.r().register_thread();
  constexpr int kBlocks = 200;
  for (int i = 0; i < kBlocks; ++i) {
    void* p = w.r().alloc_node(a, 64);
    {
      smr::Guard g(b);
      g.retire(p);  // b frees a's block: the routed path
    }
    { smr::Guard g(a); }  // a's op end flushes its stash
  }
  EXPECT_GT(w.ex().total_stashed(), 0u)
      << "cross-lane drains must divert through the stash";
  w.r().flush_all();
  EXPECT_EQ(w.ex().total_stashed(), w.ex().total_flushed());
  EXPECT_EQ(w.ex().total_stash_backlog(), 0u);
  EXPECT_EQ(w.r().stats().pending, 0u);
  EXPECT_EQ(w.allocator.live(), 0u);
  EXPECT_EQ(w.allocator.frees(), w.allocator.allocs());

  // The ledger surfaces per lane through stats_with_lanes.
  const smr::SmrStats st = w.r().stats_with_lanes();
  std::uint64_t stashed = 0, flushed = 0, backlog = 0;
  for (const smr::LaneStats& l : st.lanes) {
    stashed += l.stashed;
    flushed += l.flushed;
    backlog += l.stash_backlog;
  }
  EXPECT_EQ(stashed, w.ex().total_stashed());
  EXPECT_EQ(flushed, w.ex().total_flushed());
  EXPECT_EQ(backlog, 0u);
}

// Without the _hf suffix the routing layer is never touched.
TEST(HomeFlush, RoutingOffTouchesNoStash) {
  World w("debra_af", small_config());
  smr::ThreadHandle a = w.r().register_thread();
  smr::ThreadHandle b = w.r().register_thread();
  for (int i = 0; i < 100; ++i) {
    void* p = w.r().alloc_node(a, 64);
    {
      smr::Guard g(b);
      g.retire(p);
    }
    { smr::Guard g(a); }
  }
  w.r().flush_all();
  EXPECT_EQ(w.ex().total_stashed(), 0u);
  EXPECT_EQ(w.ex().total_flushed(), 0u);
  EXPECT_EQ(w.allocator.live(), 0u);
}

// Teardown strands nothing in any scheme family: the flush_all
// hand-over/quiesce interleavings differ per scheme, and the teardown
// latch must cover all of them.
TEST(HomeFlush, HfVariantsAccountExactlyAcrossFamilies) {
  for (const std::string& base : smr::experiment2_reclaimers()) {
    World w(base + "_af_hf", small_config());
    smr::ThreadHandle h = w.r().register_thread();
    smr::ThreadHandle other = w.r().register_thread();
    for (int i = 0; i < 100; ++i) {
      void* p = w.r().alloc_node(h, 64);
      {
        smr::Guard g(other);
        g.retire(p);
      }
      { smr::Guard g(h); }
    }
    w.r().flush_all();
    const smr::SmrStats st = w.r().stats();
    EXPECT_EQ(st.retired, 100u) << base;
    EXPECT_EQ(st.pending, 0u) << base;
    EXPECT_EQ(w.ex().total_stashed(), w.ex().total_flushed()) << base;
    EXPECT_EQ(w.ex().total_stash_backlog(), 0u) << base;
    EXPECT_EQ(w.allocator.live(), 0u) << base;
  }
}

// ---------------------------------------- departure + orphan adoption

// A lane departing with a fed stash folds it into the adoption queue at
// deregister time — the ledger counts the splice as flushed and the
// backlog gauge drops to zero immediately, long before flush_all.
TEST(HomeFlush, DepartureSplicesStashIntoAdoption) {
  smr::SmrConfig cfg = small_config(/*batch=*/4, /*drain=*/2);
  World w("debra_af_hf", cfg);
  smr::ThreadHandle b = w.r().register_thread();
  std::vector<void*> blocks;
  {
    smr::ThreadHandle d = w.r().register_thread();
    for (int i = 0; i < 64; ++i) blocks.push_back(w.r().alloc_node(d, 64));
    // b drains blocks homed on d; d never runs an op, so its stash only
    // fills.
    for (void* p : blocks) {
      smr::Guard g(b);
      g.retire(p);
    }
    for (int i = 0; i < 64; ++i) {
      smr::Guard g(b);
    }
    ASSERT_GT(w.ex().total_stash_backlog(), 0u)
        << "precondition: d's stash must hold blocks when d departs";
  }  // d departs: on_lane_released splices the stash
  EXPECT_EQ(w.ex().total_stash_backlog(), 0u);
  EXPECT_EQ(w.ex().total_stashed(), w.ex().total_flushed());
  w.r().flush_all();
  EXPECT_EQ(w.allocator.live(), 0u);
}

// Blocks homed on a lane that departed *before* they were drained land
// on a vacant lane's stash; the daemon's all-lanes sweep adopts them.
TEST(HomeFlush, DaemonAdoptsVacantLaneStash) {
  smr::SmrConfig cfg = small_config(/*batch=*/4, /*drain=*/2);
  cfg.extra_slots = 2;  // the daemon's own slot + churn headroom
  World w("debra_af_hf", cfg);
  w.ex().set_daemon_hooked(true);
  smr::ReclaimerDaemon daemon(w.r(), smr::DaemonLevel::kAggressive, 1);

  std::vector<void*> blocks;
  {
    smr::ThreadHandle d = w.r().register_thread();
    for (int i = 0; i < 64; ++i) blocks.push_back(w.r().alloc_node(d, 64));
  }  // d departs with an empty stash; its blocks are still live
  daemon.start();
  smr::ThreadHandle b = w.r().register_thread();
  for (void* p : blocks) {
    smr::Guard g(b);
    g.retire(p);
  }
  // b's drains feed the vacant lane's stash; only the daemon can empty
  // it (b flushes its own stash, never a foreign one).
  for (int i = 0; i < 2000 && (w.ex().total_stashed() == 0 ||
                               w.ex().total_stash_backlog() != 0);
       ++i) {
    { smr::Guard g(b); }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(w.ex().total_stashed(), 0u);
  EXPECT_EQ(w.ex().total_stash_backlog(), 0u)
      << "the daemon sweep must adopt a vacant lane's stash";
  daemon.stop();
  w.r().flush_all();
  EXPECT_EQ(w.ex().total_stashed(), w.ex().total_flushed());
  EXPECT_EQ(w.allocator.live(), 0u);
}

// ----------------------------------------------------- TSAN stress

// MPSC stash under fire: many producer lanes push one owner's stash
// while the owner concurrently flushes it. The tracking allocator
// asserts no block is freed twice (no dup) and the final ledger proves
// none is lost. hp, not debra: hazard-pointer scans fire locally at the
// retire-list threshold, so every producer routes blocks no matter how
// the other threads are scheduled — an epoch scheme's advance (and so
// this test) could be wedged for the whole run by the flusher thread
// getting descheduled inside a guard.
TEST(HomeFlushConcurrent, MpscStashStressNoLossNoDup) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  smr::SmrConfig cfg = small_config(/*batch=*/8, /*drain=*/4);
  cfg.num_threads = kProducers + 1;
  cfg.flush_batch = 8;  // small quantum: flushes interleave with pushes
  World w("hp_af_hf", cfg);

  smr::ThreadHandle owner = w.r().register_thread();
  // Home every block on the owner's lane (single-threaded: the model
  // allocator's per-thread state is not written concurrently).
  std::vector<std::vector<void*>> shares(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    for (int i = 0; i < kPerProducer; ++i) {
      shares[static_cast<std::size_t>(t)].push_back(
          w.r().alloc_node(owner, 64));
    }
  }

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      smr::Guard g(owner);  // op end flushes the owner's stash
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      smr::ThreadHandle h = w.r().register_thread();
      for (void* p : shares[static_cast<std::size_t>(t)]) {
        smr::Guard g(h);
        g.retire(p);
      }
      // hp scans fired at the retire-list threshold along the way, so
      // this lane already pushed the owner's stash; the tail below the
      // threshold routes at deregistration's departure scan.
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  flusher.join();

  w.r().flush_all();
  EXPECT_GT(w.ex().total_stashed(), 0u);
  EXPECT_EQ(w.ex().total_stashed(), w.ex().total_flushed());
  EXPECT_EQ(w.ex().total_stash_backlog(), 0u);
  EXPECT_EQ(w.allocator.live(), 0u) << "no block may be lost in a stash";
  EXPECT_EQ(w.allocator.frees(), w.allocator.allocs());
}

}  // namespace
