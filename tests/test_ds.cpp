// The ds/ layer's correctness suite: single-threaded model checks
// against std::set, Guard-protection semantics over the tracking
// allocator, a multi-threaded guarded-traversal stress (the TSAN target
// in ci/check.sh), and a teardown sweep across every ds x reclaimer
// pair proving nothing leaks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "ds/set.hpp"
#include "smr/factory.hpp"
#include "tests/tracking_allocator.hpp"

namespace {

using namespace emr;
using test::TrackingAllocator;

struct DsWorld {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;
  std::unique_ptr<ds::ConcurrentSet> set;
  // Declared after `set`: handles release before the structure's
  // destructor registers its own teardown handle. One handle per lane;
  // single-threaded tests multiplex them, the concurrent stress hands
  // each worker thread exactly one.
  std::vector<smr::ThreadHandle> handles;

  DsWorld(const std::string& ds_name, const std::string& reclaimer,
          std::uint64_t keyrange = 512, int threads = 4,
          std::size_t batch = 16) {
    ctx.allocator = &allocator;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    cfg.epoch_freq = 16;
    bundle = smr::make_reclaimer(reclaimer, ctx, cfg);
    ds::SetConfig dcfg;
    dcfg.keyrange = keyrange;
    dcfg.num_threads = threads;
    set = ds::make_set(ds_name, dcfg, bundle.reclaimer.get());
    for (int t = 0; t < threads; ++t) {
      handles.push_back(bundle.reclaimer->register_thread());
    }
  }

  smr::ThreadHandle& h(int t) {
    return handles[static_cast<std::size_t>(t)];
  }

  /// Releases every handle, tears the structure down and drains the
  /// reclaimer; afterwards the tracking allocator must report zero live
  /// nodes.
  void teardown() {
    handles.clear();
    set.reset();
    bundle.reclaimer->flush_all();
  }
};

// ------------------------------------------------------ model checking

class DsModelTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllStructures, DsModelTest,
                         ::testing::ValuesIn(ds::set_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// Every structure must agree with std::set on a long random op stream,
// including the return value of every insert/erase/contains.
TEST_P(DsModelTest, MatchesStdSetSingleThreaded) {
  for (const char* reclaimer : {"debra", "hp"}) {
    DsWorld w(GetParam(), reclaimer, /*keyrange=*/256);
    std::set<std::uint64_t> model;
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t key = rng.next_range(256);
      const std::uint64_t dice = rng.next_range(3);
      if (dice == 0) {
        ASSERT_EQ(w.set->insert(w.h(0), key), model.insert(key).second)
            << reclaimer << " op " << i;
      } else if (dice == 1) {
        ASSERT_EQ(w.set->erase(w.h(0), key), model.erase(key) == 1)
            << reclaimer << " op " << i;
      } else {
        ASSERT_EQ(w.set->contains(w.h(0), key), model.count(key) == 1)
            << reclaimer << " op " << i;
      }
    }
    // Every model key is present, every non-key absent.
    for (std::uint64_t k = 0; k < 256; ++k) {
      ASSERT_EQ(w.set->contains(w.h(0), k), model.count(k) == 1)
          << reclaimer;
    }
    w.teardown();
    EXPECT_EQ(w.allocator.live(), 0u) << reclaimer;
  }
}

// ---------------------------------------------------- guard protection

// A Guard's protect() must keep the node alive against a concurrent
// retire + churn storm for every scheme family, and releasing the guard
// (plus a flush) must let it go.
TEST(DsGuard, NoFreeWhileGuardProtects) {
  for (const char* name :
       {"debra", "qsbr", "token", "hp", "he", "ibr", "wfe", "nbr"}) {
    TrackingAllocator allocator;
    smr::SmrContext ctx;
    ctx.allocator = &allocator;
    smr::SmrConfig cfg;
    cfg.num_threads = 2;
    cfg.batch_size = 8;
    cfg.epoch_freq = 16;
    smr::ReclaimerBundle bundle = smr::make_reclaimer(name, ctx, cfg);
    smr::Reclaimer& r = *bundle.reclaimer;
    smr::ThreadHandle h0 = r.register_thread();
    smr::ThreadHandle h1 = r.register_thread();

    void* x = r.alloc_node(h0, 64);
    std::atomic<void*> src{x};
    {
      smr::Guard g(h0);
      EXPECT_EQ(g.protect(0, src), x) << name;
      EXPECT_TRUE(g.validate()) << name;

      // Lane 1 unlinks + retires x, then churns hard enough to drive
      // scans and era advances.
      src.store(nullptr, std::memory_order_release);
      {
        smr::Guard g1(h1);
        g1.retire(x);
      }
      for (int i = 0; i < 400; ++i) {
        smr::Guard g1(h1);
        g1.retire(r.alloc_node(h1, 64));
      }
      EXPECT_EQ(allocator.freed_count(x), 0u)
          << name << ": node freed while a Guard protects it";
    }
    r.flush_all();
    EXPECT_GE(allocator.freed_count(x), 1u) << name;
    EXPECT_EQ(allocator.live(), 0u) << name;
  }
}

// The NBR-specific Guard path: validate() returns false after a
// neutralization (re-announcing as it does), true otherwise.
TEST(DsGuard, ValidateReportsNeutralization) {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  smr::SmrConfig cfg;
  cfg.num_threads = 2;
  cfg.batch_size = 8;
  cfg.epoch_freq = 4;
  smr::ReclaimerBundle bundle = smr::make_reclaimer("nbr", ctx, cfg);
  smr::Reclaimer& r = *bundle.reclaimer;
  smr::ThreadHandle h0 = r.register_thread();
  smr::ThreadHandle h1 = r.register_thread();

  {
    smr::Guard g(h0);
    EXPECT_TRUE(g.validate());
    // Churn on lane 1 until lane 0 is neutralized.
    bool neutralized = false;
    for (int i = 0; i < 2000 && !neutralized; ++i) {
      smr::Guard g1(h1);
      g1.retire(r.alloc_node(h1, 64));
      neutralized = !g.validate();
    }
    EXPECT_TRUE(neutralized) << "churn never neutralized the reader";
    EXPECT_TRUE(g.validate()) << "validate must reset after a restart";
  }
  r.flush_all();
  EXPECT_EQ(allocator.live(), 0u);
}

// ------------------------------------------- multi-threaded traversal

class DsConcurrentTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    LockFreeStructures, DsConcurrentTest,
    ::testing::Values("abtree", "occtree", "dgt"),
    [](const ::testing::TestParamInfo<std::string>& i) { return i.param; });

// Readers traverse (guarded, lock-free) while writers insert/erase and
// retirement churns underneath them. The tracking allocator asserts on
// any double free or foreign free; under the TSAN build in ci/check.sh
// this is also the data-race check for every guard protocol.
TEST_P(DsConcurrentTest, GuardedTraversalsRaceReclamation) {
  for (const char* reclaimer : {"debra", "hp", "ibr", "nbr", "debra_pool"}) {
    constexpr std::uint64_t kKeyrange = 128;  // small: maximal collisions
    DsWorld w(GetParam(), reclaimer, kKeyrange, /*threads=*/4,
              /*batch=*/8);
    for (std::uint64_t k = 0; k < kKeyrange; k += 2) {
      w.set->insert(w.h(0), k);
    }

    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int tid = 0; tid < 2; ++tid) {
      threads.emplace_back([&, tid] {  // writers
        smr::ThreadHandle& h = w.h(tid);
        Rng rng(100 + tid);
        for (int i = 0; i < 4000; ++i) {
          const std::uint64_t key = rng.next_range(kKeyrange);
          if (rng.next_range(2) == 0) {
            w.set->insert(h, key);
          } else {
            w.set->erase(h, key);
          }
        }
        stop.store(true, std::memory_order_release);
      });
    }
    for (int tid = 2; tid < 4; ++tid) {
      threads.emplace_back([&, tid] {  // readers
        smr::ThreadHandle& h = w.h(tid);
        Rng rng(200 + tid);
        std::uint64_t found = 0;
        while (!stop.load(std::memory_order_acquire)) {
          found += w.set->contains(h, rng.next_range(kKeyrange)) ? 1 : 0;
        }
        EXPECT_GE(found, 0u);  // keep `found` observable
      });
    }
    for (std::thread& t : threads) t.join();

    // Single-threaded again: the structure must still be a set.
    std::set<std::uint64_t> seen;
    for (std::uint64_t k = 0; k < kKeyrange; ++k) {
      if (w.set->contains(w.h(0), k)) seen.insert(k);
      EXPECT_EQ(w.set->insert(w.h(0), k), seen.count(k) == 0) << reclaimer;
    }
    w.teardown();
    EXPECT_EQ(w.allocator.live(), 0u)
        << GetParam() << " x " << reclaimer;
    EXPECT_EQ(w.allocator.allocs(), w.allocator.frees())
        << GetParam() << " x " << reclaimer;
  }
}

// ------------------------------------------------------ teardown sweep

// Every ds x reclaimer-name pair (all bases x batch/_af/_pool) must
// free every node it ever allocated once the structure is destroyed and
// the reclaimer flushed.
TEST(DsTeardown, EveryPairFreesEverything) {
  for (const std::string& ds_name : ds::set_names()) {
    for (const std::string& reclaimer : smr::all_factory_names()) {
      DsWorld w(ds_name, reclaimer, /*keyrange=*/128, /*threads=*/2);
      Rng rng(3);
      for (int i = 0; i < 400; ++i) {
        smr::ThreadHandle& h = w.h(i & 1);
        const std::uint64_t key = rng.next_range(128);
        switch (rng.next_range(3)) {
          case 0:
            w.set->insert(h, key);
            break;
          case 1:
            w.set->erase(h, key);
            break;
          default:
            w.set->contains(h, key);
            break;
        }
      }
      w.teardown();
      EXPECT_EQ(w.allocator.live(), 0u) << ds_name << " x " << reclaimer;
      EXPECT_EQ(w.allocator.allocs(), w.allocator.frees())
          << ds_name << " x " << reclaimer;
      EXPECT_EQ(w.bundle.reclaimer->stats().pending, 0u)
          << ds_name << " x " << reclaimer;
    }
  }
}

// -------------------------------------------------------- factory misc

TEST(DsFactory, UnknownNamesFailFastWithValidList) {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  ctx.allocator = &allocator;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle = smr::make_reclaimer("debra", ctx, cfg);
  try {
    ds::make_set("btree9000", {}, bundle.reclaimer.get());
    FAIL() << "unknown ds name must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("abtree"), std::string::npos)
        << "error must list the valid names, got: " << e.what();
  }
  EXPECT_THROW(ds::node_size_for_ds("nope"), std::invalid_argument);
}

TEST(DsFactory, NodeSizesComeFromRealNodeTypes) {
  // The sizes the paper quotes, now derived from sizeof the real nodes.
  EXPECT_EQ(ds::node_size_for_ds("abtree"), 240u);
  EXPECT_EQ(ds::node_size_for_ds("occtree"), 64u);
  EXPECT_EQ(ds::node_size_for_ds("dgt"), 96u);
  EXPECT_EQ(ds::node_size_for_ds("shardedset"), 32u);
  for (const std::string& name : ds::set_names()) {
    TrackingAllocator allocator;
    smr::SmrContext ctx;
    ctx.allocator = &allocator;
    smr::SmrConfig cfg;
    smr::ReclaimerBundle bundle = smr::make_reclaimer("debra", ctx, cfg);
    auto set = ds::make_set(name, {}, bundle.reclaimer.get());
    EXPECT_EQ(set->node_size(), ds::node_size_for_ds(name)) << name;
    EXPECT_EQ(set->name(), name);
  }
}

}  // namespace
