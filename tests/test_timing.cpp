// The clock behind every latency recorder and modelled cost burn: TSC
// detection/calibration, the steady fallback, timeline continuity
// across the calibration switch, and the calibrated pause-loop burn
// spin_for_ns runs (the remote-free penalty is charged through it, so a
// burn that undershoots silently deflates the paper's RBF effect).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/timing.hpp"

namespace {

using namespace emr;

class TimingTest : public ::testing::Test {
 protected:
  // Every test leaves the process in the default calibrated state so
  // test order cannot matter (other suites rely on now_ns()).
  void TearDown() override { timing::detail::recalibrate_for_test(true); }
};

TEST_F(TimingTest, CalibrateIsIdempotentAndNamesItsClock) {
  timing::calibrate_clock();
  const bool active = timing::tsc_active();
  const char* name = timing::clock_name();
  EXPECT_STREQ(name, active ? "tsc" : "steady");
  if (active) {
    EXPECT_GT(timing::tsc_ghz(), 0.1);   // no real CPU below 100 MHz
    EXPECT_LT(timing::tsc_ghz(), 10.0);  // or above 10 GHz
  } else {
    EXPECT_DOUBLE_EQ(timing::tsc_ghz(), 0.0);
  }
  // A second call must not move the clock.
  timing::calibrate_clock();
  EXPECT_EQ(timing::tsc_active(), active);
}

TEST_F(TimingTest, NowNsIsMonotonicOnTheActiveClock) {
  timing::calibrate_clock();
  std::uint64_t prev = now_ns();
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t t = now_ns();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST_F(TimingTest, SteadyFallbackServesWhenTscForbidden) {
  timing::detail::recalibrate_for_test(/*allow_tsc=*/false);
  EXPECT_FALSE(timing::tsc_active());
  EXPECT_STREQ(timing::clock_name(), "steady");
  EXPECT_DOUBLE_EQ(timing::tsc_ghz(), 0.0);

  // The fallback is still a working monotonic clock...
  std::uint64_t prev = now_ns();
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t t = now_ns();
    ASSERT_GE(t, prev);
    prev = t;
  }
  // ...and spin_for_ns still burns (the pause rate survives the clock
  // downgrade — the burn is clock-independent once calibrated).
  const std::uint64_t t0 = now_ns();
  spin_for_ns(200'000);
  EXPECT_GE(now_ns() - t0, 200'000u);
}

TEST_F(TimingTest, TimelineIsContinuousAcrossTheCalibrationSwitch) {
  // Timestamps taken on the steady clock just before the switch and on
  // the TSC just after must stay ordered on one timeline: the TSC path
  // anchors itself to steady_clock at the switch instant.
  timing::detail::recalibrate_for_test(/*allow_tsc=*/false);
  const std::uint64_t before = now_ns();
  timing::detail::recalibrate_for_test(/*allow_tsc=*/true);
  const std::uint64_t after = now_ns();
  EXPECT_GE(after, before);
  // And the clocks did not jump by more than the calibration itself
  // takes (~2 ms measurement window + slack).
  EXPECT_LT(after - before, 500'000'000u);
}

TEST_F(TimingTest, SpinForNsBurnsAtLeastTheRequestedTime) {
  timing::calibrate_clock();
  EXPECT_GT(timing::pause_rate(), 0.0);
  // The counted-burn path (<= 100 us) is calibrated, not clocked: if
  // every calibration trial was preempted (a loaded single-CPU box),
  // the measured pause rate is low and the burn can undershoot. Allow
  // 2x slack there; the deadline-loop path re-reads the clock and is
  // exact by construction, so it gets the strict bound.
  for (const std::uint64_t ns : {100u, 1'000u, 50'000u}) {
    const std::uint64_t t0 = timing::detail::steady_now_ns();
    spin_for_ns(ns);
    const std::uint64_t elapsed = timing::detail::steady_now_ns() - t0;
    EXPECT_GE(elapsed, ns / 2) << "requested " << ns;
  }
  const std::uint64_t t0 = timing::detail::steady_now_ns();
  spin_for_ns(400'000);
  const std::uint64_t elapsed = timing::detail::steady_now_ns() - t0;
  // >= is the contract (the model must charge at least the cost);
  // scheduling noise makes an upper bound untestable here.
  EXPECT_GE(elapsed, 400'000u);
}

TEST_F(TimingTest, SpinForNsZeroIsANoOp) {
  spin_for_ns(0);  // must not touch the clock or the pause loop
  SUCCEED();
}

TEST_F(TimingTest, ConcurrentReadersSurviveTheSwitchToTsc) {
  // now_ns() readers race the steady->TSC switch, the shape of the one
  // transition production performs (calibrate_clock runs once, from a
  // process that started on the steady fallback). The anchors are
  // written while the flag is still false and published by the release
  // store, so no reader may observe a torn timestamp: time never runs
  // backwards on any thread. (Re-anchoring an already-active TSC clock
  // under readers is NOT safe — recalibrate_for_test documents that —
  // so this test always enters the switch from the steady state.)
  timing::detail::recalibrate_for_test(/*allow_tsc=*/false);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      std::uint64_t prev = now_ns();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t t = now_ns();
        if (t + 1'000'000'000ull < prev) {  // >1s backwards = torn read
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        prev = t;
      }
    });
  }
  timing::detail::recalibrate_for_test(/*allow_tsc=*/true);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
