// ThreadHandle lifecycle suite: register/release/re-register loops
// across every factory name, slot exhaustion and reuse, the
// departed-thread guarantees (a released handle's pending retires still
// reach total_freed(); a vacated slot never pins the epoch or stalls
// the token ring), and a register/deregister churn stress over a live
// lock-free structure — the TSAN target ci/check.sh race-checks.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "ds/set.hpp"
#include "smr/factory.hpp"
#include "tests/tracking_allocator.hpp"

namespace {

using namespace emr;
using test::TrackingAllocator;

struct LifecycleWorld {
  TrackingAllocator allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;

  explicit LifecycleWorld(const std::string& name, int threads = 2,
                          std::size_t batch = 8) {
    ctx.allocator = &allocator;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    cfg.af_drain_per_op = 4;
    cfg.epoch_freq = 16;
    bundle = smr::make_reclaimer(name, ctx, cfg);
  }

  smr::Reclaimer& r() { return *bundle.reclaimer; }
};

class HandleLifecycleTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllFactoryNames, HandleLifecycleTest,
    ::testing::ValuesIn(smr::all_factory_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// Slots are a bounded, recycled resource: a full table rejects the next
// registration, released slots are reused (dense indices, bumped
// generations), and ops interleaved with the register/release loops
// still account exactly at teardown.
TEST_P(HandleLifecycleTest, RegisterReleaseReRegisterLoops) {
  const std::string name = GetParam();
  LifecycleWorld w(name);
  const std::size_t cap = w.r().slot_capacity();
  ASSERT_GE(cap, 2u);

  std::uint64_t retired = 0;
  for (int round = 0; round < 6; ++round) {
    std::vector<smr::ThreadHandle> handles;
    std::set<int> slots;
    for (std::size_t i = 0; i < cap; ++i) {
      handles.push_back(w.r().register_thread());
      EXPECT_GE(handles.back().generation(),
                static_cast<std::uint64_t>(round + 1))
          << name;
      slots.insert(handles.back().slot());
    }
    // Dense, unique slots covering [0, cap).
    EXPECT_EQ(slots.size(), cap) << name;
    EXPECT_EQ(*slots.begin(), 0) << name;
    EXPECT_EQ(*slots.rbegin(), static_cast<int>(cap) - 1) << name;
    EXPECT_EQ(w.r().active_slots(), cap) << name;
    EXPECT_THROW(w.r().register_thread(), std::runtime_error) << name;

    for (smr::ThreadHandle& h : handles) {
      for (int i = 0; i < 4; ++i) {
        smr::Guard g(h);
        g.retire(w.r().alloc_node(h, 64));
        ++retired;
      }
    }
    handles.clear();  // release all: slots recycle, backlogs hand off
    EXPECT_EQ(w.r().active_slots(), 0u) << name;
  }

  w.r().flush_all();
  const smr::SmrStats st = w.r().stats();
  EXPECT_EQ(st.retired, retired) << name;
  EXPECT_EQ(st.pending, 0u) << name;
  EXPECT_EQ(w.allocator.live(), 0u) << name;
}

// The departed-thread backlog guarantee: retires parked on a handle
// that is then released are never lost — they reach the executor's
// total_freed() once grace (or teardown) allows.
TEST_P(HandleLifecycleTest, ReleasedHandleBacklogReachesTotalFreed) {
  const std::string name = GetParam();
  LifecycleWorld w(name, /*threads=*/2, /*batch=*/64);

  {
    smr::ThreadHandle h = w.r().register_thread();
    for (int i = 0; i < 20; ++i) {  // well under batch: all stay pending
      smr::Guard g(h);
      g.retire(w.r().alloc_node(h, 64));
    }
  }  // release with the backlog still in limbo

  // A successor adopts the slot and keeps operating.
  smr::ThreadHandle h2 = w.r().register_thread();
  for (int i = 0; i < 8; ++i) {
    smr::Guard g(h2);
  }
  h2.release();

  w.r().flush_all();
  EXPECT_GE(w.r().executor().total_freed(), 20u)
      << name << ": a released handle's retires must reach the executor";
  EXPECT_EQ(w.r().stats().pending, 0u) << name;
  EXPECT_EQ(w.allocator.live(), 0u) << name;
}

TEST(HandleLifecycle, DetachedHandleFailsFast) {
  LifecycleWorld w("debra");
  smr::ThreadHandle h = w.r().register_thread();
  h.release();
  EXPECT_FALSE(h.attached());
  EXPECT_THROW(w.r().begin_op(h), std::logic_error);

  LifecycleWorld other("debra");
  smr::ThreadHandle foreign = other.r().register_thread();
  EXPECT_THROW(w.r().begin_op(foreign), std::logic_error);
}

// The satellite fix: the token ring must keep rotating while a slot
// between two live threads is vacant (pre-handle code passed to a dense
// tid that no longer ran and stalled forever), and the departed
// thread's sealed bags must still drain.
TEST(HandleLifecycle, TokenRotationCompletesAcrossVacantSlot) {
  for (const char* name : {"token", "token_naive", "token_passfirst",
                           "token_af", "token_pool"}) {
    LifecycleWorld w(name, /*threads=*/3, /*batch=*/4);
    smr::ThreadHandle h0 = w.r().register_thread();
    smr::ThreadHandle h1 = w.r().register_thread();
    smr::ThreadHandle h2 = w.r().register_thread();

    auto tick = [&w](smr::ThreadHandle& h) {
      w.r().begin_op(h);
      w.r().end_op(h);
    };
    // Seed some retires on the soon-to-depart middle slot, then rotate.
    for (int i = 0; i < 8; ++i) {
      smr::Guard g(h1);
      g.retire(w.r().alloc_node(h1, 64));
    }
    for (int i = 0; i < 16; ++i) {
      tick(h0);
      tick(h1);
      tick(h2);
    }

    h1.release();  // slot 1 is now a hole in the ring
    const std::uint64_t rotations_before = w.r().stats().epochs_advanced;
    for (int i = 0; i < 4000; ++i) {
      tick(h0);
      tick(h2);
    }
    EXPECT_GT(w.r().stats().epochs_advanced, rotations_before)
        << name << ": rotation stalled on the vacant slot";

    w.r().flush_all();
    EXPECT_EQ(w.r().stats().pending, 0u) << name;
    EXPECT_EQ(w.allocator.live(), 0u) << name;
  }
}

// Token parked on the departing holder: the departure hand-off (or a
// surviving thread's adoption CAS) must keep the ring moving even when
// the holder releases between ops.
TEST(HandleLifecycle, TokenHolderDepartureHandsOff) {
  LifecycleWorld w("token", /*threads=*/2, /*batch=*/4);
  for (int round = 0; round < 20; ++round) {
    smr::ThreadHandle a = w.r().register_thread();
    smr::ThreadHandle b = w.r().register_thread();
    const std::uint64_t before = w.r().stats().epochs_advanced;
    for (int i = 0; i < 200; ++i) {
      w.r().begin_op(a);
      w.r().end_op(a);
    }
    a.release();  // whoever holds the token, b must still rotate alone...
    for (int i = 0; i < 600; ++i) {
      w.r().begin_op(b);
      w.r().end_op(b);
    }
    EXPECT_GT(w.r().stats().epochs_advanced, before) << "round " << round;
    b.release();
  }
  w.r().flush_all();
  EXPECT_EQ(w.allocator.live(), 0u);
}

// EBR: a handle that departs (without quiescing further) must not pin
// the epoch for the survivors.
TEST(HandleLifecycle, EpochKeepsAdvancingAfterDeparture) {
  for (const char* name : {"debra", "qsbr", "rcu"}) {
    LifecycleWorld w(name, /*threads=*/3, /*batch=*/4);
    smr::ThreadHandle h0 = w.r().register_thread();
    smr::ThreadHandle h1 = w.r().register_thread();
    {
      smr::ThreadHandle departing = w.r().register_thread();
      for (int i = 0; i < 8; ++i) {
        smr::Guard g(departing);
        g.retire(w.r().alloc_node(departing, 64));
      }
    }  // departs with retires parked and no further announcements

    const std::uint64_t before = w.r().stats().epochs_advanced;
    for (int i = 0; i < 2000; ++i) {
      smr::Guard g0(h0);
      smr::Guard g1(h1);
    }
    EXPECT_GT(w.r().stats().epochs_advanced, before)
        << name << ": departed handle pinned the epoch";

    w.r().flush_all();
    EXPECT_EQ(w.r().stats().pending, 0u) << name;
    EXPECT_EQ(w.allocator.live(), 0u) << name;
  }
}

// Destroying a structure while every registration slot is held must
// not throw out of the destructor (std::terminate): the TeardownCursor
// degrades to the handle-less teardown lane.
TEST(HandleLifecycle, StructureTeardownSurvivesExhaustedSlotTable) {
  for (const std::string& ds_name : ds::set_names()) {
    LifecycleWorld w("debra", /*threads=*/2);
    ds::SetConfig dcfg;
    dcfg.keyrange = 64;
    dcfg.num_threads = 2;
    std::unique_ptr<ds::ConcurrentSet> set =
        ds::make_set(ds_name, dcfg, &w.r());

    std::vector<smr::ThreadHandle> handles;
    handles.push_back(w.r().register_thread());
    for (std::uint64_t k = 0; k < 64; k += 2) set->insert(handles[0], k);
    while (w.r().active_slots() < w.r().slot_capacity()) {
      handles.push_back(w.r().register_thread());
    }

    set.reset();  // full table: the cursor's register fails, no throw
    handles.clear();
    w.r().flush_all();
    EXPECT_EQ(w.r().stats().pending, 0u) << ds_name;
    EXPECT_EQ(w.allocator.live(), 0u) << ds_name;
  }
}

// ------------------------------------------------------- churn stress

// Register/deregister churn racing live guarded traversals: four
// workers repeatedly register, run guarded ops on a shared lock-free
// structure (retiring nodes), and deregister while the other threads
// are mid-traversal. The TSAN build in ci/check.sh runs exactly this
// filter; the tracking allocator asserts on double/foreign frees, and
// the epoch beat must keep advancing throughout (the acceptance
// criterion for departed threads).
TEST(HandleChurnStress, RegisterDeregisterRacesGuardedTraversals) {
  // debra_adaptive/ibr_adaptive put the AdaptiveFreeSchedule and the
  // executor's lane-stats counters under the same register/deregister
  // fire (the TSAN pass the adaptive controller is gated on).
  for (const char* reclaimer : {"debra", "hp", "ibr", "nbr", "token_af",
                                "debra_adaptive", "ibr_adaptive"}) {
    constexpr int kWorkers = 4;
    constexpr std::uint64_t kKeyrange = 128;
    TrackingAllocator allocator;
    smr::SmrContext ctx;
    ctx.allocator = &allocator;
    smr::SmrConfig cfg;
    cfg.num_threads = kWorkers;
    cfg.batch_size = 8;
    cfg.epoch_freq = 16;
    smr::ReclaimerBundle bundle = smr::make_reclaimer(reclaimer, ctx, cfg);
    ds::SetConfig dcfg;
    dcfg.keyrange = kKeyrange;
    dcfg.num_threads = kWorkers;
    {
      std::unique_ptr<ds::ConcurrentSet> set =
          ds::make_set("dgt", dcfg, bundle.reclaimer.get());
      {
        smr::ThreadHandle h = bundle.reclaimer->register_thread();
        for (std::uint64_t k = 0; k < kKeyrange; k += 2) set->insert(h, k);
      }

      const std::uint64_t epochs_before =
          bundle.reclaimer->stats().epochs_advanced;
      std::vector<std::thread> threads;
      for (int w = 0; w < kWorkers; ++w) {
        threads.emplace_back([&, w] {
          Rng rng(500 + w);
          for (int round = 0; round < 30; ++round) {
            // A fresh registration per round: deregistration below runs
            // while the other workers are mid-traversal.
            smr::ThreadHandle h = bundle.reclaimer->register_thread();
            for (int i = 0; i < 120; ++i) {
              const std::uint64_t key = rng.next_range(kKeyrange);
              switch (rng.next_range(3)) {
                case 0:
                  set->insert(h, key);
                  break;
                case 1:
                  set->erase(h, key);
                  break;
                default:
                  set->contains(h, key);
                  break;
              }
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      EXPECT_GT(bundle.reclaimer->stats().epochs_advanced, epochs_before)
          << reclaimer << ": churned departures pinned the progress beat";
      EXPECT_EQ(bundle.reclaimer->active_slots(), 0u) << reclaimer;
    }
    bundle.reclaimer->flush_all();
    EXPECT_EQ(bundle.reclaimer->stats().pending, 0u) << reclaimer;
    EXPECT_EQ(bundle.reclaimer->executor().backlog(), 0u) << reclaimer;
    EXPECT_EQ(allocator.live(), 0u) << reclaimer;
    EXPECT_EQ(allocator.allocs(), allocator.frees()) << reclaimer;
  }
}

}  // namespace
