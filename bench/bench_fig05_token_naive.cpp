// Figure 5 (a,b): Naive Token-EBR throughput and peak memory vs threads.
// Paper shape: throughput looks competitive (artificially inflated by not
// reclaiming) while peak memory explodes — the "garbage pile up" problem.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  harness::print_banner("Figure 5: Naive Token-EBR performance + peak memory",
                        "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 5",
                        describe(base));

  harness::Table table(
      {"threads", "reclaimer", "Mops/s", "peak_MiB", "pending_garbage"});
  for (const char* reclaimer : {"token_naive", "debra"}) {
    for (int n : default_thread_sweep()) {
      harness::TrialConfig cfg = base;
      cfg.reclaimer = reclaimer;
      cfg.nthreads = n;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();
      table.add_row({std::to_string(n), reclaimer,
                     harness::fixed(r.mops, 2),
                     harness::fixed(static_cast<double>(r.peak_bytes_mapped) /
                                        (1024.0 * 1024.0),
                                    1),
                     harness::human_count(
                         static_cast<double>(r.smr_stats.pending))});
    }
  }
  table.print();
  table.write_csv(harness::out_dir() + "fig05_token_naive.csv");
  std::printf("\npaper shape: naive token-EBR looks fast but its peak "
              "memory usage grows far beyond DEBRA's.\n");
  return 0;
}
