// Figure 11a (Experiment 1): token_af and debra_af vs the state of the art
// (he, hp, ibr, nbr, nbr+, qsbr, rcu, wfe, debra, token) and the leaky
// baseline, across thread counts on the ABtree. Paper shape: token_af wins
// everywhere (~1.7x over nbr+ on average, 7-9x over hp/he) and both AF
// algorithms beat `none`.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  harness::print_banner(
      "Figure 11a / Experiment 1: token_af vs the state of the art",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 11a", describe(base));

  const std::vector<std::string> reclaimers = {
      "token_af", "debra_af", "debra", "token", "qsbr", "rcu",
      "ibr",      "nbr",      "nbrplus", "he",  "hp",  "wfe", "none"};

  harness::Table table({"threads", "reclaimer", "Mops/s", "min", "max"});
  std::map<std::string, double> avg_over_threads;
  for (const std::string& reclaimer : reclaimers) {
    double sum = 0;
    int count = 0;
    for (int n : default_thread_sweep()) {
      harness::TrialConfig cfg = base;
      cfg.reclaimer = reclaimer;
      cfg.nthreads = n;
      const harness::AggregateResult r = harness::run_trials(cfg);
      table.add_row({std::to_string(n), reclaimer,
                     harness::fixed(r.avg_mops, 2),
                     harness::fixed(r.min_mops, 2),
                     harness::fixed(r.max_mops, 2)});
      std::printf("  threads=%-3d %-10s %7.2f Mops/s\n", n,
                  reclaimer.c_str(), r.avg_mops);
      sum += r.avg_mops;
      ++count;
    }
    avg_over_threads[reclaimer] = sum / count;
  }

  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig11a_exp1.csv");

  std::printf("\naverages across thread counts (paper: token_af ~1.7x the "
              "next best, 7-9x hp/he, and faster than none):\n");
  for (const auto& [name, avg] : avg_over_threads) {
    std::printf("  %-10s %7.2f Mops/s  (token_af/%s = %.2fx)\n",
                name.c_str(), avg, name.c_str(),
                avg > 0 ? avg_over_threads["token_af"] / avg : 0.0);
  }
  return 0;
}
