// Ablation: the AF drain rate k (objects freed per operation). The paper's
// conclusion (§7) prescribes matching k to the structure's frees/op (ABtree
// ~1). Too small: freeable lists grow without bound; too large: frees
// re-batch and the RBF effect returns.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  base.reclaimer = "debra_af";
  harness::print_banner(
      "Ablation: amortized-free drain rate (objects freed per operation)",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" section 7 guidance",
      describe(base));

  harness::Table table(
      {"drain/op", "Mops/s", "%free", "%flush", "end_backlog"});
  for (const std::size_t k : {1, 2, 4, 8, 32, 128}) {
    harness::TrialConfig cfg = base;
    cfg.smr.af_drain_per_op = k;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    table.add_row({std::to_string(k), harness::fixed(r.mops, 2),
                   harness::fixed(r.pct_free, 1),
                   harness::fixed(r.pct_flush, 1),
                   harness::human_count(
                       static_cast<double>(r.smr_stats.pending))});
  }
  table.print();
  table.write_csv(harness::out_dir() + "ablation_af_rate.csv");
  std::printf("\nexpected: k=1 suffices for the ABtree (~1 free/op); large "
              "k re-batches frees and loses the AF benefit.\n");
  return 0;
}
