// Extension ablation: update-fraction sensitivity. The paper fixes 50%
// inserts / 50% deletes; the RBF problem is driven by allocation/free
// traffic, so the batch-vs-AF gap should shrink as reads displace updates.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner(
      "Ablation: update fraction (reads displace allocator traffic)",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" workload extension",
      describe(base));

  harness::Table table({"updates%", "batch Mops/s", "AF Mops/s", "AF/batch"});
  for (const int updates_pct : {100, 50, 20, 5}) {
    double mops[2] = {0, 0};
    int i = 0;
    for (const char* reclaimer : {"debra", "debra_af"}) {
      harness::TrialConfig cfg = base;
      cfg.reclaimer = reclaimer;
      cfg.insert_frac = updates_pct / 200.0;
      cfg.erase_frac = updates_pct / 200.0;
      harness::Trial trial(cfg);
      mops[i++] = trial.run().mops;
    }
    table.add_row({std::to_string(updates_pct),
                   harness::fixed(mops[0], 2), harness::fixed(mops[1], 2),
                   harness::fixed(mops[0] > 0 ? mops[1] / mops[0] : 0, 2) +
                       "x"});
  }
  table.print();
  table.write_csv(harness::out_dir() + "ablation_workload_mix.csv");
  return 0;
}
