// Figures 6-9: for each Token-EBR variant (Naive, Pass-first, Periodic,
// Amortized), a timeline of batch frees (upper) and the per-epoch garbage
// census (lower), at the highest thread count. Paper shape:
//   Fig 6 (naive):      one serialized "curve" of batch frees; few epochs;
//                       garbage grows without bound.
//   Fig 7 (pass-first): concurrent frees, but batch lengths still grow.
//   Fig 8 (periodic):   similar throughput, lower peak garbage.
//   Fig 9 (amortized):  garbage pile-up gone; epoch count way up.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  base.enable_timeline = true;
  base.enable_garbage = true;
  harness::print_banner(
      "Figures 6-9: Token-EBR variants, timelines + garbage census",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Figs. 6-9", describe(base));

  harness::Table table({"variant", "Mops/s", "epochs(rotations)",
                        "peak_garbage", "peak_MiB"});
  struct Variant {
    const char* fig;
    const char* name;
  };
  for (const Variant v : {Variant{"Fig 6", "token_naive"},
                          Variant{"Fig 7", "token_passfirst"},
                          Variant{"Fig 8", "token"},
                          Variant{"Fig 9", "token_af"}}) {
    harness::TrialConfig cfg = base;
    cfg.reclaimer = v.name;
    if (std::string(v.name) == "token_af") {
      // Fig 9 plots individual free calls longer than 0.1ms.
      cfg.timeline_min_duration_ns = 100'000;
    }
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();

    std::printf("\n=== %s: %s ===\n", v.fig, v.name);
    const EventKind kind = std::string(v.name) == "token_af"
                               ? EventKind::kFreeCall
                               : EventKind::kBatchFree;
    std::fputs(trial.timeline().render_ascii(kind, 16, 100).c_str(),
               stdout);
    std::printf("garbage per epoch:\n");
    std::fputs(trial.garbage().render_ascii(100, 6).c_str(), stdout);

    table.add_row({v.name, harness::fixed(r.mops, 2),
                   std::to_string(r.smr_stats.epochs_advanced),
                   harness::human_count(static_cast<double>(
                       trial.garbage().peak_garbage())),
                   harness::fixed(static_cast<double>(r.peak_bytes_mapped) /
                                      (1024.0 * 1024.0),
                                  1)});
    trial.timeline().dump_csv(harness::out_dir() + "fig0609_timeline_" +
                              v.name + ".csv");
    trial.garbage().dump_csv(harness::out_dir() + "fig0609_garbage_" +
                             v.name + ".csv");
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig06to09_token.csv");
  return 0;
}
