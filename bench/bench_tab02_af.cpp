// Table 2: amortized free vs batch free on the JE model at the highest
// thread count: ops/s, objects freed, % free, % flush, % lock, and the
// derived objects-freed-per-second-of-freeing figure. Paper shape: AF frees
// *more* objects in *less* free time (~8x management-overhead improvement)
// and runs ~2.6x faster.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner("Table 2: amortized free vs batch free (JE model)",
                        "PPoPP'24 \"Are Your Epochs Too Epic?\" Table 2",
                        describe(base));

  harness::Table table({"approach", "ops/s", "freed", "%free", "%flush",
                        "%lock", "freed/s-of-freeing"});
  double mops[2] = {0, 0};
  int i = 0;
  for (const char* reclaimer : {"debra", "debra_af"}) {
    harness::TrialConfig cfg = base;
    cfg.reclaimer = reclaimer;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    mops[i++] = r.mops;
    const double free_seconds =
        static_cast<double>(r.alloc_diff.totals.ns_in_free) / 1e9;
    const double freed_rate =
        free_seconds > 0 ? static_cast<double>(r.freed_in_window) /
                               free_seconds
                         : 0;
    table.add_row({std::string("JE ") + (i == 1 ? "batch" : "amort."),
                   harness::human_count(r.mops * 1e6),
                   harness::human_count(
                       static_cast<double>(r.freed_in_window)),
                   harness::fixed(r.pct_free, 1),
                   harness::fixed(r.pct_flush, 1),
                   harness::fixed(r.pct_lock, 1),
                   harness::human_count(freed_rate)});
  }
  table.print();
  table.write_csv(harness::out_dir() + "tab02_af.csv");
  std::printf("\nspeedup (amortized / batch): %.2fx   "
              "(paper: 2.6x at 192 threads)\n",
              mops[0] > 0 ? mops[1] / mops[0] : 0.0);
  return 0;
}
