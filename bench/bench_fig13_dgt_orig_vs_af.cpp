// Supplementary Figure 13: ORIG vs AF thread sweeps on the DGT
// ticket-locking external BST (key range scaled: paper uses 2e6, i.e. a
// tenth of the ABtree's).
#include "bench_common.hpp"

#include "smr/factory.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.ds = "dgt";
  base.keyrange = std::max<std::uint64_t>(64, base.keyrange / 10);
  harness::print_banner(
      "Figure 13: ORIG vs AF across threads, per reclaimer (DGT tree)",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 13", describe(base));

  harness::Table table(
      {"reclaimer", "threads", "ORIG Mops/s", "AF Mops/s", "AF/ORIG"});
  for (const std::string& name : smr::experiment2_reclaimers()) {
    for (int n : default_thread_sweep()) {
      harness::TrialConfig cfg = base;
      cfg.nthreads = n;
      cfg.reclaimer = name;
      const harness::AggregateResult orig = harness::run_trials(cfg);
      cfg.reclaimer = name + "_af";
      const harness::AggregateResult af = harness::run_trials(cfg);
      const double ratio =
          orig.avg_mops > 0 ? af.avg_mops / orig.avg_mops : 0.0;
      table.add_row({name, std::to_string(n),
                     harness::fixed(orig.avg_mops, 2),
                     harness::fixed(af.avg_mops, 2),
                     harness::fixed(ratio, 2) + "x"});
      std::printf("  %-9s threads=%-3d ORIG %7.2f  AF %7.2f  (%.2fx)\n",
                  name.c_str(), n, orig.avg_mops, af.avg_mops, ratio);
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig13_dgt_orig_vs_af.csv");
  return 0;
}
