// Figure 2 (a,b): timeline graphs of time spent freeing limbo-bag batches
// as epochs change (ABtree + DEBRA + JE model), at a moderate and a high
// thread count. Paper shape: at the higher count, reclamation events are
// many times longer than the 2x expected from doubled batch sizes.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.reclaimer = "debra";
  base.enable_timeline = true;
  const auto sweep = default_thread_sweep();
  const int hi = max_threads();
  const int lo = std::max(1, hi / 2);
  harness::print_banner(
      "Figure 2: timelines of batch frees, moderate vs high threads",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 2", describe(base));

  double avg_batch_ns[2] = {0, 0};
  int idx = 0;
  for (int n : {lo, hi}) {
    harness::TrialConfig cfg = base;
    cfg.nthreads = n;
    harness::Trial trial(cfg);
    (void)trial.run();

    std::printf("\n--- %d threads: '#' = freeing a limbo bag, o/| = epoch "
                "advance ---\n",
                n);
    std::fputs(
        trial.timeline().render_ascii(EventKind::kBatchFree, 20, 100).c_str(),
        stdout);
    const std::string csv = harness::out_dir() + "fig02_timeline_" +
                            std::to_string(n) + "t.csv";
    trial.timeline().dump_csv(csv);
    std::printf("CSV: %s\n", csv.c_str());

    // Average batch-free duration: the paper's "events are many times
    // longer than expected" observation, quantified.
    std::uint64_t total_ns = 0;
    std::uint64_t events = 0;
    for (int t = 0; t < n; ++t) {
      for (std::size_t i = 0; i < trial.timeline().event_count(t); ++i) {
        const TimelineEvent& e = trial.timeline().events(t)[i];
        if (e.kind == EventKind::kBatchFree) {
          total_ns += e.t_end - e.t_start;
          ++events;
        }
      }
    }
    avg_batch_ns[idx++] =
        events == 0 ? 0 : static_cast<double>(total_ns) / events;
  }

  std::printf("\navg batch-free duration: %dt = %.0f us, %dt = %.0f us "
              "(ratio %.2fx; >2x indicates the RBF amplification)\n",
              lo, avg_batch_ns[0] / 1e3, hi, avg_batch_ns[1] / 1e3,
              avg_batch_ns[0] > 0 ? avg_batch_ns[1] / avg_batch_ns[0] : 0.0);
  return 0;
}
