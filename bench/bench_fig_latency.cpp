// Tail latency vs free schedule (ROADMAP item 2): the paper's harm —
// batch free can be harmful — is a *tail* phenomenon, so this sweep
// puts p50/p99/p99.9/max next to mops for one base reclaimer under the
// fixed batch schedule (the paper's default), fixed amortized `_af`
// (the paper's fix), `_adaptive` (the population-aware controller) and
// `_latency` (the tail-steered controller: the harness pumps the
// observed p99.9 into the schedule, which backs its drain quantum off
// while the tail overshoots EMR_LATENCY_TARGET_US). The headline shape:
// fixed-batch p99.9 blows up by the whole-bag drain cost while mops
// stays flat — throughput alone cannot see the harm.
//
//   EMR_RECLAIMER         - base reclaimer (suffixes stripped; debra)
//   EMR_LATENCY_TARGET_US - p99.9 target for the _latency rows
//   --json <path>         - mirror the table as JSON (bench_common);
//                           ci/check.sh points this at the committed
//                           BENCH_fig_latency.json snapshot
//
// `bench_fig_latency --smoke` runs a calibrated 8-thread cell on the
// modeled jemalloc (small tcache + remote-free penalty, so one
// whole-bag drain costs ~batch x penalty while an _af op never frees
// more than one flush burst) and fails unless, aggregated over two
// seeds: (a) every run progresses and accounts exactly, (b) fixed-batch
// p99.9 >= 2x the _af p99.9 while their mops differ by < 20%, and
// (c) the _latency schedule holds p99.9 inside 2x its configured
// target — the band an uncontrolled adaptive burst misses.
#include <cstring>

#include "bench_common.hpp"
#include "core/latency.hpp"
#include "smr/factory.hpp"

using namespace emr;
using namespace emr::bench;

namespace {

const char* kSuffixes[] = {"", "_af", "_adaptive", "_latency"};

/// One (reclaimer-name, seed-set) cell: seeds merge into one histogram
/// (percentiles over the union) and mops averages.
struct Cell {
  LatencyHistogram hist;
  // Per-op-kind split (insert/erase/lookup channels): the batch drain
  // rides the erase path — where retire lives — so its tail dwarfs the
  // read-side ones.
  LatencyHistogram ins_hist;
  LatencyHistogram ers_hist;
  LatencyHistogram lkp_hist;
  std::string schedule;
  double mops_sum = 0;
  int runs = 0;
  bool accounted = true;  // ops > 0, pending == 0, empty backlog
  // Hardware-realism metadata (identical across seeds): the effective
  // remote-free penalty, the clock the recorders ran on, the pin mode.
  std::uint64_t penalty_ns = 0;
  std::string clock = "steady";
  std::string pin = "off";

  double mops() const { return runs > 0 ? mops_sum / runs : 0.0; }
  double p999_us() const { return latency_percentile(hist, 0.999) / 1000.0; }
};

constexpr std::uint64_t kSmokeTargetUs = 15;

harness::TrialConfig smoke_config(const std::string& reclaimer) {
  harness::TrialConfig cfg;
  cfg.ds = "dgt";
  cfg.reclaimer = reclaimer;
  cfg.allocator = "je";
  cfg.nthreads = 8;  // the acceptance gate's ">= 8 threads" cell
  cfg.keyrange = 4096;
  cfg.measure_ms = 150;
  cfg.enable_latency = true;
  // The tail gap runs through the modeled remote-free cost: a sealed
  // 128-node bag freed whole inside one op crosses the 32-slot tcache
  // four times, paying ~batch x penalty (~64 us) in that op, while an
  // _af op never pays more than one 16-block flush (~8 us). Batch 128
  // keeps drains frequent enough (one per ~500 merged ops at a ~25%
  // erase-hit rate) to sit above the p99.9 rank.
  cfg.smr.batch_size = 128;
  cfg.smr.epoch_freq = 32;
  cfg.alloc.tcache_cap = 32;
  cfg.alloc.remote_free_penalty_ns = 500;
  // The gates below are tuned to this exact penalty: keep startup
  // calibration from substituting the host's measured cache-line cost.
  cfg.alloc.remote_penalty_explicit = true;
  // A permissive clamp so the _adaptive/_latency quantum is decided by
  // the controllers (ns-per-free cap, tail feedback), not the default
  // drain_max ceiling.
  cfg.smr.drain_max = 256;
  cfg.smr.latency_target_us = kSmokeTargetUs;
  return cfg;
}

Cell run_cell(const std::string& name, const std::uint64_t* seeds,
              int nseeds, harness::Table* table) {
  Cell cell;
  for (int i = 0; i < nseeds; ++i) {
    harness::TrialConfig cfg = smoke_config(name);
    cfg.seed = seeds[i];
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    const bool good = r.ops > 0 && r.lat_ops > 0 &&
                      trial.reclaimer().stats().pending == 0 &&
                      trial.reclaimer().executor().backlog() == 0;
    cell.accounted &= good;
    cell.schedule = trial.schedule().name();
    cell.penalty_ns = r.remote_penalty_ns;
    cell.clock = r.clock_source;
    cell.pin = r.pin_mode;
    cell.hist.add(trial.latency().merged());
    cell.ins_hist.add(trial.latency().merged_channel(harness::Op::kInsert));
    cell.ers_hist.add(trial.latency().merged_channel(harness::Op::kErase));
    cell.lkp_hist.add(trial.latency().merged_channel(harness::Op::kLookup));
    cell.mops_sum += r.mops;
    ++cell.runs;
    std::printf(
        "%-16s sched=%-8s seed=%-4llu ops=%-8llu mops=%-6s p50=%-8s "
        "p99=%-8s p999=%-8s max=%-9s %s\n",
        name.c_str(), trial.schedule().name(),
        static_cast<unsigned long long>(cfg.seed),
        static_cast<unsigned long long>(r.ops),
        harness::fixed(r.mops, 2).c_str(),
        (harness::fixed(r.lat_p50_ns / 1000.0, 1) + "us").c_str(),
        (harness::fixed(r.lat_p99_ns / 1000.0, 1) + "us").c_str(),
        (harness::fixed(r.lat_p999_ns / 1000.0, 1) + "us").c_str(),
        (harness::fixed(static_cast<double>(r.lat_max_ns) / 1000.0, 1) +
         "us")
            .c_str(),
        good ? "ok" : "FAILED");
  }
  if (table != nullptr) {
    const LatencyHistogram& h = cell.hist;
    table->add_row(
        {"8", name, cell.schedule, harness::fixed(cell.mops(), 3),
         harness::fixed(latency_percentile(h, 0.50) / 1000.0, 2),
         harness::fixed(latency_percentile(h, 0.99) / 1000.0, 2),
         harness::fixed(latency_percentile(h, 0.999) / 1000.0, 2),
         harness::fixed(static_cast<double>(h.max_ns) / 1000.0, 2),
         harness::fixed(latency_percentile(cell.ins_hist, 0.999) / 1000.0,
                        2),
         harness::fixed(latency_percentile(cell.ers_hist, 0.999) / 1000.0,
                        2),
         harness::fixed(latency_percentile(cell.lkp_hist, 0.999) / 1000.0,
                        2),
         std::to_string(h.count),
         std::to_string(name.find("_latency") != std::string::npos
                            ? kSmokeTargetUs
                            : 0),
         std::to_string(cell.penalty_ns), cell.clock, cell.pin});
  }
  return cell;
}

int run_smoke(int argc, char** argv) {
  // hp, not debra: the smoke runs 8 workers on however few cores CI
  // offers, and an epoch-consensus scheme barely advances under that
  // oversubscription — its bags defer past the window and the batch
  // tail looks deceptively clean. hp's scan fires locally at the
  // retire-list threshold, so the whole-batch scan+free lands inside a
  // measured op regardless of scheduler interleaving.
  const std::string base = "hp";
  const std::uint64_t kSeeds[] = {42, 1042};
  const int kNumSeeds = 2;
  harness::Table table({"threads", "reclaimer", "schedule", "mops",
                        "p50_us", "p99_us", "p999_us", "max_us",
                        "ins_p999_us", "ers_p999_us", "lkp_p999_us", "ops",
                        "target_us", "penalty_ns", "clock", "pin"});

  Cell cells[4];
  bool ok = true;
  for (int s = 0; s < 4; ++s) {
    cells[s] = run_cell(base + kSuffixes[s], kSeeds, kNumSeeds, &table);
    ok &= cells[s].accounted;
  }

  const double p999_batch = cells[0].p999_us();
  const double p999_af = cells[1].p999_us();
  const double p999_latency = cells[3].p999_us();
  const double mops_batch = cells[0].mops();
  const double mops_af = cells[1].mops();
  std::printf(
      "\nmerged p99.9: batch=%.1fus af=%.1fus adaptive=%.1fus "
      "latency=%.1fus (target %llu us)\n",
      p999_batch, p999_af, cells[2].p999_us(), p999_latency,
      static_cast<unsigned long long>(kSmokeTargetUs));
  std::printf("mops: batch=%.3f af=%.3f (diff %.1f%%)\n", mops_batch,
              mops_af,
              mops_af > 0
                  ? 100.0 * (mops_batch > mops_af ? mops_batch - mops_af
                                                  : mops_af - mops_batch) /
                        mops_af
                  : 0.0);

  // (b) The paper's invisible harm: the whole-bag drains push the tail
  // out by multiples while throughput stays flat.
  if (p999_batch < 2.0 * p999_af) {
    std::printf("FAILED: fixed-batch p99.9 (%.1fus) is not >= 2x the _af "
                "p99.9 (%.1fus)\n",
                p999_batch, p999_af);
    ok = false;
  }
  const double mops_diff =
      mops_batch > mops_af ? mops_batch - mops_af : mops_af - mops_batch;
  if (mops_af <= 0 || mops_diff >= 0.20 * mops_af) {
    std::printf("FAILED: batch vs _af mops differ by >= 20%% "
                "(batch=%.3f af=%.3f) — the tail story must not ride on a "
                "throughput gap\n",
                mops_batch, mops_af);
    ok = false;
  }
  // (c) The tail-steered controller holds its band: within 2x of the
  // configured target (log2 buckets bound the percentile's resolution
  // to a factor of 2, so the band is one bucket of slack).
  if (p999_latency > 2.0 * static_cast<double>(kSmokeTargetUs)) {
    std::printf("FAILED: _latency p99.9 (%.1fus) misses the target band "
                "(<= 2x %llu us)\n",
                p999_latency,
                static_cast<unsigned long long>(kSmokeTargetUs));
    ok = false;
  }

  maybe_write_json(table, json_path_from_args(argc, argv));
  std::printf("bench_fig_latency --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke(argc, argv);
  }

  harness::TrialConfig base = default_config();
  base.enable_latency = true;
  const std::string reclaimer_base =
      smr::reclaimer_base_name(base.reclaimer);
  harness::print_banner(
      "Tail latency: per-op p50/p99/p99.9 vs free schedule",
      "beyond the paper: batch free's harm is a tail phenomenon "
      "(ROADMAP item 2)",
      describe(base) + " reclaimer=" + reclaimer_base +
          " target_us=" + std::to_string(base.smr.latency_target_us));

  harness::Table table({"threads", "reclaimer", "schedule", "mops",
                        "p50_us", "p99_us", "p999_us", "max_us",
                        "ins_p999_us", "ers_p999_us", "lkp_p999_us", "ops",
                        "target_us", "penalty_ns", "clock", "pin"});
  for (int nthreads : default_thread_sweep()) {
    for (const char* suffix : kSuffixes) {
      harness::TrialConfig cfg = base;
      cfg.nthreads = nthreads;
      cfg.reclaimer = reclaimer_base + suffix;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();
      const bool is_latency = std::strcmp(suffix, "_latency") == 0;
      table.add_row({std::to_string(nthreads), cfg.reclaimer,
                     trial.schedule().name(), harness::fixed(r.mops, 3),
                     harness::fixed(r.lat_p50_ns / 1000.0, 2),
                     harness::fixed(r.lat_p99_ns / 1000.0, 2),
                     harness::fixed(r.lat_p999_ns / 1000.0, 2),
                     harness::fixed(
                         static_cast<double>(r.lat_max_ns) / 1000.0, 2),
                     harness::fixed(
                         r.kind_lat[harness::Op::kInsert].p999_ns / 1000.0,
                         2),
                     harness::fixed(
                         r.kind_lat[harness::Op::kErase].p999_ns / 1000.0,
                         2),
                     harness::fixed(
                         r.kind_lat[harness::Op::kLookup].p999_ns / 1000.0,
                         2),
                     std::to_string(r.lat_ops),
                     std::to_string(is_latency ? cfg.smr.latency_target_us
                                               : 0),
                     std::to_string(r.remote_penalty_ns), r.clock_source,
                     r.pin_mode});
      std::printf(
          "  t=%-3d %-16s %7.2f Mops/s  p50=%-8s p99=%-8s p999=%-8s "
          "max=%s\n",
          nthreads, cfg.reclaimer.c_str(), r.mops,
          (harness::fixed(r.lat_p50_ns / 1000.0, 1) + "us").c_str(),
          (harness::fixed(r.lat_p99_ns / 1000.0, 1) + "us").c_str(),
          (harness::fixed(r.lat_p999_ns / 1000.0, 1) + "us").c_str(),
          (harness::fixed(static_cast<double>(r.lat_max_ns) / 1000.0, 1) +
           "us")
              .c_str());
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig_latency.csv");
  std::printf("\nCSV: %sfig_latency.csv\n", harness::out_dir().c_str());
  maybe_write_json(table, json_path_from_args(argc, argv));
  return 0;
}
