// Figure 4: unreclaimed garbage per epoch for batch free (upper) vs
// amortized free (lower), ABtree + DEBRA + JE model. Paper shape: AF
// smooths the peaks while keeping only slightly more garbage on average.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  base.enable_garbage = true;
  harness::print_banner(
      "Figure 4: garbage per epoch, batch free vs amortized free",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 4", describe(base));

  for (const char* reclaimer : {"debra", "debra_af"}) {
    harness::TrialConfig cfg = base;
    cfg.reclaimer = reclaimer;
    harness::Trial trial(cfg);
    (void)trial.run();
    const auto agg = trial.garbage().aggregate();
    std::uint64_t peak = 0;
    double total = 0;
    for (const auto& [epoch, g] : agg) {
      (void)epoch;
      peak = std::max(peak, g);
      total += static_cast<double>(g);
    }
    const double avg = agg.empty() ? 0 : total / static_cast<double>(agg.size());

    std::printf("\n--- %s ---\n", reclaimer);
    std::fputs(trial.garbage().render_ascii(100, 8).c_str(), stdout);
    std::printf("epochs=%zu peak=%llu avg=%.0f (peak/avg %.1fx)\n",
                agg.size(), static_cast<unsigned long long>(peak), avg,
                avg > 0 ? static_cast<double>(peak) / avg : 0.0);
    const std::string csv = harness::out_dir() + "fig04_garbage_" +
                            reclaimer + ".csv";
    trial.garbage().dump_csv(csv);
    std::printf("CSV: %s\n", csv.c_str());
  }
  std::printf("\npaper shape: amortized free substantially reduces the "
              "peaks while the average grows only slightly.\n");
  return 0;
}
