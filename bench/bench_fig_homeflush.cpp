// Home-flush routing figure (docs/FREE_SCHEDULES.md): the asymmetric
// producer/consumer pipeline is the workload where every dequeue-side
// free is foreign (bench_fig_queue), so it is also the workload where
// rerouting those frees back to their owners pays the most. The _hf
// twins push each about-to-be-freed foreign block onto its home lane's
// stash; the owner flushes it locally at FreeSchedule::flush_quota per
// op end. This sweep puts the plain and _hf forms side by side and then
// sweeps EMR_FLUSH_BATCH on the _hf form: remote share and the dequeue
// tail collapse under routing, while an oversized flush batch parks
// dead blocks in the stashes long enough to re-inflate peak garbage —
// the paper's "too epic" trade-off one layer down.
//
//   EMR_RECLAIMER  - base reclaimer (suffixes stripped; debra)
//   EMR_DS         - queue flavor (msqueue | lockedqueue; msqueue)
//   --json <path>  - mirror the table as JSON (bench_common);
//                    ci/check.sh points this at the committed
//                    BENCH_fig_homeflush.json snapshot
//
// `bench_fig_homeflush --smoke` runs calibrated 4+4 pipeline cells
// (scatter pin, modeled jemalloc, explicit 500 ns remote penalty) and
// fails unless, aggregated over two seeds: (a) every run progresses,
// accounts exactly, and — for _hf cells — the stash ledger balances
// (stashed == flushed, zero backlog at teardown) while non-hf cells
// never touch a stash, (b) routing collapses the remote-free share
// (hp_af >= 0.9 foreign, hp_af_hf <= 0.25), and (c) the _hf dequeue
// p99.9 improves on the plain _af one without mops falling below 80%
// of the plain form's (faster is expected — the rerouted frees stop
// paying the penalty).
#include <cstring>

#include "bench_common.hpp"
#include "core/latency.hpp"
#include "ds/queue.hpp"
#include "smr/factory.hpp"

using namespace emr;
using namespace emr::bench;

namespace {

/// One (reclaimer, flush_batch) cell: seeds merge into per-kind
/// histograms, mops averages, allocator counters and the stash ledger
/// sum.
struct Cell {
  LatencyHistogram enq_hist;
  LatencyHistogram deq_hist;
  std::string schedule;
  double mops_sum = 0;
  int runs = 0;
  bool accounted = true;
  std::uint64_t remote_frees = 0;
  std::uint64_t frees = 0;
  std::uint64_t stashed = 0;
  std::uint64_t flushed = 0;
  std::uint64_t stash_backlog_end = 0;
  std::uint64_t peak_garbage = 0;  // max over seeds
  std::uint64_t penalty_ns = 0;
  std::string clock = "steady";
  std::string pin = "off";

  double mops() const { return runs > 0 ? mops_sum / runs : 0.0; }
  double remote_share() const {
    return frees > 0 ? static_cast<double>(remote_frees) /
                           static_cast<double>(frees)
                     : 0.0;
  }
  double deq_p999_us() const {
    return latency_percentile(deq_hist, 0.999) / 1000.0;
  }
};

harness::TrialConfig smoke_config(const std::string& reclaimer,
                                  std::size_t flush_batch) {
  harness::TrialConfig cfg;
  cfg.workload = "pipeline";
  cfg.ds = "msqueue";
  cfg.producers = 4;
  cfg.queue_cap = 8192;
  cfg.reclaimer = reclaimer;
  cfg.allocator = "je";
  cfg.nthreads = 8;
  cfg.measure_ms = 150;
  cfg.enable_latency = true;
  cfg.enable_garbage = true;
  // Scatter pin spreads producers and consumers across the topology so
  // the consumer-side frees are cross-core in the modeled sense too.
  cfg.pin = "scatter";
  // Same modeled-cost calibration as bench_fig_queue: 128-node bags,
  // 32-slot tcaches, and an explicit 500 ns remote penalty the gates
  // below are tuned to (startup calibration must not substitute the
  // host's measured cost).
  cfg.smr.batch_size = 128;
  cfg.smr.epoch_freq = 32;
  cfg.alloc.tcache_cap = 32;
  cfg.alloc.remote_free_penalty_ns = 500;
  cfg.alloc.remote_penalty_explicit = true;
  cfg.smr.drain_max = 256;
  cfg.smr.latency_target_us = 15;
  cfg.smr.flush_batch = flush_batch;
  return cfg;
}

void add_cell_row(const Cell& cell, const harness::TrialConfig& cfg,
                  harness::Table* table) {
  table->add_row(
      {cfg.reclaimer, cell.schedule, std::to_string(cfg.smr.flush_batch),
       std::to_string(cfg.producers), std::to_string(cfg.nthreads), cfg.ds,
       harness::fixed(cell.mops(), 3),
       harness::fixed(latency_percentile(cell.enq_hist, 0.999) / 1000.0, 2),
       harness::fixed(cell.deq_p999_us(), 2),
       harness::fixed(cell.remote_share(), 3),
       std::to_string(cell.stashed), std::to_string(cell.flushed),
       std::to_string(cell.stash_backlog_end),
       std::to_string(cell.peak_garbage), std::to_string(cell.penalty_ns),
       cell.clock, cell.pin});
}

Cell run_cell(const std::string& name, std::size_t flush_batch,
              const std::uint64_t* seeds, int nseeds,
              harness::Table* table) {
  Cell cell;
  harness::TrialConfig cfg;
  const bool hf =
      name.size() > 3 && name.compare(name.size() - 3, 3, "_hf") == 0;
  for (int i = 0; i < nseeds; ++i) {
    cfg = smoke_config(name, flush_batch);
    cfg.seed = seeds[i];
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    // Exact accounting plus the stash ledger: every rerouted block must
    // have left its stash by teardown (r.stashed/r.flushed are read
    // after flush_all), and a non-hf run must never touch the routing
    // layer.
    const bool ledger_ok =
        hf ? (r.stashed == r.flushed && r.stash_backlog_end == 0)
           : (r.stashed == 0 && r.flushed == 0);
    const bool good = r.ops > 0 && r.lat_ops > 0 &&
                      trial.reclaimer().stats().pending == 0 &&
                      trial.reclaimer().executor().backlog() == 0 &&
                      ledger_ok;
    cell.accounted &= good;
    cell.schedule = trial.schedule().name();
    cell.penalty_ns = r.remote_penalty_ns;
    cell.clock = r.clock_source;
    cell.pin = r.pin_mode;
    cell.enq_hist.add(trial.latency().merged_channel(harness::Op::kEnqueue));
    cell.deq_hist.add(trial.latency().merged_channel(harness::Op::kDequeue));
    cell.mops_sum += r.mops;
    cell.remote_frees += r.alloc_diff.totals.n_remote_free;
    cell.frees += r.alloc_diff.totals.n_free;
    cell.stashed += r.stashed;
    cell.flushed += r.flushed;
    cell.stash_backlog_end += r.stash_backlog_end;
    cell.peak_garbage =
        std::max(cell.peak_garbage, trial.garbage().peak_garbage());
    ++cell.runs;
    std::printf(
        "%-16s sched=%-8s fb=%-5llu seed=%-4llu mops=%-6s deq_p999=%-8s "
        "remote=%-5s stashed=%-8llu peak_garbage=%-8llu %s\n",
        name.c_str(), trial.schedule().name(),
        static_cast<unsigned long long>(flush_batch),
        static_cast<unsigned long long>(cfg.seed),
        harness::fixed(r.mops, 2).c_str(),
        (harness::fixed(
             r.kind_lat[harness::Op::kDequeue].p999_ns / 1000.0, 1) +
         "us")
            .c_str(),
        harness::fixed(r.alloc_diff.totals.n_free > 0
                           ? static_cast<double>(
                                 r.alloc_diff.totals.n_remote_free) /
                                 static_cast<double>(
                                     r.alloc_diff.totals.n_free)
                           : 0.0,
                       3)
            .c_str(),
        static_cast<unsigned long long>(r.stashed),
        static_cast<unsigned long long>(trial.garbage().peak_garbage()),
        good ? "ok" : "FAILED");
  }
  if (table != nullptr) add_cell_row(cell, cfg, table);
  return cell;
}

int run_smoke(int argc, char** argv) {
  // hp, not debra, for the same reason as bench_fig_queue: hp's scan
  // fires locally at the retire-list threshold, so the consumer-side
  // frees land inside the window regardless of CI interleaving.
  const std::uint64_t kSeeds[] = {42, 1042};
  const int kNumSeeds = 2;
  harness::Table table(
      {"reclaimer", "schedule", "flush_batch", "producers", "threads",
       "ds", "mops", "enq_p999_us", "deq_p999_us", "remote_share",
       "stashed", "flushed", "stash_backlog_end", "peak_garbage",
       "penalty_ns", "clock", "pin"});

  constexpr std::size_t kDefaultFlush = 64;
  bool ok = true;
  Cell af = run_cell("hp_af", kDefaultFlush, kSeeds, kNumSeeds, &table);
  Cell hf = run_cell("hp_af_hf", kDefaultFlush, kSeeds, kNumSeeds, &table);
  Cell adaptive_hf =
      run_cell("hp_adaptive_hf", kDefaultFlush, kSeeds, kNumSeeds, &table);
  Cell latency_hf =
      run_cell("hp_latency_hf", kDefaultFlush, kSeeds, kNumSeeds, &table);
  // EMR_FLUSH_BATCH sweep on the routed form: a tiny quantum flushes
  // eagerly; an oversized one re-parks garbage in the stashes.
  Cell hf_small = run_cell("hp_af_hf", 16, kSeeds, kNumSeeds, &table);
  Cell hf_huge = run_cell("hp_af_hf", 4096, kSeeds, kNumSeeds, &table);
  ok &= af.accounted && hf.accounted && adaptive_hf.accounted &&
        latency_hf.accounted && hf_small.accounted && hf_huge.accounted;

  std::printf("\nremote-free share: hp_af=%.3f hp_af_hf=%.3f "
              "(adaptive_hf=%.3f latency_hf=%.3f)\n",
              af.remote_share(), hf.remote_share(),
              adaptive_hf.remote_share(), latency_hf.remote_share());
  std::printf("dequeue p99.9: hp_af=%.1fus hp_af_hf=%.1fus (mops %.3f vs "
              "%.3f)\n",
              af.deq_p999_us(), hf.deq_p999_us(), af.mops(), hf.mops());
  std::printf("peak garbage vs flush batch: fb16=%llu fb64=%llu "
              "fb4096=%llu\n",
              static_cast<unsigned long long>(hf_small.peak_garbage),
              static_cast<unsigned long long>(hf.peak_garbage),
              static_cast<unsigned long long>(hf_huge.peak_garbage));

  // (b) Routing is what collapses the foreign-free share: in the 4+4
  // split every consumer-side free is foreign (>= 0.9 — the only local
  // frees are queue-pool effects), and with routing on the owner frees
  // its own blocks back (<= 0.25 leaves room for large-allocation
  // bypass and daemonless edge drains).
  if (af.remote_share() < 0.9) {
    std::printf("FAILED: hp_af remote share (%.3f) below 0.9 — the "
                "asymmetric split is not charging foreign frees\n",
                af.remote_share());
    ok = false;
  }
  if (hf.remote_share() > 0.25) {
    std::printf("FAILED: hp_af_hf remote share (%.3f) above 0.25 — "
                "routing is not bringing frees home\n",
                hf.remote_share());
    ok = false;
  }
  // Routing must actually route: a pipeline window moves hundreds of
  // thousands of nodes, so a near-zero stash count means the layer is
  // disarmed.
  if (hf.stashed < 1000) {
    std::printf("FAILED: hp_af_hf stashed only %llu blocks\n",
                static_cast<unsigned long long>(hf.stashed));
    ok = false;
  }
  // (c) The tail improves without giving up throughput: consumers stop
  // paying the per-block foreign-free penalty inside dequeues. The mops
  // bound is one-sided — rerouting the penalized frees legitimately
  // RAISES throughput (that is the win); what the tail story must not
  // ride on is the routed form quietly doing less work.
  if (hf.deq_p999_us() >= af.deq_p999_us()) {
    std::printf("FAILED: hp_af_hf dequeue p99.9 (%.1fus) does not improve "
                "on hp_af (%.1fus)\n",
                hf.deq_p999_us(), af.deq_p999_us());
    ok = false;
  }
  if (af.mops() <= 0 || hf.mops() < 0.8 * af.mops()) {
    std::printf("FAILED: hp_af_hf mops (%.3f) fell below 80%% of hp_af's "
                "(%.3f) — the tail improvement must not ride on a "
                "throughput loss\n",
                hf.mops(), af.mops());
    ok = false;
  }

  maybe_write_json(table, json_path_from_args(argc, argv));
  std::printf("bench_fig_homeflush --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke(argc, argv);
  }

  harness::TrialConfig base = default_config();
  base.workload = "pipeline";
  base.enable_latency = true;
  base.enable_garbage = true;
  bool is_queue = false;
  for (const std::string& n : ds::queue_names()) is_queue |= (n == base.ds);
  if (!is_queue) base.ds = "msqueue";
  const std::string reclaimer_base =
      smr::reclaimer_base_name(base.reclaimer);
  harness::print_banner(
      "Home-flush routing: foreign frees rerouted to their owners",
      "beyond the paper: per-owner remote-free stashes "
      "(docs/FREE_SCHEDULES.md)",
      describe(base) + " reclaimer=" + reclaimer_base +
          " cap=" + std::to_string(base.queue_cap));

  harness::Table table(
      {"reclaimer", "schedule", "flush_batch", "producers", "threads",
       "ds", "mops", "enq_p999_us", "deq_p999_us", "remote_share",
       "stashed", "flushed", "stash_backlog_end", "peak_garbage",
       "penalty_ns", "clock", "pin"});
  const char* kForms[] = {"_af", "_af_hf", "_adaptive_hf", "_latency_hf"};
  const std::size_t kFlushBatches[] = {16, 64, 1024, 4096};
  for (int nthreads : default_thread_sweep()) {
    const int producers = nthreads / 2;
    if (producers == 0) continue;  // the split needs >= 2 threads
    for (const char* form : kForms) {
      const std::string name = reclaimer_base + form;
      const bool hf = std::strstr(form, "_hf") != nullptr;
      for (const std::size_t fb : kFlushBatches) {
        if (!hf && fb != 64) continue;  // flush_batch is dead weight off
        harness::TrialConfig cfg = base;
        cfg.nthreads = nthreads;
        cfg.producers = producers;
        cfg.reclaimer = name;
        cfg.smr.flush_batch = fb;
        harness::Trial trial(cfg);
        const harness::TrialResult r = trial.run();
        Cell cell;
        cell.schedule = trial.schedule().name();
        cell.penalty_ns = r.remote_penalty_ns;
        cell.clock = r.clock_source;
        cell.pin = r.pin_mode;
        cell.enq_hist.add(
            trial.latency().merged_channel(harness::Op::kEnqueue));
        cell.deq_hist.add(
            trial.latency().merged_channel(harness::Op::kDequeue));
        cell.mops_sum += r.mops;
        cell.remote_frees += r.alloc_diff.totals.n_remote_free;
        cell.frees += r.alloc_diff.totals.n_free;
        cell.stashed += r.stashed;
        cell.flushed += r.flushed;
        cell.stash_backlog_end += r.stash_backlog_end;
        cell.peak_garbage = trial.garbage().peak_garbage();
        ++cell.runs;
        add_cell_row(cell, cfg, &table);
        std::printf(
            "  t=%-3d p=%-2d %-18s fb=%-5llu %7.2f Mops/s deq_p999=%-8s "
            "remote=%.3f stashed=%llu peak_garbage=%llu\n",
            nthreads, producers, cfg.reclaimer.c_str(),
            static_cast<unsigned long long>(fb), r.mops,
            (harness::fixed(
                 r.kind_lat[harness::Op::kDequeue].p999_ns / 1000.0, 1) +
             "us")
                .c_str(),
            cell.remote_share(),
            static_cast<unsigned long long>(r.stashed),
            static_cast<unsigned long long>(cell.peak_garbage));
      }
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig_homeflush.csv");
  std::printf("\nCSV: %sfig_homeflush.csv\n", harness::out_dir().c_str());
  maybe_write_json(table, json_path_from_args(argc, argv));
  return 0;
}
