// google-benchmark micro suite for the ds/ layer: guarded lookup and
// update costs per structure, per reclaimer family.
//
// `bench_micro_ds --smoke` runs a correctness smoke instead: every
// ds name x every base reclaimer name is constructed, driven through a
// randomized op stream cross-checked against std::set, torn down, and
// fails the run if results diverge or any node stays unaccounted (the
// allocator must see exactly as many frees as allocations).
// ci/check.sh runs this after bench_micro_smr --smoke.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "alloc/factory.hpp"
#include "core/rng.hpp"
#include "ds/set.hpp"
#include "smr/factory.hpp"

namespace {

using namespace emr;

struct DsWorld {
  std::unique_ptr<alloc::Allocator> allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;
  std::unique_ptr<ds::ConcurrentSet> set;
  std::vector<smr::ThreadHandle> handles;

  DsWorld(const std::string& ds_name, const std::string& reclaimer,
          std::uint64_t keyrange) {
    cfg.num_threads = 2;
    cfg.batch_size = 64;
    cfg.epoch_freq = 16;
    alloc::AllocConfig acfg;
    acfg.max_threads = static_cast<int>(cfg.slot_capacity());
    allocator = alloc::make_allocator("system", acfg);
    ctx.allocator = allocator.get();
    bundle = smr::make_reclaimer(reclaimer, ctx, cfg);
    ds::SetConfig dcfg;
    dcfg.keyrange = keyrange;
    dcfg.num_threads = 2;
    set = ds::make_set(ds_name, dcfg, bundle.reclaimer.get());
    for (int t = 0; t < cfg.num_threads; ++t) {
      handles.push_back(bundle.reclaimer->register_thread());
    }
  }

  /// Release before the set dies so the teardown slot is free.
  void teardown() {
    handles.clear();
    set.reset();
    bundle.reclaimer->flush_all();
  }

  smr::ThreadHandle& h(int t) { return handles[static_cast<std::size_t>(t)]; }
};

void BM_GuardedContains(benchmark::State& state, const char* ds_name,
                        const char* reclaimer) {
  DsWorld w(ds_name, reclaimer, 4096);
  for (std::uint64_t k = 0; k < 4096; k += 2) w.set->insert(w.h(0), k);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.set->contains(w.h(0), rng.next_range(4096)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_GuardedContains, abtree_debra, "abtree", "debra");
BENCHMARK_CAPTURE(BM_GuardedContains, abtree_hp, "abtree", "hp");
BENCHMARK_CAPTURE(BM_GuardedContains, occtree_debra, "occtree", "debra");
BENCHMARK_CAPTURE(BM_GuardedContains, occtree_hp, "occtree", "hp");
BENCHMARK_CAPTURE(BM_GuardedContains, dgt_debra, "dgt", "debra");
BENCHMARK_CAPTURE(BM_GuardedContains, dgt_hp, "dgt", "hp");
BENCHMARK_CAPTURE(BM_GuardedContains, sharded_debra, "shardedset", "debra");

void BM_UpdateChurn(benchmark::State& state, const char* ds_name,
                    const char* reclaimer) {
  DsWorld w(ds_name, reclaimer, 4096);
  Rng rng(2);
  for (auto _ : state) {
    const std::uint64_t key = rng.next_range(4096);
    w.set->insert(w.h(0), key);
    w.set->erase(w.h(0), key);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_CAPTURE(BM_UpdateChurn, abtree_debra, "abtree", "debra");
BENCHMARK_CAPTURE(BM_UpdateChurn, abtree_ibr, "abtree", "ibr");
BENCHMARK_CAPTURE(BM_UpdateChurn, occtree_debra, "occtree", "debra");
BENCHMARK_CAPTURE(BM_UpdateChurn, dgt_debra, "dgt", "debra");
BENCHMARK_CAPTURE(BM_UpdateChurn, dgt_hp, "dgt", "hp");

// --------------------------------------------------------------- smoke

/// Drives one ds x reclaimer pair through 2000 randomized ops on two
/// interleaved lanes, model-checked against std::set, then verifies the
/// teardown accounting closes. Returns false on any violation.
bool smoke_one(const std::string& ds_name, const std::string& reclaimer) {
  bool model_ok = true;
  std::uint64_t n_alloc = 0;
  std::uint64_t n_free = 0;
  {
    DsWorld w(ds_name, reclaimer, /*keyrange=*/128);
    std::set<std::uint64_t> model;
    Rng rng(11);
    for (int i = 0; i < 2000 && model_ok; ++i) {
      smr::ThreadHandle& h = w.h(i & 1);
      const std::uint64_t key = rng.next_range(128);
      switch (rng.next_range(3)) {
        case 0:
          model_ok = w.set->insert(h, key) == model.insert(key).second;
          break;
        case 1:
          model_ok = w.set->erase(h, key) == (model.erase(key) == 1);
          break;
        default:
          model_ok = w.set->contains(h, key) == (model.count(key) == 1);
          break;
      }
    }
    w.teardown();
    const alloc::AllocStats st = w.allocator->stats();
    n_alloc = st.totals.n_alloc;
    n_free = st.totals.n_free;
  }
  const bool accounted = n_alloc == n_free;
  std::printf("%-11s x %-17s %-7s allocs=%-5llu frees=%-5llu %s\n",
              ds_name.c_str(), reclaimer.c_str(),
              model_ok ? "ok" : "MODEL-DIVERGED",
              static_cast<unsigned long long>(n_alloc),
              static_cast<unsigned long long>(n_free),
              accounted ? "" : "LEAK");
  return model_ok && accounted;
}

int run_smoke() {
  bool ok = true;
  for (const std::string& ds_name : emr::ds::set_names()) {
    for (const std::string& reclaimer : smr::reclaimer_names()) {
      ok &= smoke_one(ds_name, reclaimer);
    }
  }
  std::printf("bench_micro_ds --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
