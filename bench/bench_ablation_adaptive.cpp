// Fixed vs adaptive free scheduling (the FreeSchedule layer's
// ablation): for one base reclaimer, sweep thread counts x churn rates
// x the three schedules — fixed batch (the paper's harmful default),
// fixed amortized `_af` (the paper's fix), and `_adaptive` (the
// population-aware controller that prorates the seal/scan threshold by
// the registered population and scales the per-op drain quantum with
// backlog pressure). Each trial records the schedule-trace timeline
// (executor backlog, drain quantum, population) the harness sampler
// produces, so the table shows not just throughput and peak garbage but
// how hard the controller actually worked.
//
//   EMR_RECLAIMER   - base reclaimer to ablate (suffixes are stripped;
//                     default debra)
//   EMR_CHURN_SWEEP - churn intervals in ms (0 = the no-churn baseline,
//                     always run first)
//   --json <path>   - mirror the table as a JSON array (bench_common)
//
// `bench_ablation_adaptive --smoke` runs a tiny churn trial for every
// Experiment-2 reclaimer in batch, `_af` and `_adaptive` form and fails
// unless (a) every run makes progress and accounts for every retired
// node at teardown, and (b) aggregated over the reclaimer set, the
// adaptive schedule's peak garbage stays within 2x of `_af` while the
// fixed batch schedule remains the worst case — the acceptance shape
// for the adaptive controller.
#include <cstring>

#include "bench_common.hpp"
#include "smr/factory.hpp"

using namespace emr;
using namespace emr::bench;

namespace {

const char* kSuffixes[] = {"", "_af", "_adaptive"};

harness::TrialConfig smoke_config(const std::string& reclaimer) {
  harness::TrialConfig cfg;
  cfg.ds = "dgt";
  cfg.reclaimer = reclaimer;
  cfg.allocator = "je";
  cfg.nthreads = 3;
  cfg.keyrange = 2048;
  // Long enough, with frequent enough departures, that the schedule
  // ordering (batch worst, adaptive ~ af) separates from trial noise:
  // every churn parks the departing lane's bags, which the fixed batch
  // schedule only drains one node per op while the amortizing
  // schedules keep pace.
  cfg.measure_ms = 100;
  cfg.churn_interval_ms = 5;
  cfg.smr.batch_size = 2048;
  cfg.smr.epoch_freq = 32;
  // The batch pathology runs through the remote-free cost (section
  // 3.2): without it, a 2048-node burst is nearly free and the
  // schedule ordering drowns in trial noise. Same stand-in value the
  // bench defaults use.
  cfg.alloc.remote_free_penalty_ns = 300;
  // The schedule-ordering gate is tuned to this penalty: keep startup
  // calibration from substituting the host's measured value.
  cfg.alloc.remote_penalty_explicit = true;
  cfg.enable_garbage = true;
  cfg.enable_schedule_trace = true;
  return cfg;
}

int run_smoke() {
  bool ok = true;
  // Two seeds per (reclaimer, schedule) cell: peak garbage of a single
  // 100 ms trial jitters a few percent, and the schedule ordering below
  // is decided on sums over 10 reclaimers x 2 seeds, which averages
  // that jitter down far enough for the slack margin to be ~3 sigma.
  const std::uint64_t kSeeds[] = {42, 1042};
  std::uint64_t peak_sum[3] = {0, 0, 0};
  for (const std::string& base : smr::experiment2_reclaimers()) {
    for (int s = 0; s < 3; ++s) {
      const std::string name = base + kSuffixes[s];
      for (const std::uint64_t seed : kSeeds) {
        harness::TrialConfig cfg = smoke_config(name);
        cfg.seed = seed;
        harness::Trial trial(cfg);
        const harness::TrialResult r = trial.run();
        const smr::SmrStats st = trial.reclaimer().stats();
        const std::uint64_t backlog =
            trial.reclaimer().executor().backlog();
        const std::uint64_t peak = trial.garbage().peak_garbage();
        peak_sum[s] += peak;
        const bool good = r.ops > 0 && r.threads_churned > 0 &&
                          st.pending == 0 && backlog == 0;
        std::printf(
            "%-16s sched=%-8s seed=%-4llu ops=%-8llu peak_garbage=%-8llu "
            "peak_backlog=%-8llu max_quota=%-3llu %s\n",
            name.c_str(), trial.schedule().name(),
            static_cast<unsigned long long>(seed),
            static_cast<unsigned long long>(r.ops),
            static_cast<unsigned long long>(peak),
            static_cast<unsigned long long>(r.peak_backlog),
            static_cast<unsigned long long>(r.max_drain_quota),
            good ? "ok" : "FAILED");
        ok &= good;
      }
    }
  }

  // Acceptance shape, on the aggregated peaks: adaptive within 2x of
  // _af, and fixed batch worst up to a 10% noise allowance — a genuine
  // regression (a schedule piling garbage) overshoots that by
  // multiples and trips the 2x bound as well.
  const std::uint64_t batch = peak_sum[0], af = peak_sum[1],
                      adaptive = peak_sum[2];
  std::printf("\npeak garbage sums: batch=%llu af=%llu adaptive=%llu\n",
              static_cast<unsigned long long>(batch),
              static_cast<unsigned long long>(af),
              static_cast<unsigned long long>(adaptive));
  if (adaptive > 2 * std::max<std::uint64_t>(af, 1)) {
    std::printf("FAILED: adaptive peak garbage exceeds 2x the _af "
                "schedule\n");
    ok = false;
  }
  const std::uint64_t batch_slack = batch + batch / 10;
  if (batch_slack < af || batch_slack < adaptive) {
    std::printf("FAILED: fixed batch is no longer the worst case\n");
    ok = false;
  }
  std::printf("bench_ablation_adaptive --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  harness::TrialConfig base = default_config();
  base.nthreads = std::max(base.nthreads, 2);
  base.enable_garbage = true;
  base.enable_schedule_trace = true;
  const std::string reclaimer_base =
      smr::reclaimer_base_name(base.reclaimer);
  harness::print_banner(
      "Ablation: fixed vs adaptive free schedules",
      "beyond the paper: population-aware batching (FreeSchedule layer)",
      describe(base) + " reclaimer=" + reclaimer_base);

  std::vector<int> churn_sweep = env_int_list("EMR_CHURN_SWEEP");
  if (churn_sweep.empty()) churn_sweep = {20};
  churn_sweep.insert(churn_sweep.begin(), 0);

  harness::Table table({"threads", "churn_ms", "reclaimer", "schedule",
                        "Mops/s", "peak_garbage", "peak_backlog",
                        "max_quota"});
  for (int nthreads : default_thread_sweep()) {
    if (nthreads < 2) continue;  // churn rows need a survivor
    for (int churn_ms : churn_sweep) {
      for (const char* suffix : kSuffixes) {
        harness::TrialConfig cfg = base;
        cfg.nthreads = nthreads;
        cfg.reclaimer = reclaimer_base + suffix;
        cfg.churn_interval_ms = churn_ms;
        harness::Trial trial(cfg);
        const harness::TrialResult r = trial.run();
        const std::uint64_t peak = trial.garbage().peak_garbage();
        table.add_row({std::to_string(nthreads), std::to_string(churn_ms),
                       cfg.reclaimer, trial.schedule().name(),
                       harness::fixed(r.mops, 2), std::to_string(peak),
                       std::to_string(r.peak_backlog),
                       std::to_string(r.max_drain_quota)});
        std::printf(
            "  t=%-3d churn=%-3dms %-16s %7.2f Mops/s  peak_garbage=%-8s "
            "peak_backlog=%-8s max_quota=%llu\n",
            nthreads, churn_ms, cfg.reclaimer.c_str(), r.mops,
            harness::human_count(static_cast<double>(peak)).c_str(),
            harness::human_count(static_cast<double>(r.peak_backlog))
                .c_str(),
            static_cast<unsigned long long>(r.max_drain_quota));
      }
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "ablation_adaptive.csv");
  std::printf("\nCSV: %sablation_adaptive.csv\n", harness::out_dir().c_str());
  maybe_write_json(table, json_path_from_args(argc, argv));
  return 0;
}
