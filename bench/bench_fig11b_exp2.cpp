// Figure 11b (Experiment 2): ORIG vs AF versions of all ten reclamation
// algorithms at the highest thread count, uniform batch size (paper: 32K).
// Paper shape: AF improves nine of ten algorithms (up to 2.3x; hp/wfe
// ~1.2x; he roughly unchanged).
#include "bench_common.hpp"

#include "smr/factory.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner(
      "Figure 11b / Experiment 2: ORIG vs AF for ten reclaimers",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 11b", describe(base));

  harness::Table table({"reclaimer", "ORIG Mops/s", "AF Mops/s", "AF/ORIG"});
  int improved = 0;
  for (const std::string& base_name : smr::experiment2_reclaimers()) {
    harness::TrialConfig cfg = base;
    cfg.reclaimer = base_name;
    const harness::AggregateResult orig = harness::run_trials(cfg);
    cfg.reclaimer = base_name + "_af";
    const harness::AggregateResult af = harness::run_trials(cfg);
    const double ratio =
        orig.avg_mops > 0 ? af.avg_mops / orig.avg_mops : 0.0;
    if (ratio > 1.0) ++improved;
    table.add_row({base_name, harness::fixed(orig.avg_mops, 2),
                   harness::fixed(af.avg_mops, 2),
                   harness::fixed(ratio, 2) + "x"});
    std::printf("  %-9s ORIG %7.2f  AF %7.2f  (%.2fx)\n", base_name.c_str(),
                orig.avg_mops, af.avg_mops, ratio);
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig11b_exp2.csv");
  std::printf("\n%d of 10 algorithms improved by AF "
              "(paper: 9 of 10, up to 2.3x)\n",
              improved);
  return 0;
}
