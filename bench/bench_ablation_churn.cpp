// Thread-churn ablation (the scenario the ThreadHandle redesign
// unlocks): throughput and peak unreclaimed garbage vs churn rate, for
// batched vs asynchronous (_af) free schedules. The paper's batch-free
// pathologies assume a fixed population; with churn a worker
// deregisters every interval and a fresh thread takes its lane, so the
// run shows (a) that no scheme leaks or stalls when readers depart and
// (b) how the batched schedules' garbage spikes interact with the
// registration hand-off, while _af keeps draining per-op.
//
//   EMR_CHURN_SWEEP - churn intervals in ms, e.g. "50 20 10" (0 = the
//                     no-churn baseline and is always run first)
//   --json <path>   - mirror the table as a JSON array (bench_common)
//
// `bench_ablation_churn --smoke` instead runs a tiny churn trial for
// every Experiment-2 reclaimer (each family: ebr, token, hp, era, nbr)
// in both its batched and _af form and fails unless every run makes
// progress under churn and accounts for every retired node afterwards
// (pending == 0 and an empty executor backlog once the trial tears
// down) — the departed-thread guarantees of the handle API.
#include <cstring>

#include "bench_common.hpp"
#include "smr/factory.hpp"

using namespace emr;
using namespace emr::bench;

namespace {

int run_smoke() {
  bool ok = true;
  for (const std::string& base : smr::experiment2_reclaimers()) {
    for (const std::string& suffix : {std::string(), std::string("_af")}) {
      const std::string name = base + suffix;
      harness::TrialConfig cfg;
      cfg.ds = "dgt";
      cfg.reclaimer = name;
      cfg.allocator = "je";
      cfg.nthreads = 3;
      cfg.keyrange = 2048;
      cfg.measure_ms = 60;
      cfg.churn_interval_ms = 10;
      cfg.smr.batch_size = 256;
      cfg.smr.epoch_freq = 32;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();
      const smr::SmrStats st = trial.reclaimer().stats();
      const std::uint64_t backlog = trial.reclaimer().executor().backlog();
      const bool good = r.ops > 0 && r.threads_churned > 0 &&
                        st.pending == 0 && backlog == 0;
      std::printf(
          "%-12s ops=%-8llu churned=%-3llu pending=%-4llu backlog=%-4llu "
          "%s\n",
          name.c_str(), static_cast<unsigned long long>(r.ops),
          static_cast<unsigned long long>(r.threads_churned),
          static_cast<unsigned long long>(st.pending),
          static_cast<unsigned long long>(backlog), good ? "ok" : "FAILED");
      ok &= good;
    }
  }
  std::printf("bench_ablation_churn --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  harness::TrialConfig base = default_config();
  base.nthreads = std::max(base.nthreads, 2);  // churn needs a survivor
  base.enable_garbage = true;
  harness::print_banner(
      "Ablation: thread churn vs free schedule",
      "beyond the paper: batch-free harm under a dynamic population",
      describe(base));

  // env_int_list drops non-positive tokens, so the no-churn baseline is
  // prepended here rather than spelled in EMR_CHURN_SWEEP.
  std::vector<int> sweep = env_int_list("EMR_CHURN_SWEEP");
  if (sweep.empty()) sweep = {50, 20, 10};
  sweep.insert(sweep.begin(), 0);

  const char* kReclaimers[] = {"debra", "debra_af", "token", "token_af",
                               "hp",    "hp_af",    "ibr",   "ibr_af",
                               "nbr",   "nbr_af"};

  harness::Table table({"churn_ms", "reclaimer", "Mops/s", "churned",
                        "peak_garbage", "freed_in_window"});
  for (int churn_ms : sweep) {
    for (const char* reclaimer : kReclaimers) {
      harness::TrialConfig cfg = base;
      cfg.reclaimer = reclaimer;
      cfg.churn_interval_ms = churn_ms;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();
      const std::uint64_t peak = trial.garbage().peak_garbage();
      table.add_row({std::to_string(churn_ms), reclaimer,
                     harness::fixed(r.mops, 2),
                     std::to_string(r.threads_churned),
                     std::to_string(peak),
                     std::to_string(r.freed_in_window)});
      std::printf(
          "  churn=%-3dms %-9s %7.2f Mops/s  churned=%-3llu peak_garbage=%s\n",
          churn_ms, reclaimer, r.mops,
          static_cast<unsigned long long>(r.threads_churned),
          harness::human_count(static_cast<double>(peak)).c_str());
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "ablation_churn.csv");
  std::printf("\nCSV: %sablation_churn.csv\n", harness::out_dir().c_str());
  maybe_write_json(table, json_path_from_args(argc, argv));
  return 0;
}
