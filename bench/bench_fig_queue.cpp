// Queue pipeline figure (ROADMAP items 3+4): the paper's remote-free
// cost needs an *asymmetric* producer/consumer split to actually get
// charged. A symmetric MPMC trial (every worker alternates enqueue and
// dequeue) recycles queue nodes through each worker's own tcache, so
// the modeled allocator's foreign-flush penalty rarely fires; split the
// same workers into producers on one end of the EMR_PIN layout and
// consumers on the other and every dequeued node is freed by a thread
// that never allocates — the consumer tcaches overflow continuously and
// each flush returns foreign blocks to their owners' arenas at the
// measured remote-free cost. This sweep puts the two layouts side by
// side for one base reclaimer under the fixed batch schedule, `_af`,
// `_adaptive` and `_latency`, reporting per-op-kind tails (enqueue and
// dequeue separately — batch drains ride the dequeue path, where retire
// happens) and the remote-free share that tells the layouts apart.
//
//   EMR_RECLAIMER  - base reclaimer (suffixes stripped; debra)
//   EMR_DS         - queue flavor (msqueue | lockedqueue; msqueue)
//   --json <path>  - mirror the table as JSON (bench_common);
//                    ci/check.sh points this at the committed
//                    BENCH_fig_queue.json snapshot
//
// `bench_fig_queue --smoke` runs calibrated 8-thread cells (4+4 split
// in the asymmetric layout) on the modeled jemalloc and fails unless,
// aggregated over two seeds: (a) every run progresses and accounts
// exactly, (b) the asymmetric layout charges a higher remote-free
// share than the symmetric one, and (c) in the asymmetric layout the
// fixed-batch dequeue p99.9 is >= 2x the _af dequeue p99.9 while their
// mops stay comparable — the same invisible-harm shape as
// bench_fig_latency, now driven by the role split.
#include <cstring>

#include "bench_common.hpp"
#include "core/latency.hpp"
#include "ds/queue.hpp"
#include "smr/factory.hpp"

using namespace emr;
using namespace emr::bench;

namespace {

const char* kSuffixes[] = {"", "_af", "_adaptive", "_latency"};

/// One (layout, schedule) cell: seeds merge into per-kind histograms
/// (percentiles over the union), mops averages, allocator counters sum.
struct Cell {
  LatencyHistogram enq_hist;
  LatencyHistogram deq_hist;
  std::string schedule;
  double mops_sum = 0;
  int runs = 0;
  bool accounted = true;  // ops > 0, pending == 0, empty backlog
  std::uint64_t remote_frees = 0;
  std::uint64_t frees = 0;
  std::uint64_t penalty_ns = 0;
  std::string clock = "steady";
  std::string pin = "off";

  double mops() const { return runs > 0 ? mops_sum / runs : 0.0; }
  double remote_share() const {
    return frees > 0 ? static_cast<double>(remote_frees) /
                           static_cast<double>(frees)
                     : 0.0;
  }
  double deq_p999_us() const {
    return latency_percentile(deq_hist, 0.999) / 1000.0;
  }
};

harness::TrialConfig smoke_config(const std::string& reclaimer,
                                  int producers) {
  harness::TrialConfig cfg;
  cfg.workload = "pipeline";
  cfg.ds = "msqueue";
  cfg.producers = producers;
  // Bound the queue so a producer burst can't balloon the live set: at
  // 8192 nodes a full producer side just yields until consumers catch
  // up, which is the backpressure a real pipeline stage would see.
  cfg.queue_cap = 8192;
  cfg.reclaimer = reclaimer;
  cfg.allocator = "je";
  cfg.nthreads = 8;  // asymmetric cells split this 4+4
  cfg.measure_ms = 150;
  cfg.enable_latency = true;
  // Same modeled-cost calibration as bench_fig_latency: a sealed
  // 128-node bag freed whole inside one dequeue crosses the 32-slot
  // tcache four times, paying ~batch x penalty (~64 us) in that op,
  // while an _af dequeue never pays more than one flush burst.
  cfg.smr.batch_size = 128;
  cfg.smr.epoch_freq = 32;
  cfg.alloc.tcache_cap = 32;
  cfg.alloc.remote_free_penalty_ns = 500;
  // The gates below are tuned to this exact penalty: keep startup
  // calibration from substituting the host's measured cache-line cost.
  cfg.alloc.remote_penalty_explicit = true;
  cfg.smr.drain_max = 256;
  cfg.smr.latency_target_us = 15;
  return cfg;
}

const char* layout_name(int producers) {
  return producers > 0 ? "asym" : "sym";
}

void add_cell_row(const Cell& cell, const harness::TrialConfig& cfg,
                  harness::Table* table) {
  table->add_row(
      {layout_name(cfg.producers), std::to_string(cfg.producers),
       std::to_string(cfg.nthreads), cfg.ds, cfg.reclaimer, cell.schedule,
       harness::fixed(cell.mops(), 3),
       harness::fixed(latency_percentile(cell.enq_hist, 0.999) / 1000.0, 2),
       harness::fixed(latency_percentile(cell.deq_hist, 0.999) / 1000.0, 2),
       harness::fixed(cell.remote_share(), 3),
       std::to_string(cell.enq_hist.count),
       std::to_string(cell.deq_hist.count), std::to_string(cell.penalty_ns),
       cell.clock, cell.pin});
}

Cell run_cell(const std::string& name, int producers,
              const std::uint64_t* seeds, int nseeds,
              harness::Table* table) {
  Cell cell;
  harness::TrialConfig cfg;
  for (int i = 0; i < nseeds; ++i) {
    cfg = smoke_config(name, producers);
    cfg.seed = seeds[i];
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    const bool good = r.ops > 0 && r.lat_ops > 0 &&
                      trial.reclaimer().stats().pending == 0 &&
                      trial.reclaimer().executor().backlog() == 0;
    cell.accounted &= good;
    cell.schedule = trial.schedule().name();
    cell.penalty_ns = r.remote_penalty_ns;
    cell.clock = r.clock_source;
    cell.pin = r.pin_mode;
    cell.enq_hist.add(trial.latency().merged_channel(harness::Op::kEnqueue));
    cell.deq_hist.add(trial.latency().merged_channel(harness::Op::kDequeue));
    cell.mops_sum += r.mops;
    cell.remote_frees += r.alloc_diff.totals.n_remote_free;
    cell.frees += r.alloc_diff.totals.n_free;
    ++cell.runs;
    std::printf(
        "%-5s %-14s sched=%-8s seed=%-4llu ops=%-8llu mops=%-6s "
        "enq_p999=%-8s deq_p999=%-8s remote=%-5s %s\n",
        layout_name(producers), name.c_str(), trial.schedule().name(),
        static_cast<unsigned long long>(cfg.seed),
        static_cast<unsigned long long>(r.ops),
        harness::fixed(r.mops, 2).c_str(),
        (harness::fixed(
             r.kind_lat[harness::Op::kEnqueue].p999_ns / 1000.0, 1) +
         "us")
            .c_str(),
        (harness::fixed(
             r.kind_lat[harness::Op::kDequeue].p999_ns / 1000.0, 1) +
         "us")
            .c_str(),
        harness::fixed(r.alloc_diff.totals.n_free > 0
                           ? static_cast<double>(
                                 r.alloc_diff.totals.n_remote_free) /
                                 static_cast<double>(
                                     r.alloc_diff.totals.n_free)
                           : 0.0,
                       3)
            .c_str(),
        good ? "ok" : "FAILED");
  }
  if (table != nullptr) add_cell_row(cell, cfg, table);
  return cell;
}

int run_smoke(int argc, char** argv) {
  // hp, not debra, for the same reason as bench_fig_latency: under CI
  // oversubscription an epoch scheme's bags defer past the window; hp's
  // scan fires locally at the retire-list threshold, so the whole-batch
  // free lands inside a measured dequeue regardless of interleaving.
  const std::string base = "hp";
  const std::uint64_t kSeeds[] = {42, 1042};
  const int kNumSeeds = 2;
  harness::Table table(
      {"layout", "producers", "threads", "ds", "reclaimer", "schedule",
       "mops", "enq_p999_us", "deq_p999_us", "remote_share", "enq_ops",
       "deq_ops", "penalty_ns", "clock", "pin"});

  // layout x schedule: sym rows first, then asym, so the table reads as
  // two blocks.
  Cell sym[4];
  Cell asym[4];
  bool ok = true;
  for (int s = 0; s < 4; ++s) {
    sym[s] = run_cell(base + kSuffixes[s], 0, kSeeds, kNumSeeds, &table);
    ok &= sym[s].accounted;
  }
  for (int s = 0; s < 4; ++s) {
    asym[s] = run_cell(base + kSuffixes[s], 4, kSeeds, kNumSeeds, &table);
    ok &= asym[s].accounted;
  }

  std::printf("\nremote-free share (batch schedule): sym=%.3f asym=%.3f\n",
              sym[0].remote_share(), asym[0].remote_share());
  std::printf("asym dequeue p99.9: batch=%.1fus af=%.1fus (mops %.3f vs "
              "%.3f)\n",
              asym[0].deq_p999_us(), asym[1].deq_p999_us(), asym[0].mops(),
              asym[1].mops());

  // (b) The role split is what charges the remote-free cost: symmetric
  // workers re-own freed nodes through their own tcache (only the
  // cross-worker dequeues count remote), while consumer-side frees are
  // foreign essentially always. The margin is the symmetric layout's
  // own-tcache hit rate, ~1/nthreads, so 0.05 is conservative at 8
  // threads.
  for (int s = 0; s < 4; ++s) {
    if (asym[s].remote_share() < sym[s].remote_share() + 0.05) {
      std::printf("FAILED: %s%s asym remote share (%.3f) is not above the "
                  "sym share (%.3f) by 0.05\n",
                  base.c_str(), kSuffixes[s], asym[s].remote_share(),
                  sym[s].remote_share());
      ok = false;
    }
  }
  // (c) Same invisible harm as the set workload, now on the dequeue
  // path where retire lives: whole-bag drains push the consumer tail
  // out by multiples while throughput stays flat.
  const double deq_batch = asym[0].deq_p999_us();
  const double deq_af = asym[1].deq_p999_us();
  if (deq_batch < 2.0 * deq_af) {
    std::printf("FAILED: asym fixed-batch dequeue p99.9 (%.1fus) is not "
                ">= 2x the _af dequeue p99.9 (%.1fus)\n",
                deq_batch, deq_af);
    ok = false;
  }
  const double mops_batch = asym[0].mops();
  const double mops_af = asym[1].mops();
  const double mops_diff =
      mops_batch > mops_af ? mops_batch - mops_af : mops_af - mops_batch;
  if (mops_af <= 0 || mops_diff >= 0.25 * mops_af) {
    std::printf("FAILED: asym batch vs _af mops differ by >= 25%% "
                "(batch=%.3f af=%.3f) — the tail story must not ride on a "
                "throughput gap\n",
                mops_batch, mops_af);
    ok = false;
  }

  maybe_write_json(table, json_path_from_args(argc, argv));
  std::printf("bench_fig_queue --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke(argc, argv);
  }

  harness::TrialConfig base = default_config();
  base.workload = "pipeline";
  base.enable_latency = true;
  // default_config's EMR_DS default is a set; only keep it when the
  // user pointed it at an actual queue flavor.
  bool is_queue = false;
  for (const std::string& n : ds::queue_names()) is_queue |= (n == base.ds);
  if (!is_queue) base.ds = "msqueue";
  const std::string reclaimer_base =
      smr::reclaimer_base_name(base.reclaimer);
  harness::print_banner(
      "Queue pipeline: symmetric vs asymmetric producer/consumer split",
      "beyond the paper: the remote-free cost needs a role split to get "
      "charged (ROADMAP items 3+4)",
      describe(base) + " reclaimer=" + reclaimer_base +
          " cap=" + std::to_string(base.queue_cap));

  harness::Table table(
      {"layout", "producers", "threads", "ds", "reclaimer", "schedule",
       "mops", "enq_p999_us", "deq_p999_us", "remote_share", "enq_ops",
       "deq_ops", "penalty_ns", "clock", "pin"});
  for (int nthreads : default_thread_sweep()) {
    for (int split = 0; split < 2; ++split) {
      const int producers = split == 0 ? 0 : nthreads / 2;
      if (split == 1 && producers == 0) continue;  // needs >= 2 threads
      for (const char* suffix : kSuffixes) {
        harness::TrialConfig cfg = base;
        cfg.nthreads = nthreads;
        cfg.producers = producers;
        cfg.reclaimer = reclaimer_base + suffix;
        harness::Trial trial(cfg);
        const harness::TrialResult r = trial.run();
        Cell cell;
        cell.schedule = trial.schedule().name();
        cell.penalty_ns = r.remote_penalty_ns;
        cell.clock = r.clock_source;
        cell.pin = r.pin_mode;
        cell.enq_hist.add(
            trial.latency().merged_channel(harness::Op::kEnqueue));
        cell.deq_hist.add(
            trial.latency().merged_channel(harness::Op::kDequeue));
        cell.mops_sum += r.mops;
        cell.remote_frees += r.alloc_diff.totals.n_remote_free;
        cell.frees += r.alloc_diff.totals.n_free;
        ++cell.runs;
        add_cell_row(cell, cfg, &table);
        std::printf(
            "  t=%-3d %-5s p=%-2d %-16s %7.2f Mops/s  enq_p999=%-8s "
            "deq_p999=%-8s remote=%.3f\n",
            nthreads, layout_name(producers), producers,
            cfg.reclaimer.c_str(), r.mops,
            (harness::fixed(
                 r.kind_lat[harness::Op::kEnqueue].p999_ns / 1000.0, 1) +
             "us")
                .c_str(),
            (harness::fixed(
                 r.kind_lat[harness::Op::kDequeue].p999_ns / 1000.0, 1) +
             "us")
                .c_str(),
            cell.remote_share());
      }
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig_queue.csv");
  std::printf("\nCSV: %sfig_queue.csv\n", harness::out_dir().c_str());
  maybe_write_json(table, json_path_from_args(argc, argv));
  return 0;
}
