// Extension ablation: batch free vs amortized free vs object pooling (the
// optimization §3.3 declines and footnote 4 credits for VBR's results).
// Expected: pooling ≥ AF ≥ batch — pooling avoids most allocator
// interaction altogether, while AF makes that interaction fast.
#include "bench_common.hpp"

#include "smr/pooling_executor.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner(
      "Ablation: batch vs amortized vs pooling free (extension)",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" section 3.3 + footnote 4",
      describe(base));

  harness::Table table({"policy", "Mops/s", "%free", "%lock",
                        "allocator_allocs", "pooled_allocs"});
  for (const char* reclaimer : {"debra", "debra_af", "debra_pool",
                                "token", "token_af", "token_pool"}) {
    harness::TrialConfig cfg = base;
    cfg.reclaimer = reclaimer;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    std::uint64_t pooled = 0;
    if (auto* pool = dynamic_cast<smr::PoolingFreeExecutor*>(
            &trial.reclaimer().executor())) {
      pooled = pool->total_pooled_allocs();
    }
    table.add_row({reclaimer, harness::fixed(r.mops, 2),
                   harness::fixed(r.pct_free, 1),
                   harness::fixed(r.pct_lock, 1),
                   harness::human_count(static_cast<double>(
                       r.alloc_diff.totals.n_alloc)),
                   harness::human_count(static_cast<double>(pooled))});
  }
  table.print();
  table.write_csv(harness::out_dir() + "ablation_pooling.csv");
  std::printf("\nexpected: pooling serves most node allocations from the "
              "freeable list (paper footnote 4: why VBR beats allocator-"
              "bound EBRs).\n");
  return 0;
}
