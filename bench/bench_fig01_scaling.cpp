// Figure 1 (a-d): throughput and peak memory vs thread count for the
// ABtree and OCCtree, with DEBRA (upper) vs leaking memory (lower).
// Paper shape: both trees scale to moderate thread counts; with DEBRA the
// ABtree flattens at high thread counts while the OCCtree keeps scaling;
// leaking closes the gap (at a large peak-memory cost for the ABtree).
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  const auto sweep = default_thread_sweep();
  harness::print_banner("Figure 1: ABtree vs OCCtree, DEBRA vs leak",
                        "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 1",
                        describe(base));

  harness::Table table({"threads", "ds", "reclaimer", "Mops/s", "min", "max",
                        "peak_MiB"});
  for (const char* reclaimer : {"debra", "none"}) {
    for (const char* ds : {"abtree", "occtree"}) {
      for (int n : sweep) {
        harness::TrialConfig cfg = base;
        cfg.ds = ds;
        cfg.reclaimer = reclaimer;
        cfg.nthreads = n;
        const harness::AggregateResult r = harness::run_trials(cfg);
        table.add_row({std::to_string(n), ds, reclaimer,
                       harness::fixed(r.avg_mops, 2),
                       harness::fixed(r.min_mops, 2),
                       harness::fixed(r.max_mops, 2),
                       harness::fixed(r.avg_peak_mib, 1)});
        std::printf("  threads=%-3d %-8s %-6s  %7.2f Mops/s  peak %.1f MiB\n",
                    n, ds, reclaimer, r.avg_mops, r.avg_peak_mib);
      }
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig01_scaling.csv");
  std::printf("\nCSV: %sfig01_scaling.csv\n",
              harness::out_dir().c_str());
  return 0;
}
