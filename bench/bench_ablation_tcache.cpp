// Ablation: jemalloc-model thread-cache capacity and flush fraction — the
// two knobs of the mechanism behind the RBF problem (§3.2). Larger caches
// absorb bigger batches before a flush; smaller flush fractions keep more
// objects for local reuse.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  base.reclaimer = "debra";
  harness::print_banner(
      "Ablation: tcache capacity and flush fraction (JE model, batch free)",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" section 3.2 mechanism",
      describe(base));

  harness::Table table({"tcache_cap", "flush_frac", "Mops/s", "%flush",
                        "%lock", "flushes"});
  for (const std::size_t cap : {32, 128, 512}) {
    for (const double frac : {0.25, 0.75}) {
      harness::TrialConfig cfg = base;
      cfg.alloc.tcache_cap = cap;
      cfg.alloc.flush_fraction = frac;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();
      table.add_row({std::to_string(cap), harness::fixed(frac, 2),
                     harness::fixed(r.mops, 2),
                     harness::fixed(r.pct_flush, 1),
                     harness::fixed(r.pct_lock, 1),
                     std::to_string(r.alloc_diff.totals.n_flush)});
    }
  }
  table.print();
  table.write_csv(harness::out_dir() + "ablation_tcache.csv");
  return 0;
}
