// google-benchmark micro suite for reclaimer primitives: begin/end op
// overhead per algorithm and the retire-to-free pipeline cost.
//
// `bench_micro_smr --smoke` runs a correctness smoke instead: every
// factory name (all bases x batch/_af/_pool schedules) is constructed
// and driven through an alloc/protect/retire/flush cycle, accounting is
// checked, and the run fails if any pointer-protecting name reports the
// "ebr" implementation family — i.e. if it quietly fell back to epoch
// aliasing. ci/check.sh runs this after the unit suites.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/factory.hpp"
#include "smr/factory.hpp"

namespace {

using namespace emr;

struct MicroWorld {
  std::unique_ptr<alloc::Allocator> allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;
  std::vector<smr::ThreadHandle> handles;

  explicit MicroWorld(const std::string& name) {
    cfg.num_threads = 2;
    cfg.batch_size = 256;
    alloc::AllocConfig acfg;
    acfg.max_threads = static_cast<int>(cfg.slot_capacity());
    allocator = alloc::make_allocator("je", acfg);
    ctx.allocator = allocator.get();
    bundle = smr::make_reclaimer(name, ctx, cfg);
    // The single-threaded bench loops multiplex both lanes' handles.
    for (int t = 0; t < cfg.num_threads; ++t) {
      handles.push_back(bundle.reclaimer->register_thread());
    }
  }

  smr::ThreadHandle& h(int t) { return handles[static_cast<std::size_t>(t)]; }
};

void* load_ptr(const void* s) {
  return static_cast<const std::atomic<void*>*>(s)->load(
      std::memory_order_acquire);
}

void BM_BeginEndOp(benchmark::State& state, const char* name) {
  MicroWorld w(name);
  smr::Reclaimer& r = *w.bundle.reclaimer;
  for (auto _ : state) {
    r.begin_op(w.h(0));
    r.end_op(w.h(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_BeginEndOp, none, "none");
BENCHMARK_CAPTURE(BM_BeginEndOp, debra, "debra");
BENCHMARK_CAPTURE(BM_BeginEndOp, qsbr, "qsbr");
BENCHMARK_CAPTURE(BM_BeginEndOp, rcu, "rcu");
BENCHMARK_CAPTURE(BM_BeginEndOp, token, "token");
BENCHMARK_CAPTURE(BM_BeginEndOp, hp, "hp");
BENCHMARK_CAPTURE(BM_BeginEndOp, he, "he");
BENCHMARK_CAPTURE(BM_BeginEndOp, ibr, "ibr");
BENCHMARK_CAPTURE(BM_BeginEndOp, wfe, "wfe");
BENCHMARK_CAPTURE(BM_BeginEndOp, nbr, "nbr");
BENCHMARK_CAPTURE(BM_BeginEndOp, nbrplus, "nbrplus");

void BM_ProtectLoad(benchmark::State& state, const char* name) {
  MicroWorld w(name);
  smr::Reclaimer& r = *w.bundle.reclaimer;
  void* node = r.alloc_node(w.h(0), 64);
  std::atomic<void*> src{node};
  r.begin_op(w.h(0));
  for (auto _ : state) {
    void* p = r.protect(w.h(0), 0, load_ptr, &src);
    benchmark::DoNotOptimize(p);
  }
  r.end_op(w.h(0));
  r.dealloc_unpublished(w.h(0), node);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ProtectLoad, debra, "debra");
BENCHMARK_CAPTURE(BM_ProtectLoad, hp, "hp");
BENCHMARK_CAPTURE(BM_ProtectLoad, he, "he");
BENCHMARK_CAPTURE(BM_ProtectLoad, ibr, "ibr");
BENCHMARK_CAPTURE(BM_ProtectLoad, wfe, "wfe");
BENCHMARK_CAPTURE(BM_ProtectLoad, nbr, "nbr");

void BM_RetirePipeline(benchmark::State& state, const char* name) {
  MicroWorld w(name);
  smr::Reclaimer& r = *w.bundle.reclaimer;
  for (auto _ : state) {
    r.begin_op(w.h(0));
    r.retire(w.h(0), r.alloc_node(w.h(0), 240));
    r.end_op(w.h(0));
    r.begin_op(w.h(1));  // second lane keeps epochs moving
    r.end_op(w.h(1));
  }
  r.flush_all();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_RetirePipeline, debra, "debra");
BENCHMARK_CAPTURE(BM_RetirePipeline, debra_af, "debra_af");
BENCHMARK_CAPTURE(BM_RetirePipeline, token, "token");
BENCHMARK_CAPTURE(BM_RetirePipeline, token_af, "token_af");
BENCHMARK_CAPTURE(BM_RetirePipeline, qsbr, "qsbr");
BENCHMARK_CAPTURE(BM_RetirePipeline, ibr, "ibr");
BENCHMARK_CAPTURE(BM_RetirePipeline, hp, "hp");
BENCHMARK_CAPTURE(BM_RetirePipeline, nbr, "nbr");

// --------------------------------------------------------------- smoke

bool is_pointer_scheme(const std::string& base) {
  return base == "hp" || base == "he" || base == "ibr" || base == "wfe" ||
         base == "nbr" || base == "nbrplus";
}

/// Drives one scheme through 512 alloc/protect/retire ops on two
/// registered handles — re-registering the second lane's handle midway
/// so every scheme's departure hand-off runs — and checks the
/// accounting closes. Returns false on any violation.
bool smoke_one(const std::string& name) {
  MicroWorld w(name);
  smr::Reclaimer& r = *w.bundle.reclaimer;
  constexpr std::uint64_t kOps = 512;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    r.begin_op(w.h(0));
    void* p = r.alloc_node(w.h(0), 64);
    std::atomic<void*> src{p};
    void* q = r.protect(w.h(0), static_cast<int>(i % 8), load_ptr, &src);
    r.retire(w.h(0), q);
    r.end_op(w.h(0));
    r.begin_op(w.h(1));
    r.end_op(w.h(1));
    if (i == kOps / 2) {
      // Churn lane 1: release mid-run and register a replacement.
      w.handles[1] = r.register_thread();
    }
  }
  r.flush_all();
  const smr::SmrStats st = r.stats();

  const bool aliased = is_pointer_scheme(smr::reclaimer_base_name(name)) &&
                       std::strcmp(r.family(), "ebr") == 0;
  const bool accounted =
      st.retired == kOps && st.freed == kOps && st.pending == 0;

  std::printf("%-20s family=%-6s retired=%-5llu freed=%-5llu %s%s\n",
              name.c_str(), r.family(),
              static_cast<unsigned long long>(st.retired),
              static_cast<unsigned long long>(st.freed),
              accounted ? "ok" : "ACCOUNTING-LEAK",
              aliased ? " EBR-ALIAS" : "");
  return accounted && !aliased;
}

int run_smoke() {
  bool ok = true;
  for (const std::string& name : smr::all_factory_names()) {
    ok &= smoke_one(name);
  }
  std::printf("bench_micro_smr --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
