// google-benchmark micro suite for reclaimer primitives: begin/end op
// overhead per algorithm and the retire-to-free pipeline cost.
#include <benchmark/benchmark.h>

#include "alloc/factory.hpp"
#include "smr/factory.hpp"

namespace {

using namespace emr;

struct MicroWorld {
  std::unique_ptr<alloc::Allocator> allocator;
  smr::SmrContext ctx;
  smr::SmrConfig cfg;
  smr::ReclaimerBundle bundle;

  explicit MicroWorld(const std::string& name) {
    alloc::AllocConfig acfg;
    acfg.max_threads = 2;
    allocator = alloc::make_allocator("je", acfg);
    ctx.allocator = allocator.get();
    cfg.num_threads = 2;
    cfg.batch_size = 256;
    bundle = smr::make_reclaimer(name, ctx, cfg);
  }
};

void BM_BeginEndOp(benchmark::State& state, const char* name) {
  MicroWorld w(name);
  smr::Reclaimer& r = *w.bundle.reclaimer;
  for (auto _ : state) {
    r.begin_op(0);
    r.end_op(0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_BeginEndOp, none, "none");
BENCHMARK_CAPTURE(BM_BeginEndOp, debra, "debra");
BENCHMARK_CAPTURE(BM_BeginEndOp, qsbr, "qsbr");
BENCHMARK_CAPTURE(BM_BeginEndOp, rcu, "rcu");
BENCHMARK_CAPTURE(BM_BeginEndOp, token, "token");
BENCHMARK_CAPTURE(BM_BeginEndOp, hp, "hp");
BENCHMARK_CAPTURE(BM_BeginEndOp, he, "he");
BENCHMARK_CAPTURE(BM_BeginEndOp, ibr, "ibr");
BENCHMARK_CAPTURE(BM_BeginEndOp, wfe, "wfe");
BENCHMARK_CAPTURE(BM_BeginEndOp, nbr, "nbr");

void BM_ProtectLoad(benchmark::State& state, const char* name) {
  MicroWorld w(name);
  smr::Reclaimer& r = *w.bundle.reclaimer;
  void* node = r.alloc_node(0, 64);
  std::atomic<void*> src{node};
  r.begin_op(0);
  for (auto _ : state) {
    void* p = r.protect(
        0, 0, [](const void* s) {
          return static_cast<const std::atomic<void*>*>(s)->load(
              std::memory_order_acquire);
        },
        &src);
    benchmark::DoNotOptimize(p);
  }
  r.end_op(0);
  r.dealloc_unpublished(0, node);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ProtectLoad, debra, "debra");
BENCHMARK_CAPTURE(BM_ProtectLoad, hp, "hp");
BENCHMARK_CAPTURE(BM_ProtectLoad, he, "he");
BENCHMARK_CAPTURE(BM_ProtectLoad, ibr, "ibr");
BENCHMARK_CAPTURE(BM_ProtectLoad, wfe, "wfe");

void BM_RetirePipeline(benchmark::State& state, const char* name) {
  MicroWorld w(name);
  smr::Reclaimer& r = *w.bundle.reclaimer;
  for (auto _ : state) {
    r.begin_op(0);
    r.retire(0, r.alloc_node(0, 240));
    r.end_op(0);
    r.begin_op(1);  // second thread keeps epochs moving
    r.end_op(1);
  }
  r.flush_all();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_RetirePipeline, debra, "debra");
BENCHMARK_CAPTURE(BM_RetirePipeline, debra_af, "debra_af");
BENCHMARK_CAPTURE(BM_RetirePipeline, token, "token");
BENCHMARK_CAPTURE(BM_RetirePipeline, token_af, "token_af");
BENCHMARK_CAPTURE(BM_RetirePipeline, qsbr, "qsbr");
BENCHMARK_CAPTURE(BM_RetirePipeline, ibr, "ibr");
BENCHMARK_CAPTURE(BM_RetirePipeline, hp, "hp");

}  // namespace

BENCHMARK_MAIN();
