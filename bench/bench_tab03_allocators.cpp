// Table 3: the generality check — batch vs amortized free on the tcmalloc
// and mimalloc models (plus jemalloc for reference). Paper shape: TC gains
// ~3.25x from AF (worse central-list contention than JE); MI is immune (AF
// does not help, and costs slightly).
//
// `--smoke` runs a tiny trial for every {je,tc,mi} x {debra,debra_af}
// cell and fails unless each makes progress with sane allocator books
// (allocations and frees both nonzero, frees never exceeding
// allocations — the set still holds its live nodes when the trial's
// clock stops). In an EMR_REAL_ALLOC build the
// bare names resolve to the real libraries, so this is the CI gate that
// the table's pipeline works against real malloc behavior; names whose
// library wasn't linked are skipped with a note, never failed.
#include <cstring>

#include "alloc/factory.hpp"
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

namespace {

int run_smoke() {
  bool ok = true;
  int ran = 0;
  for (const char* alloc_name : {"je", "tc", "mi"}) {
    if (alloc::allocator_backend(alloc_name) ==
        alloc::Backend::kUnavailable) {
      std::printf("%-3s SKIP (real library not linked; try %s_model)\n",
                  alloc_name, alloc_name);
      continue;
    }
    for (const char* reclaimer : {"debra", "debra_af"}) {
      harness::TrialConfig cfg;
      cfg.ds = "dgt";
      cfg.allocator = alloc_name;
      cfg.reclaimer = reclaimer;
      cfg.nthreads = 2;
      cfg.keyrange = 2048;
      cfg.measure_ms = 60;
      cfg.smr.batch_size = 256;
      cfg.smr.epoch_freq = 32;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();
      const alloc::AllocTotals t = trial.allocator().stats().totals;
      const bool good = r.ops > 0 && t.n_alloc > 0 && t.n_free > 0 &&
                        t.n_free <= t.n_alloc;
      std::printf("%-3s %-9s ops=%-8llu alloc=%-8llu free=%-8llu %s\n",
                  alloc_name, reclaimer,
                  static_cast<unsigned long long>(r.ops),
                  static_cast<unsigned long long>(t.n_alloc),
                  static_cast<unsigned long long>(t.n_free),
                  good ? "ok" : "FAILED");
      ok &= good;
      ++ran;
    }
  }
  if (ran == 0) {
    std::printf("bench_tab03_allocators --smoke: no backend available\n");
    return 1;
  }
  std::printf("bench_tab03_allocators --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner(
      "Table 3: batch vs amortized free across allocator models",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Table 3", describe(base));

  harness::Table table({"approach", "ops/s", "freed", "%free", "%flush"});
  for (const char* alloc : {"je", "tc", "mi"}) {
    double mops[2] = {0, 0};
    int i = 0;
    for (const char* reclaimer : {"debra", "debra_af"}) {
      harness::TrialConfig cfg = base;
      cfg.allocator = alloc;
      cfg.reclaimer = reclaimer;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();
      mops[i++] = r.mops;
      char label[32];
      std::snprintf(label, sizeof(label), "%s %s", alloc,
                    i == 1 ? "batch" : "amort.");
      table.add_row({label, harness::human_count(r.mops * 1e6),
                     harness::human_count(
                         static_cast<double>(r.freed_in_window)),
                     harness::fixed(r.pct_free, 1),
                     harness::fixed(r.pct_flush, 1)});
    }
    std::printf("%s: AF speedup %.2fx\n", alloc,
                mops[0] > 0 ? mops[1] / mops[0] : 0.0);
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "tab03_allocators.csv");
  std::printf("\npaper (192t): TC 25.7M->83.5M (3.25x); MI 104M->95M "
              "(AF slightly *hurts* on mimalloc)\n");
  return 0;
}
