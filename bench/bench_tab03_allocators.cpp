// Table 3: the generality check — batch vs amortized free on the tcmalloc
// and mimalloc models (plus jemalloc for reference). Paper shape: TC gains
// ~3.25x from AF (worse central-list contention than JE); MI is immune (AF
// does not help, and costs slightly).
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner(
      "Table 3: batch vs amortized free across allocator models",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Table 3", describe(base));

  harness::Table table({"approach", "ops/s", "freed", "%free", "%flush"});
  for (const char* alloc : {"je", "tc", "mi"}) {
    double mops[2] = {0, 0};
    int i = 0;
    for (const char* reclaimer : {"debra", "debra_af"}) {
      harness::TrialConfig cfg = base;
      cfg.allocator = alloc;
      cfg.reclaimer = reclaimer;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();
      mops[i++] = r.mops;
      char label[32];
      std::snprintf(label, sizeof(label), "%s %s", alloc,
                    i == 1 ? "batch" : "amort.");
      table.add_row({label, harness::human_count(r.mops * 1e6),
                     harness::human_count(
                         static_cast<double>(r.freed_in_window)),
                     harness::fixed(r.pct_free, 1),
                     harness::fixed(r.pct_flush, 1)});
    }
    std::printf("%s: AF speedup %.2fx\n", alloc,
                mops[0] > 0 ? mops[1] / mops[0] : 0.0);
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "tab03_allocators.csv");
  std::printf("\npaper (192t): TC 25.7M->83.5M (3.25x); MI 104M->95M "
              "(AF slightly *hurts* on mimalloc)\n");
  return 0;
}
