// Extension ablation (paper footnote 3): fixing the RBF problem inside the
// *allocator* instead of the reclaimer. Compares batch-free DEBRA on the
// stock JE model, on the deferred-flush JE model, and amortized-free DEBRA
// on the stock model. Expected: allocator-side deferral recovers most of
// AF's benefit without modifying the reclamation algorithm.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner(
      "Ablation: allocator-side deferred flush vs reclaimer-side AF",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" footnote 3 (future work)",
      describe(base));

  harness::Table table(
      {"configuration", "Mops/s", "%free", "%flush", "%lock"});

  struct Config {
    const char* label;
    const char* reclaimer;
    bool deferred;
  };
  for (const Config c : {Config{"debra + stock JE", "debra", false},
                         Config{"debra + deferred JE", "debra", true},
                         Config{"debra_af + stock JE", "debra_af", false},
                         Config{"debra_af + deferred JE", "debra_af", true}}) {
    harness::TrialConfig cfg = base;
    cfg.reclaimer = c.reclaimer;
    cfg.alloc.deferred_flush = c.deferred;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    table.add_row({c.label, harness::fixed(r.mops, 2),
                   harness::fixed(r.pct_free, 1),
                   harness::fixed(r.pct_flush, 1),
                   harness::fixed(r.pct_lock, 1)});
  }
  table.print();
  table.write_csv(harness::out_dir() + "ablation_deferred.csv");
  std::printf("\nexpected: 'debra + deferred JE' approaches 'debra_af + "
              "stock JE' — the fix works on either side of the interface.\n");
  return 0;
}
