// Shared configuration for the paper-reproduction bench binaries.
//
// Every binary runs at laptop scale by default and scales to the paper's
// setup through environment variables (see EXPERIMENTS.md):
//   EMR_THREADS  - thread counts, e.g. "6 12 24 48 96 144 192"
//   EMR_MS       - measured milliseconds per trial (paper: 5000)
//   EMR_TRIALS   - trials per data point (paper: 3)
//   EMR_KEYRANGE - key range (paper: 2e7 for ABtree, 2e6 for DGT)
//   EMR_BATCH    - retire batch size / scan threshold (Experiment 2: 32768)
//   EMR_SCHEDULE - free-schedule policy override for any reclaimer
//                  name: fixed | adaptive | latency (default: follow
//                  the name's suffix; see docs/FREE_SCHEDULES.md)
//   EMR_LATENCY_TARGET_US - p99.9 target steering the latency schedule
//   EMR_LATENCY  - 1 = record per-op latency histograms (docs/LATENCY.md)
//   EMR_DRAIN_MIN / EMR_DRAIN_MAX - clamp on the adaptive schedule's
//                  per-op drain quantum
//   EMR_FLUSH_BATCH - ceiling on the home-flush quantum: how many
//                  stashed remote frees an owner retires locally per op
//                  end (>= 1; docs/FREE_SCHEDULES.md)
//   EMR_HOME_FLUSH - on | off: force remote-free routing regardless of
//                  the reclaimer name's _hf suffix
//   EMR_POOL_CAP - pooling inventory cap per lane (default: 4 batches,
//                  floored at 1024; non-positive values are rejected)
//   EMR_EXTRA_SLOTS - registration slots beyond the worker count
//                  (churn/teardown headroom; must be >= 1)
//   EMR_HP_SLOTS - protection slots per thread (hp/he/wfe)
//   EMR_EPOCH_FREQ - era-clock advance rate (he/ibr/wfe/nbr)
//   EMR_ALLOC    - je | tc | mi | system | je_model | tc_model | mi_model
//                  (bare names mean the real library in an
//                  -DEMR_REAL_ALLOC=ON build; docs/ALLOCATORS.md)
//   EMR_REMOTE_PENALTY_NS - modelled cross-socket free penalty; setting
//                  it pins the value, overriding startup calibration
//   EMR_CALIBRATE - on | off: replace the default penalty with the
//                  measured cache-line transfer cost (docs/ALLOCATORS.md)
//   EMR_PIN      - off | compact | scatter CPU pinning for workers,
//                  the reclaimer daemon, and calibration threads
//   EMR_TSC      - 1 (default) = use the invariant-TSC clock when the
//                  CPU advertises one; 0 = always clock_gettime
//   EMR_CHURN_MS - thread-churn interval: a worker deregisters and a
//                  fresh thread registers every this-many ms (0 = off)
//   EMR_WORKLOAD - set | pipeline: the insert/erase/lookup set mix, or
//                  enqueue/dequeue over a ds/ queue (EMR_DS = msqueue |
//                  lockedqueue; docs/DATA_STRUCTURES.md)
//   EMR_PRODUCERS - pipeline role split: the first N workers enqueue
//                  only, the rest dequeue only (0 = every worker
//                  alternates); consumers take the far end of EMR_PIN
//   EMR_QUEUE_CAP - pipeline queue capacity in nodes (0 = unbounded)
//   EMR_ARRIVAL  - closed | poisson | burst traffic model; open-loop
//                  modes serve a seeded pre-generated arrival schedule
//                  (docs/SERVICE_MODE.md)
//   EMR_RATE_OPS - open-loop mean offered load, ops/s
//   EMR_ZIPF_S   - Zipfian key skew for open-loop draws (0 = uniform)
//   EMR_PHASES   - comma list of rate multipliers over equal window slices
//   EMR_TENANTS / EMR_TENANT_WEIGHTS - ds/ instances sharing the
//                  reclaimer bundle, and their arrival weights
//   EMR_RECLAIMER_DAEMON - off | optimistic | aggressive background
//                  reclaimer thread; EMR_DAEMON_MS sets its tick period
//   EMR_OUT      - artifact directory for CSV/timeline dumps
//
// Binaries that parse argv (bench_ablation_churn,
// bench_ablation_adaptive, bench_fig_latency, bench_fig_service,
// bench_fig_queue, bench_fig_homeflush) accept `--json <path>` (or
// EMR_JSON): the result table is mirrored as a JSON array via
// harness::emit_json, the format the committed BENCH_*.json perf
// snapshots ingest (ci/check.sh writes BENCH_fig_latency.json,
// BENCH_fig_service.json, BENCH_fig_queue.json and
// BENCH_fig_homeflush.json at the repo root). The helpers below are the two lines a bench needs to opt in.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

namespace emr::bench {

/// Laptop-scale defaults shared by all binaries; env overrides win.
inline harness::TrialConfig default_config() {
  harness::TrialConfig cfg;
  cfg.ds = "abtree";
  cfg.reclaimer = "debra";
  cfg.allocator = "je";
  cfg.nthreads = 4;
  cfg.keyrange = 1 << 14;
  cfg.measure_ms = 200;
  cfg.trials = 1;
  cfg.smr.batch_size = 2048;
  // Model the four-socket machine's remote-free cost so the RBF effect is
  // visible at laptop scale (DESIGN.md, substitution table).
  cfg.alloc.remote_free_penalty_ns = 150;

  // Apply env overrides on top. apply_env_overrides only touches fields
  // whose EMR_* variable is actually present, so the laptop defaults
  // above win whenever the environment is silent.
  harness::apply_env_overrides(cfg);
  return cfg;
}

/// Default thread sweep: oversubscribes the machine (the analogue of the
/// paper's walk from one socket to four).
inline std::vector<int> default_thread_sweep() {
  return harness::thread_sweep_from_env({1, 2, 4, 8, 16});
}

/// Largest thread count of the sweep (the paper's "192 threads" column).
inline int max_threads() {
  const auto sweep = default_thread_sweep();
  int m = 1;
  for (int t : sweep) m = std::max(m, t);
  return m;
}

/// `--json <path>` from argv, falling back to EMR_JSON; empty when
/// neither is present.
inline std::string json_path_from_args(int argc, char** argv) {
  std::string path = env_str("EMR_JSON", "");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") path = argv[i + 1];
  }
  return path;
}

/// Mirrors `table` to `path` as JSON when a path was given.
inline void maybe_write_json(const harness::Table& table,
                             const std::string& path) {
  if (path.empty()) return;
  if (table.write_json(path)) {
    std::printf("JSON: %s\n", path.c_str());
  } else {
    std::printf("bench: failed to write JSON to %s\n", path.c_str());
  }
}

inline std::string describe(const harness::TrialConfig& cfg) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ds=%s alloc=%s keyrange=%llu ms=%d trials=%d batch=%zu "
                "penalty=%lluns",
                cfg.ds.c_str(), cfg.allocator.c_str(),
                static_cast<unsigned long long>(cfg.keyrange),
                cfg.measure_ms, cfg.trials, cfg.smr.batch_size,
                static_cast<unsigned long long>(
                    cfg.alloc.remote_free_penalty_ns));
  return buf;
}

}  // namespace emr::bench
