// Supplementary Figure 14: token_af vs all reclamation techniques across
// threads on the DGT tree (the Experiment 1 comparison repeated on the
// second data structure).
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.ds = "dgt";
  base.keyrange = std::max<std::uint64_t>(64, base.keyrange / 10);
  harness::print_banner(
      "Figure 14: token_af vs all reclaimers across threads (DGT tree)",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 14", describe(base));

  const std::vector<std::string> reclaimers = {
      "token_af", "debra_af", "debra", "token", "qsbr", "rcu", "ibr",
      "nbr",      "nbrplus",  "he",    "hp",    "wfe",  "none"};

  harness::Table table({"threads", "reclaimer", "Mops/s"});
  for (const std::string& reclaimer : reclaimers) {
    for (int n : default_thread_sweep()) {
      harness::TrialConfig cfg = base;
      cfg.reclaimer = reclaimer;
      cfg.nthreads = n;
      const harness::AggregateResult r = harness::run_trials(cfg);
      table.add_row({std::to_string(n), reclaimer,
                     harness::fixed(r.avg_mops, 2)});
      std::printf("  threads=%-3d %-10s %7.2f Mops/s\n", n,
                  reclaimer.c_str(), r.avg_mops);
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig14_dgt_exp1.csv");
  return 0;
}
