// Service-mode figure (docs/SERVICE_MODE.md, ROADMAP item 3): the
// measurement closed loops structurally cannot make — open-loop arrival
// traffic against the same structures. A closed loop issues the next op
// the moment the last one returns, so past saturation the throughput
// number just flattens; an open loop keeps offering load on a
// pre-generated seeded schedule, and the *queueing delay* (service
// start minus scheduled arrival) explodes while per-op service time
// stays ordinary. The second panel is the multi-tenant/daemon story: a
// hot tenant sharing one reclaimer bundle with a cold one under phase
// traffic, where the background reclaimer daemon drains the garbage
// that op-driven reclamation strands when the traffic stops.
//
//   EMR_ARRIVAL / EMR_RATE_OPS / EMR_ZIPF_S / EMR_PHASES - traffic shape
//   EMR_TENANTS / EMR_TENANT_WEIGHTS     - reclamation domains
//   EMR_RECLAIMER_DAEMON / EMR_DAEMON_MS - off | optimistic | aggressive
//   --json <path>  - mirror the table as JSON (bench_common); ci/check.sh
//                    points this at the committed BENCH_fig_service.json
//
// `bench_fig_service --smoke` runs the acceptance gates at laptop scale:
//   (a) determinism - the offered schedule is a pure function of the
//       config: byte-identical hash across regenerations, identical
//       offered counts across repeated daemon-off runs (the "daemon off
//       changes nothing" guarantee rides on the same fixed seed);
//   (b) saturation  - aggregated over two seeds, the overloaded cell's
//       queueing p99.9 is >= 5x the light cell's while the service rate
//       it sustains stays within the closed-loop capacity band — the
//       throughput column alone looks healthy while the queue dies;
//   (c) daemon      - on the hot/cold tenant scenario with a near-idle
//       tail, the aggressive daemon cuts the garbage the bundle holds
//       (peak and mean sampled backlog) vs daemon off, with per-tenant
//       ledgers summing to the bundle total either way.
#include <cinttypes>
#include <cstring>

#include "bench_common.hpp"
#include "core/arrival.hpp"
#include "core/latency.hpp"

using namespace emr;
using namespace emr::bench;

namespace {

const char* const kHeaders[] = {
    "scenario",     "arrival",      "reclaimer",      "daemon",
    "threads",      "rate_ops",     "offered",        "completed",
    "mops",         "q_p50_us",     "q_p999_us",      "svc_p999_us",
    "peak_backlog", "mean_backlog", "daemon_drained", "sched_hash",
    "penalty_ns",   "clock",        "pin"};

harness::Table make_table() {
  return harness::Table(std::vector<std::string>(
      kHeaders, kHeaders + sizeof(kHeaders) / sizeof(kHeaders[0])));
}

/// One service (or calibration) run folded to the table's columns.
struct CellResult {
  harness::TrialResult r;
  LatencyHistogram queue;     // queueing-delay histogram of this run
  double mean_backlog = 0;    // over the schedule trace
  double tail_mean_backlog = 0;   // over samples at t >= kTailFromMs
  std::uint64_t tail_peak_backlog = 0;
  std::uint64_t peak_census = 0;
  std::uint64_t sched_hash = 0;
  bool accounted = false;
};

/// Where the daemon scenario's idle window is well underway: past the
/// 75 ms phase break of the 150 ms smoke cell plus settling margin.
constexpr std::uint64_t kTailFromMs = 95;

/// The schedule the trial will serve, regenerated here so the bench can
/// assert reproducibility against the run (mirrors Trial's own mapping
/// of TrialConfig onto ArrivalConfig).
std::uint64_t schedule_hash_for(const harness::TrialConfig& cfg) {
  if (cfg.arrival == "closed") return 0;
  ArrivalConfig acfg;
  acfg.process = cfg.arrival == "burst" ? ArrivalConfig::Process::kBurst
                                        : ArrivalConfig::Process::kPoisson;
  acfg.rate_ops = cfg.rate_ops;
  acfg.duration_ns = static_cast<std::uint64_t>(cfg.measure_ms) * 1'000'000ULL;
  acfg.seed = cfg.seed;
  acfg.insert_frac = cfg.insert_frac;
  acfg.erase_frac = cfg.erase_frac;
  acfg.keyrange = cfg.keyrange;
  acfg.zipf_s = cfg.zipf_s;
  acfg.phases = cfg.phases;
  acfg.tenants = cfg.tenants < 1 ? 1 : cfg.tenants;
  acfg.tenant_weights = cfg.tenant_weights;
  return arrival_schedule_hash(generate_arrivals(acfg));
}

CellResult run_cell(const harness::TrialConfig& cfg) {
  CellResult out;
  out.sched_hash = schedule_hash_for(cfg);
  harness::Trial trial(cfg);
  out.r = trial.run();
  out.queue = trial.queue_latency().merged();
  out.peak_census = trial.garbage().peak_garbage();
  if (!out.r.schedule_trace.empty()) {
    double sum = 0, tail_sum = 0;
    std::uint64_t tail_n = 0;
    for (const harness::ScheduleSample& s : out.r.schedule_trace) {
      sum += static_cast<double>(s.backlog);
      if (s.t_ms >= kTailFromMs) {
        tail_sum += static_cast<double>(s.backlog);
        ++tail_n;
        out.tail_peak_backlog = std::max(out.tail_peak_backlog, s.backlog);
      }
    }
    out.mean_backlog = sum / static_cast<double>(out.r.schedule_trace.size());
    if (tail_n > 0) out.tail_mean_backlog = tail_sum / static_cast<double>(tail_n);
  }
  // flush_all ran inside run(): every retired node must be home.
  out.accounted = out.r.ops > 0 && trial.reclaimer().stats().pending == 0 &&
                  trial.reclaimer().executor().backlog() == 0;
  return out;
}

void add_row(harness::Table* table, const std::string& scenario,
             const harness::TrialConfig& cfg, const CellResult& c) {
  char hash[32] = "-";
  if (cfg.arrival != "closed") {
    // "0x" keeps the cell outside the JSON number grammar, so emit_json
    // always writes the hash as a string (an all-digit hash would
    // otherwise silently change type between snapshots).
    std::snprintf(hash, sizeof(hash), "0x%016" PRIx64, c.sched_hash);
  }
  table->add_row(
      {scenario, cfg.arrival, cfg.reclaimer, cfg.reclaimer_daemon,
       std::to_string(cfg.nthreads), harness::fixed(cfg.rate_ops, 0),
       std::to_string(c.r.arrivals_offered),
       std::to_string(c.r.arrivals_completed), harness::fixed(c.r.mops, 3),
       harness::fixed(c.r.q_p50_ns / 1000.0, 2),
       harness::fixed(c.r.q_p999_ns / 1000.0, 2),
       harness::fixed(c.r.lat_p999_ns / 1000.0, 2),
       std::to_string(c.r.peak_backlog), harness::fixed(c.mean_backlog, 1),
       std::to_string(c.r.daemon_drained), hash,
       std::to_string(c.r.remote_penalty_ns), c.r.clock_source,
       c.r.pin_mode});
}

void print_cell(const std::string& scenario, const harness::TrialConfig& cfg,
                const CellResult& c) {
  std::printf(
      "%-12s %-7s seed=%-4llu rate=%-8s offered=%-8llu done=%-8llu "
      "mops=%-6s q_p50=%-8s q_p999=%-8s svc_p999=%-8s drained=%-6llu %s\n",
      scenario.c_str(), cfg.arrival.c_str(),
      static_cast<unsigned long long>(cfg.seed),
      harness::human_count(cfg.rate_ops).c_str(),
      static_cast<unsigned long long>(c.r.arrivals_offered),
      static_cast<unsigned long long>(c.r.arrivals_completed),
      harness::fixed(c.r.mops, 2).c_str(),
      harness::human_ns(c.r.q_p50_ns).c_str(),
      harness::human_ns(c.r.q_p999_ns).c_str(),
      harness::human_ns(c.r.lat_p999_ns).c_str(),
      static_cast<unsigned long long>(c.r.daemon_drained),
      c.accounted ? "ok" : "UNACCOUNTED");
}

// ------------------------------------------------------------- configs

harness::TrialConfig smoke_base() {
  harness::TrialConfig cfg;
  cfg.ds = "dgt";
  cfg.reclaimer = "debra_af";
  cfg.allocator = "je";
  cfg.nthreads = 2;
  cfg.keyrange = 4096;
  cfg.measure_ms = 150;
  cfg.smr.batch_size = 128;
  cfg.alloc.remote_free_penalty_ns = 0;
  // Zero is deliberate (the smoke isolates queueing effects): keep
  // startup calibration from substituting a measured penalty.
  cfg.alloc.remote_penalty_explicit = true;
  cfg.enable_latency = true;
  return cfg;
}

/// The hot/cold tenant scenario for the daemon gate. The garbage that
/// structurally needs a background reclaimer is *adopted* backlog:
/// op-driven draining always keeps pace while traffic flows (the quota
/// is at least one node per op), but when a churned-out worker's
/// departure scan hands its retire list to the executor during the idle
/// tail, no ops follow to drain it — with the daemon off it simply
/// stands until teardown. Thread churn every 40 ms puts two departures
/// inside the 75 ms idle tail, each stranding ~half a scan threshold.
harness::TrialConfig tenant_config(double capacity, const char* level) {
  harness::TrialConfig cfg = smoke_base();
  cfg.seed = 42;
  cfg.arrival = "poisson";
  // hp's departure scan needs no grace period (it checks hazard slots on
  // the spot), so the hand-off reaches the executor deterministically.
  cfg.reclaimer = "hp_af";
  cfg.smr.batch_size = 2048;
  cfg.churn_interval_ms = 40;
  // Busy phase at ~0.7x capacity: dense traffic, but the arrival queue
  // stays short so serving really stops at the phase break and the tail
  // is an idle window, not a backlog-spill extension of the busy half.
  cfg.rate_ops = capacity * 0.35;
  cfg.phases = {2.0, 0.0002};  // busy half, then an almost-opless tail
  cfg.tenants = 2;
  cfg.tenant_weights = {10.0, 1.0};
  cfg.reclaimer_daemon = level;
  cfg.daemon_period_ms = 1;
  cfg.enable_schedule_trace = true;
  cfg.enable_garbage = true;
  return cfg;
}

int run_smoke(int argc, char** argv) {
  harness::Table table = make_table();
  bool ok = true;

  // Closed-loop capacity of the smoke cell — the saturation knee the
  // open-loop offered rates are placed around.
  double capacity = 0;
  {
    harness::TrialConfig cfg = smoke_base();
    cfg.seed = 42;
    const CellResult c = run_cell(cfg);
    add_row(&table, "closed-cal", cfg, c);
    capacity = static_cast<double>(c.r.ops) /
               (static_cast<double>(c.r.wall_ns) / 1e9);
  }
  std::printf("closed-loop capacity: %s ops/s (2 threads)\n\n",
              harness::human_count(capacity).c_str());
  if (capacity <= 0) {
    std::printf("FAILED: capacity calibration measured nothing\n");
    return 1;
  }

  // ---- (a) + (b): open-loop saturation over two seeds ----------------
  const std::uint64_t kSeeds[] = {42, 1042};
  LatencyHistogram light_q, over_q;
  double over_rate_sum = 0;
  int over_runs = 0;
  for (const std::uint64_t seed : kSeeds) {
    for (const bool overload : {false, true}) {
      harness::TrialConfig cfg = smoke_base();
      cfg.seed = seed;
      cfg.arrival = "poisson";
      cfg.rate_ops = capacity * (overload ? 1.6 : 0.4);
      const CellResult c = run_cell(cfg);
      ok &= c.accounted;
      print_cell(overload ? "over" : "light", cfg, c);
      add_row(&table, overload ? "over" : "light", cfg, c);

      if (overload) {
        over_q.add(c.queue);
        over_rate_sum += static_cast<double>(c.r.arrivals_completed) /
                         (static_cast<double>(c.r.wall_ns) / 1e9);
        ++over_runs;
      } else {
        light_q.add(c.queue);
        // Light load: (almost) every offered arrival gets served.
        if (c.r.arrivals_completed < c.r.arrivals_offered * 95 / 100) {
          std::printf("FAILED: light load left offered arrivals unserved "
                      "(%llu of %llu)\n",
                      static_cast<unsigned long long>(c.r.arrivals_completed),
                      static_cast<unsigned long long>(c.r.arrivals_offered));
          ok = false;
        }
      }

      // (a) regenerating the schedule from the same config hashes
      // identically to what the run served.
      if (schedule_hash_for(cfg) != c.sched_hash) {
        std::printf("FAILED: schedule hash not reproducible for seed %llu\n",
                    static_cast<unsigned long long>(seed));
        ok = false;
      }
    }
  }
  // (a) continued: a repeated daemon-off run offers the bit-identical
  // schedule — same hash, same event count.
  {
    harness::TrialConfig cfg = smoke_base();
    cfg.seed = kSeeds[0];
    cfg.arrival = "poisson";
    cfg.rate_ops = capacity * 0.4;
    const CellResult a = run_cell(cfg);
    const CellResult b = run_cell(cfg);
    if (a.sched_hash != b.sched_hash ||
        a.r.arrivals_offered != b.r.arrivals_offered) {
      std::printf("FAILED: repeated daemon-off runs disagree on the offered "
                  "schedule (hash 0x%016" PRIx64 " vs 0x%016" PRIx64
                  ", offered %llu vs %llu)\n",
                  a.sched_hash, b.sched_hash,
                  static_cast<unsigned long long>(a.r.arrivals_offered),
                  static_cast<unsigned long long>(b.r.arrivals_offered));
      ok = false;
    }
  }

  const double light_p999 = latency_percentile(light_q, 0.999);
  const double over_p999 = latency_percentile(over_q, 0.999);
  const double over_rate = over_runs > 0 ? over_rate_sum / over_runs : 0;
  std::printf("\nqueueing p99.9: light=%s over=%s | sustained over-rate "
              "%s ops/s vs capacity %s\n",
              harness::human_ns(light_p999).c_str(),
              harness::human_ns(over_p999).c_str(),
              harness::human_count(over_rate).c_str(),
              harness::human_count(capacity).c_str());
  // (b) Past saturation the queueing tail explodes by multiples...
  if (over_p999 < 5.0 * light_p999 || over_p999 < 500'000.0) {
    std::printf("FAILED: overload queueing p99.9 (%s) is not >= 5x light "
                "(%s) and >= 0.5ms\n",
                harness::human_ns(over_p999).c_str(),
                harness::human_ns(light_p999).c_str());
    ok = false;
  }
  // ...while the throughput column stays flat: the saturated workers
  // still serve within the closed-loop capacity band.
  if (over_rate < 0.6 * capacity) {
    std::printf("FAILED: overloaded service rate (%s) collapsed below 60%% "
                "of closed-loop capacity — the harm should be queueing, not "
                "throughput\n",
                harness::human_count(over_rate).c_str());
    ok = false;
  }

  // ---- (c) hot/cold tenants, daemon off vs aggressive ----------------
  std::printf("\n");
  CellResult cells[2];
  const char* const kLevels[2] = {"off", "aggressive"};
  for (int i = 0; i < 2; ++i) {
    const harness::TrialConfig cfg = tenant_config(capacity, kLevels[i]);
    cells[i] = run_cell(cfg);
    ok &= cells[i].accounted;
    if (env_has("EMR_TRACE_DUMP")) {
      std::printf("-- trace %s: ", kLevels[i]);
      for (const harness::ScheduleSample& s : cells[i].r.schedule_trace) {
        std::printf("%llu:%llu ", static_cast<unsigned long long>(s.t_ms),
                    static_cast<unsigned long long>(s.backlog));
      }
      std::printf("\n   ticks=%llu pressure=%llu quiet=%llu\n",
                  static_cast<unsigned long long>(cells[i].r.daemon_ticks),
                  static_cast<unsigned long long>(
                      cells[i].r.daemon_pressure_ticks),
                  static_cast<unsigned long long>(
                      cells[i].r.daemon_quiet_ticks));
    }
    const std::string label = std::string("tenant-") + kLevels[i];
    print_cell(label, cfg, cells[i]);
    add_row(&table, label, cfg, cells[i]);

    const harness::TrialResult& r = cells[i].r;
    if (r.tenant.size() != 2 ||
        r.tenant[0].retired + r.tenant[1].retired != r.smr_stats.retired) {
      std::printf("FAILED: tenant ledgers do not sum to the bundle total "
                  "(daemon=%s)\n",
                  kLevels[i]);
      ok = false;
    }
    if (r.tenant.size() == 2 &&
        r.tenant[0].retired <= 3 * r.tenant[1].retired) {
      std::printf("FAILED: the hot tenant is not hot (retired %llu vs "
                  "%llu)\n",
                  static_cast<unsigned long long>(r.tenant[0].retired),
                  static_cast<unsigned long long>(r.tenant[1].retired));
      ok = false;
    }
  }
  std::printf("\ngarbage held in the idle tail (t >= %llums): off "
              "peak=%llu mean=%.1f | aggressive peak=%llu mean=%.1f "
              "(daemon drained %llu; census peaks %llu vs %llu)\n",
              static_cast<unsigned long long>(kTailFromMs),
              static_cast<unsigned long long>(cells[0].tail_peak_backlog),
              cells[0].tail_mean_backlog,
              static_cast<unsigned long long>(cells[1].tail_peak_backlog),
              cells[1].tail_mean_backlog,
              static_cast<unsigned long long>(cells[1].r.daemon_drained),
              static_cast<unsigned long long>(cells[0].peak_census),
              static_cast<unsigned long long>(cells[1].peak_census));
  if (cells[1].r.daemon_drained == 0) {
    std::printf("FAILED: the aggressive daemon never drained anything\n");
    ok = false;
  }
  // The daemon's win is the garbage stranded once traffic stops: with
  // the daemon off, whatever the executor holds at the last op simply
  // stays there; aggressive keeps draining through the idle window.
  if (cells[0].tail_mean_backlog < 64.0) {
    std::printf("FAILED: daemon-off stranded almost nothing in the idle "
                "tail (mean %.1f nodes) — the scenario is degenerate\n",
                cells[0].tail_mean_backlog);
    ok = false;
  }
  // The first post-strand sample can catch aggressive before its next
  // tick, so the gate is the tail *mean* (daemon clears the strand in a
  // few ticks; off holds it for the rest of the window), not the peak.
  if (cells[1].tail_mean_backlog > 0.5 * cells[0].tail_mean_backlog) {
    std::printf("FAILED: aggressive tail garbage (mean %.1f) is not < 50%% "
                "of daemon-off (%.1f)\n",
                cells[1].tail_mean_backlog, cells[0].tail_mean_backlog);
    ok = false;
  }

  maybe_write_json(table, json_path_from_args(argc, argv));
  std::printf("bench_fig_service --smoke: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke(argc, argv);
  }

  harness::TrialConfig base = default_config();
  base.enable_latency = true;
  harness::print_banner(
      "Service mode: open-loop arrivals, queueing delay, tenants, daemon",
      "beyond the paper: closed loops cannot see queueing collapse "
      "(ROADMAP item 3, docs/SERVICE_MODE.md)",
      describe(base) + " reclaimer=" + base.reclaimer +
          " daemon=" + base.reclaimer_daemon);

  harness::Table table = make_table();

  // Panel 1: walk the offered load across the saturation knee.
  double capacity = 0;
  {
    harness::TrialConfig cal = base;
    cal.arrival = "closed";
    const CellResult c = run_cell(cal);
    add_row(&table, "closed-cal", cal, c);
    capacity = static_cast<double>(c.r.ops) /
               (static_cast<double>(c.r.wall_ns) / 1e9);
    std::printf("closed-loop capacity: %s ops/s (%d threads)\n\n",
                harness::human_count(capacity).c_str(), cal.nthreads);
  }
  for (const double frac : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5}) {
    harness::TrialConfig cfg = base;
    if (cfg.arrival == "closed") cfg.arrival = "poisson";
    if (!env_has("EMR_RATE_OPS")) cfg.rate_ops = capacity * frac;
    const CellResult cell = run_cell(cfg);
    char label[32];
    std::snprintf(label, sizeof(label), "load-%.2f", frac);
    print_cell(label, cfg, cell);
    add_row(&table, label, cfg, cell);
  }

  // Panel 2: hot/cold tenants under phase traffic, daemon off vs on.
  std::printf("\n");
  for (const char* level : {"off", "optimistic", "aggressive"}) {
    harness::TrialConfig cfg = base;
    if (cfg.arrival == "closed") cfg.arrival = "poisson";
    if (!env_has("EMR_RATE_OPS")) cfg.rate_ops = capacity * 0.5;
    if (!env_has("EMR_PHASES")) cfg.phases = {2.0, 0.05};
    if (cfg.tenants <= 1) {
      cfg.tenants = 2;
      cfg.tenant_weights = {10.0, 1.0};
    }
    cfg.reclaimer_daemon = level;
    cfg.enable_schedule_trace = true;
    const CellResult cell = run_cell(cfg);
    const std::string label = std::string("tenant-") + level;
    print_cell(label, cfg, cell);
    add_row(&table, label, cfg, cell);
    if (cell.r.tenant.size() == 2) {
      std::printf(
          "    hot: retired=%llu backlog_end=%llu p999=%s | cold: "
          "retired=%llu backlog_end=%llu p999=%s\n",
          static_cast<unsigned long long>(cell.r.tenant[0].retired),
          static_cast<unsigned long long>(cell.r.tenant[0].backlog_end),
          harness::human_ns(cell.r.tenant[0].lat_p999_ns).c_str(),
          static_cast<unsigned long long>(cell.r.tenant[1].retired),
          static_cast<unsigned long long>(cell.r.tenant[1].backlog_end),
          harness::human_ns(cell.r.tenant[1].lat_p999_ns).c_str());
    }
  }

  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig_service.csv");
  std::printf("\nCSV: %sfig_service.csv\n", harness::out_dir().c_str());
  maybe_write_json(table, json_path_from_args(argc, argv));
  return 0;
}
