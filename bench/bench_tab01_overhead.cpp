// Table 1: jemalloc-model free overhead vs thread count for ABtree+DEBRA:
// ops/s, epochs, % time in free, % in the tcache flush path, % waiting on
// bin locks. Paper shape: all three percentages grow sharply with the
// thread count while the epoch count collapses.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.reclaimer = "debra";
  base.allocator = "je";
  harness::print_banner(
      "Table 1: JE-model free overhead (ABtree + DEBRA)",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Table 1", describe(base));

  harness::Table table(
      {"threads", "ops/s", "epochs", "%free", "%flush", "%lock"});
  for (int n : default_thread_sweep()) {
    harness::TrialConfig cfg = base;
    cfg.nthreads = n;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    table.add_row({std::to_string(n),
                   harness::human_count(r.mops * 1e6),
                   std::to_string(r.epochs_in_window),
                   harness::fixed(r.pct_free, 1),
                   harness::fixed(r.pct_flush, 1),
                   harness::fixed(r.pct_lock, 1)});
  }
  table.print();
  table.write_csv(harness::out_dir() + "tab01_overhead.csv");
  std::printf("\npaper (192t): 43.4M ops/s, 1980 epochs, 59.5%% free, "
              "58.8%% flush, 39.8%% lock\n");
  return 0;
}
