// google-benchmark micro suite for the allocator models: local
// allocate/free pairs, remote frees, tcache flush cost, and the mimalloc
// cross-thread push (Appendix B mechanics).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "alloc/factory.hpp"

namespace {

using emr::alloc::AllocConfig;
using emr::alloc::Allocator;
using emr::alloc::make_allocator;

AllocConfig cfg_for(int threads) {
  AllocConfig cfg;
  cfg.max_threads = threads;
  return cfg;
}

void BM_LocalAllocFree(benchmark::State& state, const char* name) {
  auto a = make_allocator(name, cfg_for(2));
  for (auto _ : state) {
    void* p = a->allocate(0, 240);
    benchmark::DoNotOptimize(p);
    a->deallocate(0, p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_LocalAllocFree, je, "je");
BENCHMARK_CAPTURE(BM_LocalAllocFree, tc, "tc");
BENCHMARK_CAPTURE(BM_LocalAllocFree, mi, "mi");
BENCHMARK_CAPTURE(BM_LocalAllocFree, system, "system");

// Remote pattern: thread 0 allocates, thread 1 frees (measured side).
void BM_RemoteFree(benchmark::State& state, const char* name) {
  auto a = make_allocator(name, cfg_for(2));
  std::vector<void*> stash;
  stash.reserve(4096);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 1024; ++i) stash.push_back(a->allocate(0, 240));
    state.ResumeTiming();
    for (void* p : stash) a->deallocate(1, p);
    stash.clear();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK_CAPTURE(BM_RemoteFree, je, "je");
BENCHMARK_CAPTURE(BM_RemoteFree, tc, "tc");
BENCHMARK_CAPTURE(BM_RemoteFree, mi, "mi");

// Batched remote free (the RBF pattern) vs spread-out remote free on the
// JE model: the batched variant repeatedly overflows the tcache.
void BM_BatchedRemoteFree(benchmark::State& state) {
  auto a = make_allocator("je", cfg_for(2));
  std::vector<void*> stash;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 4096; ++i) stash.push_back(a->allocate(0, 240));
    state.ResumeTiming();
    for (void* p : stash) a->deallocate(1, p);  // one huge batch
    stash.clear();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BatchedRemoteFree);

void BM_AmortizedRemoteFree(benchmark::State& state) {
  auto a = make_allocator("je", cfg_for(2));
  std::vector<void*> stash;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 4096; ++i) stash.push_back(a->allocate(0, 240));
    state.ResumeTiming();
    // Interleave frees with allocations: the tcache recycles locally.
    for (void* p : stash) {
      a->deallocate(1, p);
      void* q = a->allocate(1, 240);
      benchmark::DoNotOptimize(q);
      a->deallocate(1, q);
    }
    stash.clear();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AmortizedRemoteFree);

}  // namespace

BENCHMARK_MAIN();
