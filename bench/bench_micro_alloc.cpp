// google-benchmark micro suite for the allocator models: local
// allocate/free pairs, remote frees, tcache flush cost, and the mimalloc
// cross-thread push (Appendix B mechanics).
//
// `--smoke` bypasses google-benchmark entirely and runs a deterministic
// counter-only sweep over every factory name — fixed loop counts, no
// timing in the output — so CI can (a) gate allocator accounting across
// model AND real backends and (b) diff two runs byte-for-byte as the
// EMR_PIN=off determinism gate (ci/check.sh). Real-backend names that
// this build couldn't link print a skip line instead of failing.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alloc/factory.hpp"

namespace {

using emr::alloc::AllocConfig;
using emr::alloc::Allocator;
using emr::alloc::make_allocator;

AllocConfig cfg_for(int threads) {
  AllocConfig cfg;
  cfg.max_threads = threads;
  return cfg;
}

void BM_LocalAllocFree(benchmark::State& state, const char* name) {
  auto a = make_allocator(name, cfg_for(2));
  for (auto _ : state) {
    void* p = a->allocate(0, 240);
    benchmark::DoNotOptimize(p);
    a->deallocate(0, p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_LocalAllocFree, je, "je");
BENCHMARK_CAPTURE(BM_LocalAllocFree, tc, "tc");
BENCHMARK_CAPTURE(BM_LocalAllocFree, mi, "mi");
BENCHMARK_CAPTURE(BM_LocalAllocFree, system, "system");

// Remote pattern: thread 0 allocates, thread 1 frees (measured side).
void BM_RemoteFree(benchmark::State& state, const char* name) {
  auto a = make_allocator(name, cfg_for(2));
  std::vector<void*> stash;
  stash.reserve(4096);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 1024; ++i) stash.push_back(a->allocate(0, 240));
    state.ResumeTiming();
    for (void* p : stash) a->deallocate(1, p);
    stash.clear();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK_CAPTURE(BM_RemoteFree, je, "je");
BENCHMARK_CAPTURE(BM_RemoteFree, tc, "tc");
BENCHMARK_CAPTURE(BM_RemoteFree, mi, "mi");

// Batched remote free (the RBF pattern) vs spread-out remote free on the
// JE model: the batched variant repeatedly overflows the tcache.
void BM_BatchedRemoteFree(benchmark::State& state) {
  auto a = make_allocator("je", cfg_for(2));
  std::vector<void*> stash;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 4096; ++i) stash.push_back(a->allocate(0, 240));
    state.ResumeTiming();
    for (void* p : stash) a->deallocate(1, p);  // one huge batch
    stash.clear();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BatchedRemoteFree);

void BM_AmortizedRemoteFree(benchmark::State& state) {
  auto a = make_allocator("je", cfg_for(2));
  std::vector<void*> stash;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 4096; ++i) stash.push_back(a->allocate(0, 240));
    state.ResumeTiming();
    // Interleave frees with allocations: the tcache recycles locally.
    for (void* p : stash) {
      a->deallocate(1, p);
      void* q = a->allocate(1, 240);
      benchmark::DoNotOptimize(q);
      a->deallocate(1, q);
    }
    stash.clear();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AmortizedRemoteFree);

// ---------------------------------------------------------------------
// --smoke: deterministic counter-only sweep. No timing appears in the
// output, so two runs under EMR_PIN=off with model allocators must be
// byte-identical — ci/check.sh diffs them as the determinism gate. Each
// backend that IS linked must keep exact books; names the build could
// not link are reported as skipped, never as failures.

int smoke_one(const std::string& name) {
  constexpr int kLocal = 512;    // local allocate/free pairs on tid 0
  constexpr int kRemote = 256;   // tid 0 allocates, tid 1 frees (classed)
  constexpr int kLarge = 32;     // >4096 B: bypasses caches, never remote
  constexpr std::size_t kSmall = 240;
  constexpr std::size_t kBig = 8192;

  auto a = make_allocator(name, cfg_for(2));
  std::vector<void*> stash;
  stash.reserve(kRemote);

  for (int i = 0; i < kLocal; ++i) {
    void* p = a->allocate(0, kSmall);
    if (p == nullptr) return 1;
    a->deallocate(0, p);
  }
  for (int i = 0; i < kRemote; ++i) stash.push_back(a->allocate(0, kSmall));
  for (void* p : stash) a->deallocate(1, p);
  stash.clear();
  for (int i = 0; i < kLarge; ++i) stash.push_back(a->allocate(0, kBig));
  for (void* p : stash) a->deallocate(1, p);  // cross-tid but large: bypass
  stash.clear();

  const emr::alloc::AllocTotals t = a->stats().totals;
  const std::uint64_t expect_n = kLocal + kRemote + kLarge;
  bool ok = t.n_alloc == expect_n && t.n_free == expect_n &&
            t.n_remote_free == kRemote;
  std::printf("%-9s backend=%-5s alloc=%llu free=%llu remote=%llu %s\n",
              name.c_str(),
              emr::alloc::allocator_backend(name) ==
                      emr::alloc::Backend::kReal
                  ? "real"
                  : "model",
              static_cast<unsigned long long>(t.n_alloc),
              static_cast<unsigned long long>(t.n_free),
              static_cast<unsigned long long>(t.n_remote_free),
              ok ? "ok" : "MISMATCH");
  if (!ok) {
    std::fprintf(stderr,
                 "bench_micro_alloc: '%s' accounting mismatch: expected "
                 "alloc=free=%llu remote=%d\n",
                 name.c_str(), static_cast<unsigned long long>(expect_n),
                 kRemote);
    return 1;
  }
  return 0;
}

int run_smoke() {
  int rc = 0;
  int ran = 0;
  for (const std::string& name : emr::alloc::allocator_names()) {
    if (emr::alloc::allocator_backend(name) ==
        emr::alloc::Backend::kUnavailable) {
      std::printf("%-9s backend=real  SKIP (library not linked)\n",
                  name.c_str());
      continue;
    }
    rc |= smoke_one(name);
    ++ran;
  }
  if (ran == 0) {
    std::fprintf(stderr, "bench_micro_alloc: no allocator backend ran\n");
    return 1;
  }
  std::printf("smoke: %d backend(s) checked\n", ran);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
