// Table 4: analysis of the Token-EBR variants at the highest thread count:
// ops/s, % time freeing, number of objects freed. Paper shape: naive frees
// almost nothing (3.3%, 7M); pass-first/periodic spend ~half their time
// freeing; amortized frees the most objects with modest free time and the
// highest throughput.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner("Table 4: Token-EBR variant analysis",
                        "PPoPP'24 \"Are Your Epochs Too Epic?\" Table 4",
                        describe(base));

  harness::Table table({"algorithm", "ops/s", "%free", "freed"});
  for (const char* reclaimer :
       {"token_naive", "token_passfirst", "token", "token_af"}) {
    harness::TrialConfig cfg = base;
    cfg.reclaimer = reclaimer;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    table.add_row({reclaimer, harness::human_count(r.mops * 1e6),
                   harness::fixed(r.pct_free, 1),
                   harness::human_count(
                       static_cast<double>(r.freed_in_window))});
  }
  table.print();
  table.write_csv(harness::out_dir() + "tab04_token.csv");
  std::printf("\npaper (192t): naive 73.7M/3.3%%/7M; pass-first "
              "52.4M/45.4%%/98M; periodic 54.4M/47.1%%/118M; amortized "
              "123.7M/14.7%%/323M\n");
  return 0;
}
