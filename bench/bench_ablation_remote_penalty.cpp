// Ablation: sensitivity to the modelled remote-free penalty (the knob that
// stands in for the paper's cross-socket cache-line transfer latency; see
// DESIGN.md). The batch-vs-AF gap should widen as remote frees get more
// expensive, and vanish at penalty 0 on a small machine.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  harness::print_banner(
      "Ablation: remote-free penalty sensitivity (batch vs AF)",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" DESIGN.md substitution",
      describe(base));

  harness::Table table(
      {"penalty_ns", "batch Mops/s", "AF Mops/s", "AF/batch"});
  for (const std::uint64_t penalty : {0, 50, 150, 500, 2000}) {
    double mops[2] = {0, 0};
    int i = 0;
    for (const char* reclaimer : {"debra", "debra_af"}) {
      harness::TrialConfig cfg = base;
      cfg.reclaimer = reclaimer;
      cfg.alloc.remote_free_penalty_ns = penalty;
      // The sweep IS the penalty: don't let startup calibration
      // substitute the measured cache-line cost for this cell's value.
      cfg.alloc.remote_penalty_explicit = true;
      harness::Trial trial(cfg);
      mops[i++] = trial.run().mops;
    }
    table.add_row({std::to_string(penalty), harness::fixed(mops[0], 2),
                   harness::fixed(mops[1], 2),
                   harness::fixed(mops[0] > 0 ? mops[1] / mops[0] : 0, 2) +
                       "x"});
  }
  table.print();
  table.write_csv(harness::out_dir() + "ablation_remote_penalty.csv");
  std::printf("\nexpected: the AF advantage grows with the remote-free "
              "cost — the NUMA effect the paper measures on 4 sockets.\n");
  return 0;
}
