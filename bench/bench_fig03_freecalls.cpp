// Figure 3 (a,b) + supplementary Figure 17: timelines of *individual free
// calls* for batch free vs amortized free at the highest thread count.
// Paper shape: batch free shows many high-latency free calls (tcache
// flushes); amortized free shows almost none.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

namespace {

struct FreeCallStats {
  std::uint64_t calls = 0;
  std::uint64_t long_calls = 0;  // > 0.1 ms, Fig 9's visibility threshold
  std::uint64_t max_ns = 0;
};

FreeCallStats collect(harness::Trial& trial, int nthreads) {
  FreeCallStats s;
  for (int t = 0; t < nthreads; ++t) {
    for (std::size_t i = 0; i < trial.timeline().event_count(t); ++i) {
      const TimelineEvent& e = trial.timeline().events(t)[i];
      if (e.kind != EventKind::kFreeCall) continue;
      ++s.calls;
      const std::uint64_t d = e.t_end - e.t_start;
      if (d > 100'000) ++s.long_calls;
      s.max_ns = std::max(s.max_ns, d);
    }
  }
  return s;
}

}  // namespace

int main() {
  harness::TrialConfig base = default_config();
  base.nthreads = max_threads();
  base.enable_timeline = true;
  base.timeline_min_duration_ns = 1'000;  // record free calls > 1us
  harness::print_banner(
      "Figure 3 / Figure 17: individual free calls, batch vs amortized",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 3, Fig. 17",
      describe(base));

  for (const char* reclaimer : {"debra", "debra_af"}) {
    harness::TrialConfig cfg = base;
    cfg.reclaimer = reclaimer;
    harness::Trial trial(cfg);
    const harness::TrialResult r = trial.run();
    const FreeCallStats s = collect(trial, cfg.nthreads);

    std::printf("\n--- %s (%s free) ---\n", reclaimer,
                std::string(reclaimer).ends_with("_af") ? "amortized"
                                                        : "batch");
    std::fputs(
        trial.timeline().render_ascii(EventKind::kFreeCall, 20, 100).c_str(),
        stdout);
    std::printf("throughput %.2f Mops/s; free calls >1us: %llu; "
                ">0.1ms: %llu; max %.2f ms\n",
                r.mops, static_cast<unsigned long long>(s.calls),
                static_cast<unsigned long long>(s.long_calls),
                static_cast<double>(s.max_ns) / 1e6);
    const std::string csv = harness::out_dir() + "fig03_freecalls_" +
                            reclaimer + ".csv";
    trial.timeline().dump_csv(csv);
    std::printf("CSV: %s\n", csv.c_str());
  }
  std::printf("\npaper shape: the batch-free timeline shows many more "
              "high-latency free calls than the amortized one.\n");
  return 0;
}
