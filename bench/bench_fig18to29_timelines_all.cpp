// Supplementary Figures 18-29: DEBRA timeline graphs + garbage census for
// each allocator model (JE, TC, MI) at each thread count in the sweep.
// Paper shape: JE and TC show lengthening batch-free boxes as threads
// increase; MI's boxes stay short at every thread count.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  base.reclaimer = "debra";
  base.enable_timeline = true;
  base.enable_garbage = true;
  harness::print_banner(
      "Figures 18-29: DEBRA timelines for JE/TC/MI at each thread count",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Figs. 18-29", describe(base));

  harness::Table table({"alloc", "threads", "Mops/s", "batch_events",
                        "avg_batch_us", "peak_garbage"});
  for (const char* alloc : {"je", "tc", "mi"}) {
    for (int n : default_thread_sweep()) {
      harness::TrialConfig cfg = base;
      cfg.allocator = alloc;
      cfg.nthreads = n;
      harness::Trial trial(cfg);
      const harness::TrialResult r = trial.run();

      std::uint64_t total_ns = 0, events = 0;
      for (int t = 0; t < n; ++t) {
        for (std::size_t i = 0; i < trial.timeline().event_count(t); ++i) {
          const TimelineEvent& e = trial.timeline().events(t)[i];
          if (e.kind == EventKind::kBatchFree) {
            total_ns += e.t_end - e.t_start;
            ++events;
          }
        }
      }
      const double avg_us =
          events > 0 ? static_cast<double>(total_ns) / events / 1e3 : 0;
      table.add_row({alloc, std::to_string(n), harness::fixed(r.mops, 2),
                     std::to_string(events), harness::fixed(avg_us, 1),
                     harness::human_count(static_cast<double>(
                         trial.garbage().peak_garbage()))});
      std::printf("\n=== %s, %d threads (%.2f Mops/s, avg batch %.1f us) "
                  "===\n",
                  alloc, n, r.mops, avg_us);
      std::fputs(
          trial.timeline().render_ascii(EventKind::kBatchFree, 12, 100)
              .c_str(),
          stdout);
      trial.timeline().dump_csv(harness::out_dir() + "fig1829_" + alloc +
                                "_" + std::to_string(n) + "t.csv");
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig18to29_summary.csv");
  return 0;
}
