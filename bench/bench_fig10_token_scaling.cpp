// Figure 10 (a,b): throughput and peak memory vs threads for the Token-EBR
// progression (naive -> pass-first -> periodic -> amortized), with DEBRA
// for reference. Paper shape: the amortized variant drastically improves
// both performance and peak memory at high thread counts.
#include "bench_common.hpp"

using namespace emr;
using namespace emr::bench;

int main() {
  harness::TrialConfig base = default_config();
  harness::print_banner(
      "Figure 10: Token-EBR variants, throughput + peak memory vs threads",
      "PPoPP'24 \"Are Your Epochs Too Epic?\" Fig. 10", describe(base));

  harness::Table table({"threads", "reclaimer", "Mops/s", "min", "max",
                        "peak_MiB"});
  for (const char* reclaimer : {"token_naive", "token_passfirst", "token",
                                "token_af", "debra"}) {
    for (int n : default_thread_sweep()) {
      harness::TrialConfig cfg = base;
      cfg.reclaimer = reclaimer;
      cfg.nthreads = n;
      const harness::AggregateResult r = harness::run_trials(cfg);
      table.add_row({std::to_string(n), reclaimer,
                     harness::fixed(r.avg_mops, 2),
                     harness::fixed(r.min_mops, 2),
                     harness::fixed(r.max_mops, 2),
                     harness::fixed(r.avg_peak_mib, 1)});
      std::printf("  threads=%-3d %-16s %7.2f Mops/s  peak %.1f MiB\n", n,
                  reclaimer, r.avg_mops, r.avg_peak_mib);
    }
  }
  std::printf("\n");
  table.print();
  table.write_csv(harness::out_dir() + "fig10_token_scaling.csv");
  return 0;
}
