#!/usr/bin/env bash
# CI smoke: configure + build + ctest + one figure bench end-to-end at
# laptop scale. Mirrors the tier-1 verify line in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Reclaimer smoke: every factory name (all bases x batch/_af/_pool)
# constructs, accounts exactly, and no pointer-protecting name falls
# back to EBR aliasing (the binary exits non-zero on either violation).
"$BUILD_DIR/bench_micro_smr" --smoke

# Data-structure smoke: every ds x base-reclaimer pair model-checks
# against std::set and accounts every node at teardown.
"$BUILD_DIR/bench_micro_ds" --smoke

# Allocator smoke: every factory name keeps exact books (alloc/free
# counts, remote attribution, the >4096 B large-allocation bypass);
# unavailable real backends are reported as skips, never failures.
"$BUILD_DIR/bench_micro_alloc" --smoke

# Determinism gate: with EMR_PIN=off and model allocators under a fixed
# seed, the counter-only smoke output must be bit-identical run to run
# (and hence identical to the pre-hardware-realism harness — neither
# pinning defaults, calibration on a box where it can't measure, nor
# the TSC clock may leak into the modelled counters).
EMR_PIN=off EMR_SEED=42 "$BUILD_DIR/bench_micro_alloc" --smoke > "$BUILD_DIR/det_a.txt"
EMR_PIN=off EMR_SEED=42 "$BUILD_DIR/bench_micro_alloc" --smoke > "$BUILD_DIR/det_b.txt"
if ! diff -u "$BUILD_DIR/det_a.txt" "$BUILD_DIR/det_b.txt"; then
  echo "ci/check.sh: bench_micro_alloc --smoke is not deterministic" \
       "under EMR_PIN=off with model allocators" >&2
  exit 1
fi

# Thread-churn smoke: every Experiment-2 reclaimer (batched and _af)
# survives workers deregistering/registering mid-trial — progress under
# churn, pending == 0 and an empty executor backlog after teardown.
"$BUILD_DIR/bench_ablation_churn" --smoke

# Free-schedule smoke: every Experiment-2 reclaimer in batch, _af and
# _adaptive form runs under churn and accounts exactly; aggregated over
# the set, the adaptive schedule's peak garbage stays within 2x of _af
# while the fixed batch schedule remains the worst case.
"$BUILD_DIR/bench_ablation_adaptive" --smoke

# Tail-latency smoke: the figure behind ROADMAP item 2 — fixed-batch
# p99.9 blows up by multiples while mops stays flat, and the _latency
# schedule pulls the tail back inside its target band. Writes the
# committed snapshot at the repo root (test_report parses it strictly).
"$BUILD_DIR/bench_fig_latency" --smoke --json BENCH_fig_latency.json
test -s BENCH_fig_latency.json

# Service-mode smoke (ROADMAP item 3, docs/SERVICE_MODE.md): the offered
# schedule is deterministic per seed, open-loop queueing p99.9 explodes
# past saturation while the served rate stays in the capacity band, and
# on the hot/cold-tenant churn scenario the aggressive daemon clears the
# idle-tail garbage that daemon-off strands. Writes the committed
# snapshot at the repo root (test_report parses it strictly).
"$BUILD_DIR/bench_fig_service" --smoke --json BENCH_fig_service.json
test -s BENCH_fig_service.json

# Queue-pipeline smoke (ROADMAP items 3+4): the MPMC queue under the
# role-split workload — the asymmetric layout must charge a higher
# remote-free share than the symmetric one, and its fixed-batch dequeue
# p99.9 must blow past 2x the _af tail at comparable mops, over two
# seeds. Writes the committed snapshot at the repo root (test_report
# parses it strictly).
"$BUILD_DIR/bench_fig_queue" --smoke --json BENCH_fig_queue.json
test -s BENCH_fig_queue.json

# Home-flush routing smoke (docs/FREE_SCHEDULES.md): on the asymmetric
# pipeline the _hf forms must reroute foreign frees home — remote share
# collapses from >= 0.9 (plain _af) to <= 0.25, the dequeue p99.9
# improves without a throughput loss over two seeds, and the stash
# ledger balances exactly (stashed == flushed, zero backlog at
# teardown).
# Writes the committed snapshot at the repo root (test_report parses it
# strictly).
"$BUILD_DIR/bench_fig_homeflush" --smoke --json BENCH_fig_homeflush.json
test -s BENCH_fig_homeflush.json

# Policy-layer invariant: executors and scheme TUs ask the FreeSchedule
# for every batching quantum; only smr/free_schedule.cpp may read the
# raw SmrConfig batching knobs.
if grep -nE 'cfg_?\.\s*(batch_size|af_drain_per_op|latency_target_us|flush_batch)' \
    smr/free_executor.cpp smr/pooling_executor.hpp smr/ebr.cpp \
    smr/token.cpp smr/hp.cpp smr/he_ibr_wfe.cpp smr/nbr.cpp; then
  echo "ci/check.sh: executor/scheme TU reads a raw batching knob —" \
       "route it through FreeSchedule (smr/free_schedule.cpp)" >&2
  exit 1
fi

# Same boundary for the latency feedback loop: schemes and executors
# never touch the recorder or its percentile math — the harness records,
# the FreeSchedule consumes on_tail_latency.
if grep -nE 'LatencyRecorder|LatencyHistogram|latency_percentile' \
    smr/free_executor.cpp smr/pooling_executor.hpp smr/ebr.cpp \
    smr/token.cpp smr/hp.cpp smr/he_ibr_wfe.cpp smr/nbr.cpp; then
  echo "ci/check.sh: scheme TU/executor reads latency counters —" \
       "tail feedback flows only through FreeSchedule::on_tail_latency" >&2
  exit 1
fi

# End-to-end: the Figure 1 sweep must produce a non-empty table + CSV.
export EMR_MS="${EMR_MS:-30}" EMR_THREADS="${EMR_THREADS:-1 2}" \
       EMR_TRIALS=1 EMR_KEYRANGE="${EMR_KEYRANGE:-4096}" \
       EMR_OUT="$BUILD_DIR/emr_out"
"$BUILD_DIR/bench_fig01_scaling"
test -s "$BUILD_DIR/emr_out/fig01_scaling.csv"

# TSAN: race-check the lock-free guarded traversals on every run. The
# sanitized tree skips the bench binaries to keep the double build cheap;
# the filter runs the multi-threaded reader/writer stress over every
# guard protocol (debra/hp/ibr/nbr/debra_pool x abtree/occtree/dgt).
TSAN_DIR="${TSAN_DIR:-build-tsan}"
cmake -B "$TSAN_DIR" -S . -DEMR_SANITIZE=thread -DEMR_BUILD_BENCHES=OFF
cmake --build "$TSAN_DIR" -j"$JOBS"
if [ -x "$TSAN_DIR/test_ds" ]; then
  "$TSAN_DIR/test_ds" --gtest_filter='*Concurrent*'
  # Queue producer/consumer churn: the MS queue's guarded per-hop
  # traversal (and the locked baseline) race retirement across every
  # guard protocol, with FIFO-per-producer and no-loss checks on top.
  "$TSAN_DIR/test_queue" --gtest_filter='*Concurrent*'
  # ThreadHandle churn stress: register/deregister racing guarded
  # traversals over every reclaimer family (including the _adaptive
  # executors, whose lane-stats counters feed the controller).
  "$TSAN_DIR/test_handle_lifecycle" --gtest_filter='*ChurnStress*'
  # Adaptive-executor lane-stats counters: a stats_with_lanes reader
  # races registration churn and retire-heavy lanes.
  "$TSAN_DIR/test_free_schedule" --gtest_filter='*Concurrent*'
  # Reclaimer-daemon stress: daemon start/stop cycles racing
  # ThreadHandle register/deregister churn and retires across every
  # reclaimer family, with exact ledger checks after the dust settles.
  "$TSAN_DIR/test_service" --gtest_filter='*DaemonChurn*'
  # Home-flush MPSC stash: many producer lanes push one owner's stash
  # while the owner concurrently flushes — no loss, no double free,
  # exact stashed == flushed ledger after teardown.
  "$TSAN_DIR/test_homeflush" --gtest_filter='*Concurrent*'
else
  # Without GTest the unit suites (and this race check) don't build;
  # mirror the main build's degrade-with-a-warning behaviour.
  echo "ci/check.sh: GTest not found, skipping the TSAN ds race check"
fi

# Real-allocator leg: an EMR_REAL_ALLOC=ON tree routes the bare
# je/tc/mi names to the actual libraries wherever find_library located
# them. The smokes gate accounting (and the Table 3 pipeline) against
# every real backend that linked; when none did — the common offline CI
# case — the binaries print per-name skips and the tab03 smoke exits
# non-zero, which this leg treats as a graceful skip rather than a
# failure (bench_micro_alloc still gates the 4 model names).
REAL_DIR="${REAL_DIR:-build-real}"
cmake -B "$REAL_DIR" -S . -DEMR_REAL_ALLOC=ON -DEMR_BUILD_TESTS=OFF
cmake --build "$REAL_DIR" -j"$JOBS" --target bench_micro_alloc bench_tab03_allocators
"$REAL_DIR/bench_micro_alloc" --smoke
TAB03_OUT="$("$REAL_DIR/bench_tab03_allocators" --smoke)" && TAB03_RC=0 || TAB03_RC=$?
echo "$TAB03_OUT"
if [ "$TAB03_RC" -ne 0 ]; then
  if echo "$TAB03_OUT" | grep -q "no backend available"; then
    echo "ci/check.sh: no real allocator library on this box — skipped"
  else
    echo "ci/check.sh: real-allocator smoke FAILED" >&2
    exit 1
  fi
fi

echo "ci/check.sh: OK"
