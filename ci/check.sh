#!/usr/bin/env bash
# CI smoke: configure + build + ctest + one figure bench end-to-end at
# laptop scale. Mirrors the tier-1 verify line in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Reclaimer smoke: every factory name (all bases x batch/_af/_pool)
# constructs, accounts exactly, and no pointer-protecting name falls
# back to EBR aliasing (the binary exits non-zero on either violation).
"$BUILD_DIR/bench_micro_smr" --smoke

# End-to-end: the Figure 1 sweep must produce a non-empty table + CSV.
export EMR_MS="${EMR_MS:-30}" EMR_THREADS="${EMR_THREADS:-1 2}" \
       EMR_TRIALS=1 EMR_KEYRANGE="${EMR_KEYRANGE:-4096}" \
       EMR_OUT="$BUILD_DIR/emr_out"
"$BUILD_DIR/bench_fig01_scaling"
test -s "$BUILD_DIR/emr_out/fig01_scaling.csv"
echo "ci/check.sh: OK"
