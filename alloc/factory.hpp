// Allocator factory: "je" | "tc" | "mi" | "system".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"

namespace emr::alloc {

/// Builds the named allocator model. Throws std::invalid_argument for an
/// unknown name.
std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          const AllocConfig& cfg);

/// The model names make_allocator accepts.
const std::vector<std::string>& allocator_names();

}  // namespace emr::alloc
