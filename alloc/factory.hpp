// Allocator factory. Public names:
//
//   je | tc | mi        - the paper's three allocators. In a default
//                         build these resolve to the deterministic
//                         models; built with -DEMR_REAL_ALLOC=ON they
//                         resolve to the real libraries CMake found
//                         (jemalloc / tcmalloc / mimalloc), and throw a
//                         pointer at the *_model name for any library
//                         that was missing at configure time.
//   je_model | tc_model
//   | mi_model          - always the deterministic models, regardless of
//                         build flags (the figures' reproducible path).
//   system              - operator new/delete with stats only.
//
// allocator_backend() lets callers (CI smokes, tests) ask what a name
// would resolve to without constructing it, so a real-backend sweep can
// skip gracefully on a build where the library wasn't found.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"

namespace emr::alloc {

/// What a factory name resolves to in this build.
enum class Backend {
  kModel,       // deterministic size-class model over operator new
  kReal,        // linked real library (EMR_REAL_ALLOC build, lib found)
  kUnavailable  // real backend requested by the build, library missing
};

/// Builds the named allocator. Throws std::invalid_argument for an
/// unknown name, and for a kUnavailable real backend (the message names
/// the *_model fallback).
std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          const AllocConfig& cfg);

/// The names make_allocator accepts (including the *_model aliases).
const std::vector<std::string>& allocator_names();

/// What `name` resolves to; throws std::invalid_argument on an unknown
/// name.
Backend allocator_backend(const std::string& name);

}  // namespace emr::alloc
