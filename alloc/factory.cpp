// Name routing for the allocator factory: public names resolve to the
// model or real backend families in alloc/backends.hpp. The policy:
//
//   - "<flavor>_model" is always the model.
//   - "system" is always the stats-only model flavour.
//   - Bare "je"/"tc"/"mi" follow the build: models in a default build
//     (bit-for-bit the pre-real-backend behavior), the real libraries
//     under -DEMR_REAL_ALLOC=ON — and when that build couldn't find a
//     library, constructing its bare name fails loudly with the _model
//     escape hatch instead of silently falling back to the model (a
//     "real" figure silently run against the model would be worse than
//     an error).
#include <stdexcept>

#include "alloc/backends.hpp"
#include "alloc/factory.hpp"

namespace emr::alloc {

namespace {

bool is_model_alias(const std::string& name, std::string* flavor) {
  if (name == "je_model" || name == "tc_model" || name == "mi_model") {
    *flavor = name.substr(0, 2);
    return true;
  }
  return false;
}

bool is_bare_flavor(const std::string& name) {
  return name == "je" || name == "tc" || name == "mi";
}

}  // namespace

Backend allocator_backend(const std::string& name) {
  std::string flavor;
  if (name == "system" || is_model_alias(name, &flavor)) {
    return Backend::kModel;
  }
  if (is_bare_flavor(name)) {
#if defined(EMR_REAL_ALLOC)
    return detail::real_available(name) ? Backend::kReal
                                        : Backend::kUnavailable;
#else
    return Backend::kModel;
#endif
  }
  throw std::invalid_argument("unknown allocator: " + name);
}

std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          const AllocConfig& cfg) {
  std::string flavor;
  if (is_model_alias(name, &flavor)) return detail::make_model(flavor, cfg);
  if (name == "system") return detail::make_model(name, cfg);
  if (is_bare_flavor(name)) {
    switch (allocator_backend(name)) {
      case Backend::kModel:
        return detail::make_model(name, cfg);
      case Backend::kReal:
      case Backend::kUnavailable:
        // make_real's unavailable error names the _model fallback.
        return detail::make_real(name, cfg);
    }
  }
  throw std::invalid_argument("unknown allocator: " + name);
}

const std::vector<std::string>& allocator_names() {
  static const std::vector<std::string> kNames = {
      "je", "tc", "mi", "system", "je_model", "tc_model", "mi_model"};
  return kNames;
}

}  // namespace emr::alloc
