// Internal seam between the allocator factory and its two backend
// families (alloc/factory.cpp routes public names here):
//
//   make_model - the deterministic size-class models over operator new
//                (alloc/modeled_allocator.cpp), flavours je|tc|mi|system.
//   make_real  - thin wrappers over the real jemalloc / tcmalloc /
//                mimalloc libraries (alloc/real_allocator.cpp), compiled
//                in per-library via EMR_HAVE_JEMALLOC / EMR_HAVE_TCMALLOC
//                / EMR_HAVE_MIMALLOC (CMake's EMR_REAL_ALLOC=ON sets them
//                for every library it finds). Each wrapper keeps the
//                model's 16-byte owner/size header so the stats seams
//                (n_alloc/n_free/n_remote_free, bytes_mapped) stay exact.
#pragma once

#include <memory>
#include <string>

#include "alloc/allocator.hpp"

namespace emr::alloc::detail {

/// flavor: "je" | "tc" | "mi" | "system". Throws on anything else.
std::unique_ptr<Allocator> make_model(const std::string& flavor,
                                      const AllocConfig& cfg);

/// flavor: "je" | "tc" | "mi". Throws std::invalid_argument when the
/// library was not found at configure time (check real_available first).
std::unique_ptr<Allocator> make_real(const std::string& flavor,
                                     const AllocConfig& cfg);

/// True when the named real library was linked into this build.
bool real_available(const std::string& flavor);

}  // namespace emr::alloc::detail
