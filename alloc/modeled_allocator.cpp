// Size-class allocator models over operator new. Three flavours:
//
//   je  - jemalloc-shaped: per-thread caches; overflow flushes a fraction
//         of the bin to a locked central bin, paying the modelled remote
//         penalty for every block owned by another thread (the paper's
//         section 3.2 mechanism: batched remote frees overflow the tcache
//         and serialize on bin locks).
//   tc  - tcmalloc-shaped: like je, but overflow returns the entire bin
//         to the central free list in small locked chunks, so contention
//         on the central lock is worse.
//   mi  - mimalloc-shaped: a remote free is a single atomic push onto the
//         owning thread's delayed-free stack; the owner absorbs it on its
//         next allocation. No locks, no remote penalty: the reason the
//         paper finds mimalloc immune to RBF.
//   system - direct operator new/delete with stats only (no model).
//
// Blocks above the largest size class bypass the caches entirely.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <deque>
#include <mutex>
#include <new>
#include <stdexcept>
#include <vector>

#include "alloc/backends.hpp"
#include "core/timing.hpp"

namespace emr::alloc {
namespace {

constexpr int kNumClasses = 7;  // 64, 128, 256, 512, 1024, 2048, 4096
constexpr std::size_t kMinClassSize = 64;
constexpr std::size_t kMaxClassSize = kMinClassSize << (kNumClasses - 1);
constexpr std::size_t kHeaderSize = 16;

std::size_t class_size(int cls) { return kMinClassSize << cls; }

int class_for(std::size_t size) {
  std::size_t s = kMinClassSize;
  for (int c = 0; c < kNumClasses; ++c, s <<= 1) {
    if (size <= s) return c;
  }
  return -1;  // large allocation
}

struct BlockHeader {
  std::int32_t owner;   // tid of the last thread to allocate this block
  std::int32_t cls;     // size class index, or -1 for large
  BlockHeader* next;    // intrusive free-list link (valid while free)
};

BlockHeader* header_of(void* user) {
  return reinterpret_cast<BlockHeader*>(static_cast<char*>(user) -
                                        kHeaderSize);
}
void* user_of(BlockHeader* h) {
  return reinterpret_cast<char*>(h) + kHeaderSize;
}

struct FreeList {
  BlockHeader* head = nullptr;
  std::size_t count = 0;

  void push(BlockHeader* b) {
    b->next = head;
    head = b;
    ++count;
  }
  BlockHeader* pop() {
    BlockHeader* b = head;
    if (b != nullptr) {
      head = b->next;
      --count;
    }
    return b;
  }
};

struct alignas(64) PerThread {
  FreeList bins[kNumClasses];
  FreeList deferred[kNumClasses];     // deferred_flush staging
  std::atomic<BlockHeader*> remote_head{nullptr};  // mi delayed frees
  std::vector<void*> os_blocks;       // every operator-new block we made
  AllocTotals totals;
};

/// A central bin set guarded by one lock. je/mi get one Arena per thread
/// (jemalloc's per-arena bins: a flushed block goes HOME, to its owner's
/// arena, and a refill only draws from your own); tc gets a single shared
/// Arena (tcmalloc's global central free lists).
struct Arena {
  std::mutex mu;
  FreeList bins[kNumClasses];
};

enum class Flavor { kJe, kTc, kMi, kSystem };

class ModeledAllocator final : public Allocator {
 public:
  ModeledAllocator(Flavor flavor, const AllocConfig& cfg)
      : flavor_(flavor),
        cfg_(cfg),
        threads_(static_cast<std::size_t>(std::max(cfg.max_threads, 1))),
        arenas_(flavor == Flavor::kTc ? 1 : threads_.size()) {
    if (cfg_.tcache_cap == 0) cfg_.tcache_cap = 1;
    cfg_.flush_fraction = std::min(std::max(cfg_.flush_fraction, 0.01), 1.0);
  }

  ~ModeledAllocator() override {
    // Everything the model ever took from the OS is in the per-thread
    // registries, regardless of which cache holds it now.
    for (PerThread& t : threads_) {
      for (void* raw : t.os_blocks) ::operator delete(raw);
    }
  }

  void* allocate(int tid, std::size_t size) override {
    PerThread& t = thread(tid);
    ++t.totals.n_alloc;
    const int cls = class_for(size);
    if (cls < 0) return os_alloc_large(t, size);

    if (BlockHeader* b = t.bins[cls].pop()) return publish(b, tid);

    if (flavor_ == Flavor::kMi) {
      if (absorb_remote(t, tid)) {
        if (BlockHeader* b = t.bins[cls].pop()) return publish(b, tid);
      }
    }

    if (flavor_ != Flavor::kSystem) {
      if (BlockHeader* b = central_grab(t, tid, cls)) return publish(b, tid);
    }
    return publish(os_alloc(t, cls), tid);
  }

  void deallocate(int tid, void* p) override {
    PerThread& t = thread(tid);
    const std::uint64_t t0 = now_ns();
    ++t.totals.n_free;
    BlockHeader* h = header_of(p);
    if (h->cls < 0) {
      os_free_large(h);
      t.totals.ns_in_free += now_ns() - t0;
      return;
    }
    const bool remote = h->owner != tid;
    if (remote) ++t.totals.n_remote_free;

    switch (flavor_) {
      case Flavor::kSystem:
        // No caching model: the block goes straight back to the OS.
        os_free(t, h);
        break;
      case Flavor::kMi:
        if (remote) {
          // One atomic push to the owner's delayed-free stack; this is
          // the whole trick that makes mimalloc immune to RBF.
          push_remote(thread(h->owner), h);
        } else {
          t.bins[h->cls].push(h);
          if (t.bins[h->cls].count > cfg_.tcache_cap) flush_bin(t, h->cls);
        }
        break;
      case Flavor::kJe:
      case Flavor::kTc:
        t.bins[h->cls].push(h);
        if (t.bins[h->cls].count > cfg_.tcache_cap) flush_bin(t, h->cls);
        if (cfg_.deferred_flush) drain_deferred(t, h->cls, 2);
        break;
    }
    t.totals.ns_in_free += now_ns() - t0;
  }

  int home_lane(void* p) const override {
    const BlockHeader* h = header_of(p);
    return h->cls < 0 ? -1 : h->owner;
  }

  void free_local_hint(int tid, void* p) override {
    BlockHeader* h = header_of(p);
    if (h->cls >= 0 && h->owner != tid) {
      // Batched owner-stash hand-off: the block did cross lanes, so
      // remote attribution stays exact — but the per-block transfer
      // penalty is skipped by re-homing it into tid's cache before the
      // ordinary local free path runs (the mimalloc delayed-free
      // absorb, one layer up: the hand-off cost was paid once for the
      // whole stash, not per block).
      ++thread(tid).totals.n_remote_free;
      h->owner = tid;
    }
    deallocate(tid, p);
  }

  void flush_thread_caches() override {
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      PerThread& t = threads_[i];
      absorb_remote(t, static_cast<int>(i));
      if (flavor_ == Flavor::kSystem) continue;
      Arena& arena = home_arena(static_cast<int>(i));
      for (int c = 0; c < kNumClasses; ++c) {
        drain_deferred(t, c, t.deferred[c].count);
        std::lock_guard<std::mutex> lock(arena.mu);
        while (BlockHeader* b = t.bins[c].pop()) arena.bins[c].push(b);
      }
    }
  }

  AllocStats stats() const override {
    AllocStats s;
    for (const PerThread& t : threads_) {
      s.totals.n_alloc += t.totals.n_alloc;
      s.totals.n_free += t.totals.n_free;
      s.totals.n_remote_free += t.totals.n_remote_free;
      s.totals.n_flush += t.totals.n_flush;
      s.totals.ns_in_free += t.totals.ns_in_free;
      s.totals.ns_in_flush += t.totals.ns_in_flush;
      s.totals.ns_in_lock += t.totals.ns_in_lock;
    }
    s.bytes_mapped = os_current_.load(std::memory_order_relaxed);
    s.peak_bytes_mapped = os_peak_.load(std::memory_order_relaxed);
    return s;
  }

  const char* name() const override {
    switch (flavor_) {
      case Flavor::kJe:
        return "je";
      case Flavor::kTc:
        return "tc";
      case Flavor::kMi:
        return "mi";
      case Flavor::kSystem:
        return "system";
    }
    return "?";
  }

 private:
  PerThread& thread(int tid) {
    const std::size_t i = static_cast<std::size_t>(tid);
    return threads_[i < threads_.size() ? i : 0];
  }

  void* publish(BlockHeader* b, int tid) {
    b->owner = tid;
    return user_of(b);
  }

  BlockHeader* os_alloc(PerThread& t, int cls) {
    const std::size_t bytes = kHeaderSize + class_size(cls);
    void* raw = ::operator new(bytes);
    // Caching flavours hold OS memory until destruction; the registry is
    // how the destructor finds it. The system flavour frees for real in
    // deallocate(), so it must not register (double-free otherwise).
    if (flavor_ != Flavor::kSystem) t.os_blocks.push_back(raw);
    note_mapped(bytes);
    auto* h = static_cast<BlockHeader*>(raw);
    h->cls = cls;
    h->next = nullptr;
    return h;
  }

  void* os_alloc_large(PerThread& t, std::size_t size) {
    void* raw = ::operator new(kHeaderSize + size);
    note_mapped(kHeaderSize + size);
    auto* h = static_cast<BlockHeader*>(raw);
    h->owner = 0;
    h->cls = -1;
    h->next = reinterpret_cast<BlockHeader*>(size);  // stash for unmap
    (void)t;
    return user_of(h);
  }

  void os_free_large(BlockHeader* h) {
    const std::size_t size = reinterpret_cast<std::size_t>(h->next);
    note_unmapped(kHeaderSize + size);
    ::operator delete(h);
  }

  void os_free(PerThread& freeing, BlockHeader* h) {
    // System flavour only: the block goes straight back to the OS. The
    // system flavour never registers blocks (see os_alloc), so there is
    // nothing to unregister and the destructor cannot double-free.
    (void)freeing;
    note_unmapped(kHeaderSize + class_size(h->cls));
    ::operator delete(h);
  }

  void note_mapped(std::size_t bytes) {
    const std::uint64_t cur =
        os_current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t peak = os_peak_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !os_peak_.compare_exchange_weak(peak, cur,
                                           std::memory_order_relaxed)) {
    }
  }
  void note_unmapped(std::size_t bytes) {
    os_current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  Arena& home_arena(int owner) {
    if (arenas_.size() == 1) return arenas_[0];
    const std::size_t i = static_cast<std::size_t>(owner);
    return arenas_[i < arenas_.size() ? i : 0];
  }

  BlockHeader* central_grab(PerThread& t, int tid, int cls) {
    // jemalloc semantics: a refill only draws from YOUR arena — blocks
    // flushed to other threads' arenas are lost to you. tc's single
    // shared arena serves everyone.
    Arena& arena = home_arena(tid);
    const std::uint64_t t0 = now_ns();
    std::lock_guard<std::mutex> lock(arena.mu);
    t.totals.ns_in_lock += now_ns() - t0;
    FreeList& bin = arena.bins[cls];
    if (bin.count == 0) return nullptr;
    // Refill half a cache's worth so the lock isn't taken per block.
    std::size_t want = std::max<std::size_t>(cfg_.tcache_cap / 2, 1);
    BlockHeader* first = bin.pop();
    while (--want > 0 && bin.count > 0) t.bins[cls].push(bin.pop());
    return first;
  }

  /// Returns `n` blocks from `list` to their HOME arenas, paying the lock
  /// per run and the remote penalty (the modelled cross-socket cache-line
  /// transfer) for every foreign-owned block. `chunk` bounds how many
  /// blocks move per lock acquisition (tcmalloc-style transfers).
  void central_return(PerThread& t, int tid, FreeList& list, int cls,
                      std::size_t n, std::size_t chunk) {
    while (n > 0 && list.count > 0) {
      BlockHeader* b = list.pop();
      Arena& arena = home_arena(b->owner);
      const std::uint64_t t0 = now_ns();
      std::lock_guard<std::mutex> lock(arena.mu);
      t.totals.ns_in_lock += now_ns() - t0;
      // Move a same-arena run under one lock hold.
      std::size_t burst = std::min(n, chunk);
      for (;;) {
        if (b->owner != tid) spin_for_ns(cfg_.remote_free_penalty_ns);
        arena.bins[cls].push(b);
        --n;
        if (--burst == 0 || n == 0 || list.count == 0) break;
        if (&home_arena(list.head->owner) != &arena) break;
        b = list.pop();
      }
    }
  }

  void flush_bin(PerThread& t, int cls) {
    const int tid = static_cast<int>(&t - threads_.data());
    ++t.totals.n_flush;
    const std::uint64_t t0 = now_ns();
    std::size_t nmove;
    std::size_t chunk;
    if (flavor_ == Flavor::kTc) {
      nmove = t.bins[cls].count;  // tcmalloc: return the whole list
      chunk = 16;
    } else {
      nmove = static_cast<std::size_t>(
          std::ceil(static_cast<double>(cfg_.tcache_cap) *
                    cfg_.flush_fraction));
      chunk = nmove;
    }
    if (cfg_.deferred_flush) {
      // Stage the overflow locally; drain_deferred amortizes the locked
      // central return over later frees.
      for (std::size_t i = 0; i < nmove && t.bins[cls].count > 0; ++i) {
        t.deferred[cls].push(t.bins[cls].pop());
      }
    } else {
      central_return(t, tid, t.bins[cls], cls, nmove, chunk);
    }
    t.totals.ns_in_flush += now_ns() - t0;
  }

  void drain_deferred(PerThread& t, int cls, std::size_t n) {
    if (t.deferred[cls].count == 0 || n == 0) return;
    const int tid = static_cast<int>(&t - threads_.data());
    const std::uint64_t t0 = now_ns();
    central_return(t, tid, t.deferred[cls], cls, n, n);
    t.totals.ns_in_flush += now_ns() - t0;
  }

  void push_remote(PerThread& owner, BlockHeader* h) {
    BlockHeader* head = owner.remote_head.load(std::memory_order_relaxed);
    do {
      h->next = head;
    } while (!owner.remote_head.compare_exchange_weak(
        head, h, std::memory_order_release, std::memory_order_relaxed));
  }

  bool absorb_remote(PerThread& t, int tid) {
    (void)tid;
    BlockHeader* chain =
        t.remote_head.exchange(nullptr, std::memory_order_acquire);
    if (chain == nullptr) return false;
    while (chain != nullptr) {
      BlockHeader* next = chain->next;
      t.bins[chain->cls].push(chain);
      chain = next;
    }
    return true;
  }

  Flavor flavor_;
  AllocConfig cfg_;
  std::vector<PerThread> threads_;
  std::deque<Arena> arenas_;  // deque: Arena holds a non-movable mutex
  std::atomic<std::uint64_t> os_current_{0};
  std::atomic<std::uint64_t> os_peak_{0};
};

}  // namespace

namespace detail {

std::unique_ptr<Allocator> make_model(const std::string& flavor,
                                      const AllocConfig& cfg) {
  Flavor f;
  if (flavor == "je") {
    f = Flavor::kJe;
  } else if (flavor == "tc") {
    f = Flavor::kTc;
  } else if (flavor == "mi") {
    f = Flavor::kMi;
  } else if (flavor == "system") {
    f = Flavor::kSystem;
  } else {
    throw std::invalid_argument("unknown allocator model: " + flavor);
  }
  return std::make_unique<ModeledAllocator>(f, cfg);
}

}  // namespace detail

}  // namespace emr::alloc
