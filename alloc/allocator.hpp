// Allocator model interface. The benches compare jemalloc-, tcmalloc- and
// mimalloc-shaped allocators: real memory comes from operator new, but the
// thread-cache / central-bin / remote-free mechanics (the machinery behind
// the paper's remote-batch-free pathology, section 3.2) are modelled here
// so the effect is measurable at laptop scale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace emr::alloc {

struct AllocConfig {
  int max_threads = 1;
  /// Thread-cache capacity per size class, in blocks (jemalloc's
  /// tcache_max semantics, scaled down).
  std::size_t tcache_cap = 128;
  /// Fraction of the cache flushed to the central bin on overflow.
  double flush_fraction = 0.5;
  /// Modelled cost of returning a block to a remote thread's arena
  /// (stands in for the paper's cross-socket cache-line transfer).
  std::uint64_t remote_free_penalty_ns = 0;
  /// True when remote_free_penalty_ns was set explicitly (the
  /// EMR_REMOTE_PENALTY_NS knob, or a bench sweeping the penalty
  /// directly). The harness's startup calibration only substitutes its
  /// measured cache-line-transfer cost when this is false — an explicit
  /// knob always wins (core/calibration.hpp).
  bool remote_penalty_explicit = false;
  /// Footnote-3 ablation: overflow blocks drain to the central bin a few
  /// at a time on later frees instead of in one locked burst.
  bool deferred_flush = false;
};

/// Monotonic operation counters, aggregated over all threads.
struct AllocTotals {
  std::uint64_t n_alloc = 0;
  std::uint64_t n_free = 0;
  std::uint64_t n_remote_free = 0;  // freed by a thread that didn't allocate
  std::uint64_t n_flush = 0;        // tcache overflow flush episodes
  std::uint64_t ns_in_free = 0;     // wall ns inside deallocate()
  std::uint64_t ns_in_flush = 0;    // subset of ns_in_free: flushing
  std::uint64_t ns_in_lock = 0;     // waiting on central-bin locks
};

struct AllocStats {
  AllocTotals totals;
  std::uint64_t bytes_mapped = 0;       // total bytes obtained from the OS
  std::uint64_t peak_bytes_mapped = 0;  // == bytes_mapped (monotone model)
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  virtual void* allocate(int tid, std::size_t size) = 0;
  virtual void deallocate(int tid, void* p) = 0;

  /// The lane that allocated `p` (the block's *home*), or -1 when the
  /// backend cannot attribute it (no header, large-allocation bypass).
  /// The home-flush routing layer (smr::FreeExecutor) uses this to
  /// decide whether a free is about to cross lanes.
  virtual int home_lane(void* p) const {
    (void)p;
    return -1;
  }

  /// Frees `p` on `tid` with the caller's promise that the cross-lane
  /// hand-off cost was already paid in bulk (the block arrived through
  /// a batched owner-stash, not an ad-hoc foreign free). Backends keep
  /// n_remote_free attribution exact — a block allocated elsewhere
  /// still counts remote — but skip the per-block transfer penalty by
  /// re-homing the block into `tid`'s cache. The default is a plain
  /// deallocate (real backends have no modelled penalty to skip).
  virtual void free_local_hint(int tid, void* p) { deallocate(tid, p); }

  /// Drains thread caches / remote stacks back to the central state.
  /// Called at trial teardown; not part of the measured window.
  virtual void flush_thread_caches() {}

  virtual AllocStats stats() const = 0;
  virtual const char* name() const = 0;
};

}  // namespace emr::alloc
