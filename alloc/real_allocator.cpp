// Real allocator backends: thin Allocator wrappers over jemalloc,
// tcmalloc (gperftools) and mimalloc, built per-library when CMake's
// EMR_REAL_ALLOC=ON finds them (EMR_HAVE_JEMALLOC / EMR_HAVE_TCMALLOC /
// EMR_HAVE_MIMALLOC compile gates; see docs/ALLOCATORS.md).
//
// Each wrapper calls the library's *prefixed* entry points (mallocx/
// dallocx, tc_malloc/tc_free, mi_malloc/mi_free) rather than plain
// malloc, so all three libraries can link into one binary and the
// benches can compare them side by side without symbol interposition
// picking a winner.
//
// The wrapper keeps the model's 16-byte header in front of every block,
// recording the allocating lane and the size, so the stats seams stay
// exact where the harness depends on them: n_alloc/n_free per lane,
// n_remote_free (freed by a lane that didn't allocate — only counted for
// blocks inside the model's size-class range, mirroring the model's
// large-allocation bypass), and bytes_mapped/peak. What it deliberately
// does NOT model: tcache flushes, central-bin lock time, or the spin
// penalty — the whole point is that the real library pays its real
// costs, so n_flush/ns_in_flush/ns_in_lock read zero and the figures
// show actual malloc behavior instead of the model's.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <vector>

#include "alloc/backends.hpp"
#include "core/timing.hpp"

#if defined(EMR_HAVE_JEMALLOC)
extern "C" {
void* mallocx(std::size_t size, int flags);
void dallocx(void* ptr, int flags);
}
#endif
#if defined(EMR_HAVE_TCMALLOC)
extern "C" {
void* tc_malloc(std::size_t size);
void tc_free(void* ptr);
}
#endif
#if defined(EMR_HAVE_MIMALLOC)
extern "C" {
void* mi_malloc(std::size_t size);
void mi_free(void* ptr);
}
#endif

namespace emr::alloc {
namespace {

#if defined(EMR_HAVE_JEMALLOC) || defined(EMR_HAVE_TCMALLOC) || \
    defined(EMR_HAVE_MIMALLOC)

// Mirrors the model's class range: blocks past the largest size class
// bypass the caches there, and bypass remote-free accounting here.
constexpr std::size_t kMaxClassSize = 4096;
constexpr std::size_t kHeaderSize = 16;

struct RealHeader {
  std::int32_t owner;  // lane that allocated this block
  std::int32_t cls;    // 0 = classed, -1 = large (>= bypass threshold)
  std::uint64_t size;  // user size, for the bytes_mapped ledger
};
static_assert(sizeof(RealHeader) == kHeaderSize);

struct alignas(64) RealLane {
  AllocTotals totals;
};

using MallocFn = void* (*)(std::size_t);
using FreeFn = void (*)(void*);

class RealAllocator final : public Allocator {
 public:
  RealAllocator(const char* name, MallocFn m, FreeFn f,
                const AllocConfig& cfg)
      : name_(name),
        malloc_(m),
        free_(f),
        lanes_(static_cast<std::size_t>(
            cfg.max_threads < 1 ? 1 : cfg.max_threads)) {}

  void* allocate(int tid, std::size_t size) override {
    RealLane& t = lane(tid);
    ++t.totals.n_alloc;
    void* raw = malloc_(kHeaderSize + size);
    if (raw == nullptr) throw std::bad_alloc();
    auto* h = static_cast<RealHeader*>(raw);
    h->owner = tid;
    h->cls = size <= kMaxClassSize ? 0 : -1;
    h->size = size;
    note_mapped(kHeaderSize + size);
    return static_cast<char*>(raw) + kHeaderSize;
  }

  void deallocate(int tid, void* p) override {
    RealLane& t = lane(tid);
    const std::uint64_t t0 = now_ns();
    ++t.totals.n_free;
    auto* h = reinterpret_cast<RealHeader*>(static_cast<char*>(p) -
                                            kHeaderSize);
    if (h->cls >= 0 && h->owner != tid) ++t.totals.n_remote_free;
    note_unmapped(kHeaderSize + h->size);
    free_(h);
    t.totals.ns_in_free += now_ns() - t0;
  }

  int home_lane(void* p) const override {
    const auto* h = reinterpret_cast<const RealHeader*>(
        static_cast<const char*>(p) - kHeaderSize);
    return h->cls < 0 ? -1 : h->owner;
  }

  // free_local_hint: the base-class default (plain deallocate) is
  // already right for real backends — there is no modelled penalty to
  // skip, the library's own cross-thread machinery handles the
  // hand-off, and deallocate keeps n_remote_free attribution exact.

  AllocStats stats() const override {
    AllocStats s;
    for (const RealLane& t : lanes_) {
      s.totals.n_alloc += t.totals.n_alloc;
      s.totals.n_free += t.totals.n_free;
      s.totals.n_remote_free += t.totals.n_remote_free;
      s.totals.ns_in_free += t.totals.ns_in_free;
    }
    s.bytes_mapped = current_.load(std::memory_order_relaxed);
    s.peak_bytes_mapped = peak_.load(std::memory_order_relaxed);
    return s;
  }

  const char* name() const override { return name_; }

 private:
  RealLane& lane(int tid) {
    const std::size_t i = static_cast<std::size_t>(tid);
    return lanes_[i < lanes_.size() ? i : 0];
  }

  void note_mapped(std::size_t bytes) {
    const std::uint64_t cur =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !peak_.compare_exchange_weak(peak, cur,
                                        std::memory_order_relaxed)) {
    }
  }
  void note_unmapped(std::size_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  const char* name_;
  MallocFn malloc_;
  FreeFn free_;
  std::vector<RealLane> lanes_;
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
};

#if defined(EMR_HAVE_JEMALLOC)
void* je_malloc_shim(std::size_t size) { return mallocx(size, 0); }
void je_free_shim(void* p) { dallocx(p, 0); }
#endif

#endif  // any EMR_HAVE_*

}  // namespace

namespace detail {

bool real_available(const std::string& flavor) {
#if defined(EMR_HAVE_JEMALLOC)
  if (flavor == "je") return true;
#endif
#if defined(EMR_HAVE_TCMALLOC)
  if (flavor == "tc") return true;
#endif
#if defined(EMR_HAVE_MIMALLOC)
  if (flavor == "mi") return true;
#endif
  (void)flavor;
  return false;
}

std::unique_ptr<Allocator> make_real(const std::string& flavor,
                                     const AllocConfig& cfg) {
#if defined(EMR_HAVE_JEMALLOC)
  if (flavor == "je") {
    return std::make_unique<RealAllocator>("je(real)", je_malloc_shim,
                                           je_free_shim, cfg);
  }
#endif
#if defined(EMR_HAVE_TCMALLOC)
  if (flavor == "tc") {
    return std::make_unique<RealAllocator>("tc(real)", tc_malloc, tc_free,
                                           cfg);
  }
#endif
#if defined(EMR_HAVE_MIMALLOC)
  if (flavor == "mi") {
    return std::make_unique<RealAllocator>("mi(real)", mi_malloc, mi_free,
                                           cfg);
  }
#endif
  (void)cfg;
  throw std::invalid_argument(
      "real allocator backend '" + flavor +
      "' is not linked into this build (the library was not found at "
      "configure time); use the deterministic model '" + flavor +
      "_model', or install the library and reconfigure with "
      "-DEMR_REAL_ALLOC=ON");
}

}  // namespace detail

}  // namespace emr::alloc
